"""Tests for repro.chaos: deterministic fault injection, the crash-safe
run journal, and cache integrity under deliberate corruption.

The headline property, asserted end to end: a sweep run under injected
crashes, hangs, transient exceptions, and cache corruption completes with
results **bit-identical** to a fault-free serial run.
"""

import io
import json
import os
import signal
import time

import pytest

import repro.exec
import repro.obs as obs
from repro.chaos import (
    CORRUPT_MODES,
    ChaosConfig,
    FaultAction,
    FaultPlan,
    InjectedFault,
    RunJournal,
    apply_fault,
    parse_chaos_spec,
    resume_guard,
    run_faulted,
)
from repro.eval import experiments
from repro.eval.runner import RunSpec
from repro.exec import JobSpec, ResultCache, Scheduler, baseline_job
from repro.pipeline import SimStats

TINY = RunSpec(uops=4_000, warmup=1_000, workloads=("swim", "gobmk"))


@pytest.fixture(autouse=True)
def _clean_slate():
    """Serial default scheduler and observability off, before and after."""
    repro.exec.reset()
    obs.disable()
    yield
    repro.exec.reset()
    obs.disable()


# ---------------------------------------------------------------------------
# Worker functions: top-level so the parallel paths can pickle them.
# ---------------------------------------------------------------------------

def _fake_job(spec: JobSpec) -> SimStats:
    return SimStats(workload=spec.workload, cycles=spec.uops, insts=2 * spec.uops)


def _specs(n: int) -> list[JobSpec]:
    return [baseline_job("swim", 1_000 + i, 0) for i in range(n)]


# ---------------------------------------------------------------------------
# Configuration and CLI spec parsing
# ---------------------------------------------------------------------------

class TestChaosConfig:
    def test_defaults_are_valid_and_quiet(self):
        config = ChaosConfig()
        assert config.crash_rate == config.hang_rate == 0.0
        assert config.max_faults_per_job == 1

    @pytest.mark.parametrize("field", ["crash_rate", "hang_rate",
                                       "exception_rate", "cache_corrupt_rate"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match=field):
            ChaosConfig(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            ChaosConfig(**{field: -0.1})

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            ChaosConfig(hang_seconds=0)
        with pytest.raises(ValueError, match="max_faults_per_job"):
            ChaosConfig(max_faults_per_job=-1)


class TestParseChaosSpec:
    def test_aliases(self):
        config = parse_chaos_spec("crash=0.05,hang=0.1,exception=0.2,"
                                  "corrupt=0.3,max_faults=2")
        assert config.crash_rate == 0.05
        assert config.hang_rate == 0.1
        assert config.exception_rate == 0.2
        assert config.cache_corrupt_rate == 0.3
        assert config.max_faults_per_job == 2

    def test_full_field_names_and_hex_seed(self):
        config = parse_chaos_spec("exception_rate=1, seed=0xBEEF, "
                                  "hang_seconds=2.5")
        assert config.exception_rate == 1.0
        assert config.seed == 0xBEEF
        assert config.hang_seconds == 2.5

    def test_empty_spec_is_defaults(self):
        assert parse_chaos_spec("") == ChaosConfig()

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            parse_chaos_spec("explode=1")

    def test_rejects_malformed_item(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_chaos_spec("crash")

    def test_out_of_range_value_propagates(self):
        with pytest.raises(ValueError, match="crash_rate"):
            parse_chaos_spec("crash=2.0")


# ---------------------------------------------------------------------------
# FaultPlan determinism
# ---------------------------------------------------------------------------

class TestFaultPlanDeterminism:
    CONFIG = ChaosConfig(seed=7, crash_rate=0.3, hang_rate=0.3,
                         exception_rate=0.3)

    def _verdicts(self, plan, digests):
        return [plan.job_fault(d) for d in digests]

    def test_same_seed_same_verdicts(self):
        digests = [s.digest() for s in _specs(64)]
        a = self._verdicts(FaultPlan(self.CONFIG), digests)
        b = self._verdicts(FaultPlan(self.CONFIG), digests)
        assert a == b
        assert any(v is not None for v in a)      # the rates actually fire
        assert any(v is None for v in a)          # ... and actually miss

    def test_verdicts_independent_of_query_order(self):
        digests = [s.digest() for s in _specs(64)]
        forward = dict(zip(digests, self._verdicts(FaultPlan(self.CONFIG),
                                                   digests)))
        backward = dict(zip(reversed(digests),
                            self._verdicts(FaultPlan(self.CONFIG),
                                           list(reversed(digests)))))
        assert forward == backward

    def test_different_seed_different_plan(self):
        digests = [s.digest() for s in _specs(64)]
        a = self._verdicts(FaultPlan(self.CONFIG), digests)
        other = ChaosConfig(seed=8, crash_rate=0.3, hang_rate=0.3,
                            exception_rate=0.3)
        b = self._verdicts(FaultPlan(other), digests)
        assert a != b

    def test_zero_rates_never_fire(self):
        plan = FaultPlan(ChaosConfig())
        assert all(plan.job_fault(s.digest()) is None for s in _specs(32))
        assert plan.injected == {}

    def test_max_faults_per_job_caps_injection(self):
        plan = FaultPlan(ChaosConfig(exception_rate=1.0, max_faults_per_job=2))
        digest = _specs(1)[0].digest()
        assert plan.job_fault(digest) == FaultAction("exception")
        assert plan.job_fault(digest) == FaultAction("exception")
        assert plan.job_fault(digest) is None     # budget spent
        assert plan.faults_for(digest) == 2

    def test_serial_downgrades_crash_and_hang(self):
        plan = FaultPlan(ChaosConfig(crash_rate=1.0))
        digest = _specs(1)[0].digest()
        action = plan.job_fault(digest, serial=True)
        assert action == FaultAction("exception")
        assert plan.injected == {"exception": 1}

    def test_hang_action_carries_duration(self):
        plan = FaultPlan(ChaosConfig(hang_rate=1.0, hang_seconds=123.0))
        action = plan.job_fault(_specs(1)[0].digest())
        assert action == FaultAction("hang", seconds=123.0)

    def test_recovery_accounting(self):
        plan = FaultPlan(ChaosConfig(exception_rate=1.0))
        faulted, clean = (s.digest() for s in _specs(2))
        plan.job_fault(faulted)
        plan.note_outcome(faulted)                # absorbed a fault: recovery
        plan.note_outcome(clean)                  # clean job: not a recovery
        assert plan.recovered == 1
        assert "1 job(s) recovered" in plan.summary()

    def test_corrupt_mode_deterministic(self, tmp_path):
        config = ChaosConfig(cache_corrupt_rate=1.0)
        digest = _specs(1)[0].digest()
        payloads = []
        modes = []
        for run in range(2):
            blob = tmp_path / f"blob{run}.json"
            blob.write_bytes(b'{"spec": 1, "stats": 2}')
            modes.append(FaultPlan(config).corrupt_blob(blob, digest))
            payloads.append(blob.read_bytes())
        assert modes[0] in CORRUPT_MODES
        assert modes == [modes[0]] * 2
        assert payloads[0] == payloads[1]


# ---------------------------------------------------------------------------
# Worker-side verdict execution
# ---------------------------------------------------------------------------

class TestApplyFault:
    def test_exception_raises(self):
        with pytest.raises(InjectedFault):
            apply_fault(FaultAction("exception"))

    def test_hang_sleeps_then_raises(self):
        t0 = time.monotonic()
        with pytest.raises(InjectedFault, match="hang"):
            apply_fault(FaultAction("hang", seconds=0.05))
        assert time.monotonic() - t0 >= 0.05

    def test_run_faulted_without_verdict_runs_payload(self):
        spec = _specs(1)[0]
        assert run_faulted(None, _fake_job, spec) == _fake_job(spec)

    def test_run_faulted_with_verdict_never_reaches_payload(self):
        calls = []
        with pytest.raises(InjectedFault):
            run_faulted(FaultAction("exception"), calls.append, "x")
        assert calls == []


# ---------------------------------------------------------------------------
# Faulted sweeps complete with bit-identical results
# ---------------------------------------------------------------------------

class TestFaultedSweeps:
    def test_serial_sweep_absorbs_exceptions_and_counts_them(self):
        specs = _specs(6)
        clean = Scheduler(job_fn=_fake_job).run(specs)

        obs.enable()
        plan = FaultPlan(ChaosConfig(exception_rate=1.0))
        out = Scheduler(job_fn=_fake_job, retries=1, chaos=plan).run(specs)
        snapshot = obs.registry().snapshot()
        obs.disable()

        assert out == clean
        assert plan.injected == {"exception": len(specs)}
        assert plan.recovered == len(specs)
        assert snapshot["exec/fault/exception"] == len(specs)
        assert snapshot["exec/fault/recovered"] == len(specs)

    def test_parallel_sweep_survives_worker_crashes(self):
        specs = _specs(4)
        clean = Scheduler(job_fn=_fake_job).run(specs)
        plan = FaultPlan(ChaosConfig(crash_rate=1.0))
        out = Scheduler(jobs=2, retries=1, job_fn=_fake_job, chaos=plan).run(specs)
        assert out == clean
        assert plan.injected["crash"] == len(specs)
        assert plan.recovered == len(specs)

    def test_parallel_sweep_survives_hung_workers(self):
        specs = _specs(2)
        clean = Scheduler(job_fn=_fake_job).run(specs)
        plan = FaultPlan(ChaosConfig(hang_rate=1.0, hang_seconds=300.0))
        sched = Scheduler(jobs=2, timeout=1.5, retries=1, job_fn=_fake_job,
                          chaos=plan)
        t0 = time.monotonic()
        out = sched.run(specs)
        assert out == clean
        assert plan.injected["hang"] == len(specs)
        # The injected 300s sleeps were killed, not waited out.
        assert time.monotonic() - t0 < 60

    def test_real_sweep_under_mixed_faults_is_bit_identical(self, tmp_path):
        """The acceptance property: fig5a under crash+hang+exception+cache
        corruption equals the fault-free serial run, bit for bit."""
        repro.exec.reset()
        reference = experiments.fig5a(TINY)

        plan = FaultPlan(ChaosConfig(
            seed=3, crash_rate=0.4, hang_rate=0.3, exception_rate=1.0,
            cache_corrupt_rate=0.5, hang_seconds=0.05,
        ))
        cache = ResultCache(root=tmp_path, chaos=plan)
        repro.exec.configure(jobs=2, retries=1, cache=cache, chaos=plan)
        faulted = experiments.fig5a(TINY)

        assert faulted == reference
        assert sum(plan.injected.values()) > 0    # the storm actually hit
        assert plan.recovered > 0

    def test_completion_needs_retry_budget(self):
        """retries < max_faults_per_job is the documented way to lose."""
        plan = FaultPlan(ChaosConfig(exception_rate=1.0, max_faults_per_job=2))
        with pytest.raises(repro.exec.JobError):
            Scheduler(job_fn=_fake_job, retries=1, chaos=plan).run(_specs(1))


# ---------------------------------------------------------------------------
# Cache integrity: checksums and quarantine
# ---------------------------------------------------------------------------

class TestCacheIntegrity:
    def _store_one(self, tmp_path, chaos=None):
        cache = ResultCache(root=tmp_path, chaos=chaos)
        spec = _specs(1)[0]
        cache.put(spec, _fake_job(spec))
        return cache, spec

    def test_bitflip_is_quarantined_not_deleted(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        path = cache._path(spec)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))

        assert cache.get(spec) is None
        assert not path.exists()                          # never served again
        assert (cache.quarantine_dir / path.name).exists()  # preserved
        assert cache.corrupt == 1
        assert "1 quarantined" in cache.summary()

    def test_foreign_blob_fails_checksum_not_parse(self, tmp_path):
        """Valid JSON with the wrong payload must be caught by the checksum."""
        cache, spec = self._store_one(tmp_path)
        blob = json.loads(cache._path(spec).read_bytes())
        blob["stats"]["cycles"] += 1                       # plausible tamper
        cache._path(spec).write_text(json.dumps(blob))
        assert cache.get(spec) is None
        assert cache.corrupt == 1

    def test_truncated_blob_is_a_miss(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        raw = cache._path(spec).read_bytes()
        cache._path(spec).write_bytes(raw[: len(raw) // 2])
        assert cache.get(spec) is None
        assert (cache.quarantine_dir / cache._path(spec).name).exists()

    def test_quarantined_blobs_do_not_count_as_entries(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        assert len(cache) == 1
        cache._path(spec).write_text("{ not json")
        cache.get(spec)
        assert len(cache) == 0                   # corrupt/ is out of band
        assert cache.prune(0) == 0               # and never pruned

    def test_chaos_corruption_recomputes_then_heals(self, tmp_path):
        """End to end: every stored blob corrupted once; the next sweep
        quarantines + recomputes; the third is served clean from disk."""
        specs = _specs(3)
        plan = FaultPlan(ChaosConfig(cache_corrupt_rate=1.0))
        cache = ResultCache(root=tmp_path, chaos=plan)
        first = Scheduler(cache=cache, job_fn=_fake_job).run(specs)
        assert plan.injected["cache_corrupt"] == len(specs)

        second = Scheduler(cache=cache, job_fn=_fake_job).run(specs)
        assert second == first
        assert cache.corrupt == len(specs)       # all quarantined
        assert cache.stores == 2 * len(specs)    # all recomputed
        # Per-digest corruption is capped, so the re-stored blobs are clean:
        third = Scheduler(cache=cache, job_fn=_fake_job).run(specs)
        assert third == first
        assert cache.hits == len(specs)

    def test_put_never_leaves_tmp_litter(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        assert list(cache.dir.glob("*.tmp*")) == []


# ---------------------------------------------------------------------------
# RunJournal: crash-safe checkpointing
# ---------------------------------------------------------------------------

class TestRunJournal:
    def test_record_and_reload_roundtrip_exact(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = _specs(3)
        with RunJournal(path) as journal:
            for spec in specs:
                assert journal.record(spec, _fake_job(spec))
            assert journal.appended == 3

        again = RunJournal(path)
        assert again.loaded == 3
        for spec in specs:
            assert again.get(spec) == _fake_job(spec)
        assert again.hits == 3

    def test_duplicate_record_is_refused_once_per_digest(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spec = _specs(1)[0]
        with RunJournal(path) as journal:
            assert journal.record(spec, _fake_job(spec))
            assert not journal.record(spec, _fake_job(spec))
        assert len(path.read_text().splitlines()) == 1

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        """A crash mid-append leaves a partial last line; reload must
        recover the intact prefix."""
        path = tmp_path / "sweep.jsonl"
        specs = _specs(2)
        with RunJournal(path) as journal:
            for spec in specs:
                journal.record(spec, _fake_job(spec))
        with open(path, "a") as f:
            f.write('{"schema": 1, "version": "2", "digest": "dead')  # torn

        again = RunJournal(path)
        assert again.loaded == 2
        assert again.skipped_lines == 1

    def test_version_salt_rejects_other_builds(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spec = _specs(1)[0]
        with RunJournal(path, version="0-other-build") as journal:
            journal.record(spec, _fake_job(spec))
        current = RunJournal(path)
        assert current.loaded == 0
        assert current.skipped_lines == 1
        assert current.get(spec) is None

    def test_tampered_record_fails_its_checksum(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spec = _specs(1)[0]
        with RunJournal(path) as journal:
            journal.record(spec, _fake_job(spec))
        rec = json.loads(path.read_text())
        rec["stats"]["cycles"] += 1
        path.write_text(json.dumps(rec) + "\n")
        assert RunJournal(path).loaded == 0


class TestMergeJournals:
    def _write(self, path, specs):
        with RunJournal(path) as journal:
            for spec in specs:
                journal.record(spec, _fake_job(spec))

    def test_fold_across_workers_last_writer_wins(self, tmp_path):
        from repro.chaos import merge_journals
        specs = _specs(4)
        self._write(tmp_path / "w0.jsonl", specs[:3])   # overlap: specs[2]
        self._write(tmp_path / "w1.jsonl", specs[2:])
        merged = merge_journals([tmp_path / "w0.jsonl",
                                 tmp_path / "w1.jsonl"])
        assert len(merged) == 4
        assert merged.sources == 2
        assert merged.duplicates == 1
        for spec in specs:
            assert spec in merged
            assert merged.get(spec) == _fake_job(spec)

    def test_merged_view_is_read_only(self, tmp_path):
        from repro.chaos import merge_journals
        spec = _specs(1)[0]
        self._write(tmp_path / "w0.jsonl", [spec])
        merged = merge_journals([tmp_path / "w0.jsonl"])
        with pytest.raises(TypeError):
            merged.record(spec, _fake_job(spec))

    def test_torn_and_foreign_lines_skipped_per_journal(self, tmp_path):
        from repro.chaos import merge_journals
        specs = _specs(2)
        self._write(tmp_path / "w0.jsonl", specs)
        with open(tmp_path / "w0.jsonl", "a") as f:
            f.write('{"schema": 1, "version": "2", "digest": "dead')  # torn
        with RunJournal(tmp_path / "w1.jsonl",
                        version="0-other-build") as foreign:
            foreign.record(_specs(3)[2], _fake_job(_specs(3)[2]))
        merged = merge_journals([tmp_path / "w0.jsonl",
                                 tmp_path / "w1.jsonl"])
        assert len(merged) == 2           # foreign-build record not trusted
        assert merged.skipped_lines == 2  # one torn + one foreign

    def test_missing_paths_skipped_into_appends_new_digests(self, tmp_path):
        """merge_journals(paths, into=driver) consolidates worker journals
        into the driver's resume journal — exactly the --resume flow."""
        from repro.chaos import merge_journals
        specs = _specs(4)
        driver_path = tmp_path / "driver.jsonl"
        self._write(driver_path, specs[:2])
        self._write(tmp_path / "w0.jsonl", specs[1:])   # overlap: specs[1]
        driver = RunJournal(driver_path)
        out = merge_journals(
            [tmp_path / "w0.jsonl", tmp_path / "never-spawned.jsonl"],
            into=driver,
        )
        assert out is driver
        assert len(driver) == 4
        driver.close()
        # the consolidated journal alone resumes the full sweep
        again = RunJournal(driver_path)
        assert again.loaded == 4
        for spec in specs:
            assert again.get(spec) == _fake_job(spec)


# ---------------------------------------------------------------------------
# Scheduler + journal: interrupted sweeps resume where they stopped
# ---------------------------------------------------------------------------

def _interrupt_after(n):
    """A job_fn that raises KeyboardInterrupt after ``n`` successes."""
    calls = []

    def job(spec):
        if len(calls) >= n:
            raise KeyboardInterrupt("simulated Ctrl-C")
        calls.append(spec.workload)
        return _fake_job(spec)

    return job, calls


class TestSchedulerResume:
    def test_interrupted_sweep_resumes_only_unfinished_jobs(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = _specs(5)
        full = Scheduler(job_fn=_fake_job).run(specs)

        job, calls = _interrupt_after(3)
        hint = io.StringIO()
        journal = RunJournal(path)
        with pytest.raises(KeyboardInterrupt):
            with resume_guard(journal, stream=hint):
                Scheduler(job_fn=job, journal=journal).run(specs)
        journal.close()
        assert len(calls) == 3
        assert "3 finished job(s)" in hint.getvalue()
        assert f"--resume {path}" in hint.getvalue()

        resumed_journal = RunJournal(path)
        assert resumed_journal.loaded == 3
        counted = []

        def counting(spec):
            counted.append(spec.workload)
            return _fake_job(spec)

        out = Scheduler(job_fn=counting, journal=resumed_journal).run(specs)
        assert out == full                        # bit-identical rows
        assert len(counted) == 2                  # only the unfinished jobs
        assert resumed_journal.hits == 3
        assert len(resumed_journal) == len(specs)

    def test_sigterm_is_trapped_and_prints_hint(self, tmp_path):
        journal = RunJournal(tmp_path / "sweep.jsonl")
        hint = io.StringIO()
        with pytest.raises(KeyboardInterrupt):
            with resume_guard(journal, stream=hint):
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(1)                     # give delivery a beat
        assert "resume with" in hint.getvalue()
        # The previous handlers were restored on the way out.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_experiments_resume_through_configured_scheduler(self, tmp_path):
        """repro.eval.experiments rides the journal transparently."""
        path = tmp_path / "fig5a.jsonl"
        total = len(TINY.names()) * (1 + len(experiments.FIG5A_PREDICTORS))

        repro.exec.configure(journal=RunJournal(path))
        cold = experiments.fig5a(TINY)
        assert cold.meta["journal_recorded"] == total
        repro.exec.current_scheduler().journal.close()

        journal = RunJournal(path)
        repro.exec.configure(journal=journal)
        warm = experiments.fig5a(TINY)
        assert warm == cold
        assert journal.loaded == total
        assert warm.meta["journal_resumed"] == total
        assert warm.meta["journal_recorded"] == 0
