"""Unit tests for the synthetic ISA: registers, instructions, cracking."""

import pytest

from repro.isa import (
    LatencyClass,
    Opcode,
    StaticInst,
    crack,
    fp_reg,
    int_reg,
    reg_name,
)
from repro.isa.instruction import TEMP_REG_BASE
from repro.isa.registers import NUM_ARCH_REGS, is_fp_reg


class TestRegisters:
    def test_int_reg(self):
        assert int_reg(0) == 0
        assert int_reg(15) == 15

    def test_fp_reg_offset(self):
        assert fp_reg(0) == 16
        assert fp_reg(15) == 31

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(16)
        with pytest.raises(ValueError):
            fp_reg(16)

    def test_is_fp(self):
        assert not is_fp_reg(int_reg(3))
        assert is_fp_reg(fp_reg(3))

    def test_names(self):
        assert reg_name(int_reg(3)) == "r3"
        assert reg_name(fp_reg(1)) == "f1"
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)


class TestStaticInst:
    def test_length_bounds(self):
        with pytest.raises(ValueError):
            StaticInst(Opcode.NOP, length=0)
        with pytest.raises(ValueError):
            StaticInst(Opcode.NOP, length=16)

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            StaticInst(Opcode.BEQ, srcs=(1, 2), length=4)

    def test_branch_flags(self):
        beq = StaticInst(Opcode.BEQ, srcs=(1, 2), target="loop", length=2)
        jmp = StaticInst(Opcode.JMP, target="loop", length=2)
        add = StaticInst(Opcode.ADD, dests=(1,), srcs=(2, 3), length=3)
        assert beq.is_branch and beq.is_conditional
        assert jmp.is_branch and not jmp.is_conditional
        assert not add.is_branch


class TestCrack:
    def test_alu_single_uop(self):
        inst = StaticInst(Opcode.ADD, dests=(1,), srcs=(2, 3), length=3)
        (uop,) = crack(inst)
        assert uop.dest == 1
        assert uop.srcs == (2, 3)
        assert uop.latency_class is LatencyClass.ALU
        assert uop.produces_value

    def test_load(self):
        inst = StaticInst(Opcode.LOAD, dests=(4,), srcs=(5,), imm=8, length=4)
        (uop,) = crack(inst)
        assert uop.is_load
        assert uop.latency_class is LatencyClass.MEM

    def test_store_cracks_to_two(self):
        inst = StaticInst(Opcode.STORE, srcs=(1, 2), length=4)
        uops = crack(inst)
        assert len(uops) == 2
        assert uops[1].is_store
        assert all(u.dest is None for u in uops)

    def test_loadadd_uses_temp(self):
        inst = StaticInst(Opcode.LOADADD, dests=(1,), srcs=(2, 3), length=5)
        load, add = crack(inst)
        assert load.is_load
        assert load.dest == TEMP_REG_BASE
        assert TEMP_REG_BASE in add.srcs
        assert add.dest == 1

    def test_divmod_two_results(self):
        inst = StaticInst(Opcode.DIVMOD, dests=(1, 2), srcs=(3, 4), length=4)
        q, r = crack(inst)
        assert q.dest == 1 and r.dest == 2
        assert q.latency_class is LatencyClass.DIV
        assert q.uop_index == 0 and r.uop_index == 1

    def test_li_is_free(self):
        inst = StaticInst(Opcode.LI, dests=(1,), imm=5, length=2)
        (uop,) = crack(inst)
        assert uop.is_load_imm
        assert uop.produces_value

    def test_branch_no_result(self):
        inst = StaticInst(Opcode.BNE, srcs=(1, 2), target="x", length=2)
        (uop,) = crack(inst)
        assert uop.is_branch
        assert not uop.produces_value

    def test_fp_latency_classes(self):
        fadd = StaticInst(Opcode.FADD, dests=(17,), srcs=(17, 18), length=4)
        fmul = StaticInst(Opcode.FMUL, dests=(17,), srcs=(17, 18), length=4)
        fdiv = StaticInst(Opcode.FDIV, dests=(17,), srcs=(17, 18), length=4)
        assert crack(fadd)[0].latency_class is LatencyClass.FP
        assert crack(fmul)[0].latency_class is LatencyClass.FPMUL
        assert crack(fdiv)[0].latency_class is LatencyClass.FPDIV

    def test_latency_classes_distinct(self):
        # A regression guard: enum members must not alias.
        assert LatencyClass.FP is not LatencyClass.MUL
        assert LatencyClass.ALU is not LatencyClass.BRANCH
        assert len({m.value for m in LatencyClass}) == len(list(LatencyClass))
