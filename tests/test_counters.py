"""Unit tests for saturating and forward probabilistic counters."""

import pytest

from repro.common.counters import (
    PAPER_FPC_PROBABILITIES,
    ForwardProbabilisticCounter,
    SaturatingCounter,
)
from repro.common.rng import XorShift64


class TestSaturatingCounter:
    def test_initial(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 0
        assert c.max_value == 3

    def test_saturates_up(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.increment()
        assert c.value == 3
        assert c.is_saturated

    def test_saturates_down(self):
        c = SaturatingCounter(bits=2, initial=1)
        for _ in range(10):
            c.decrement()
        assert c.value == 0

    def test_reset(self):
        c = SaturatingCounter(bits=3, initial=5)
        c.reset()
        assert c.value == 0

    def test_reset_out_of_range(self):
        c = SaturatingCounter(bits=2)
        with pytest.raises(ValueError):
            c.reset(4)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_bad_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)


class TestFPCProbabilities:
    def test_paper_vector_length(self):
        # 3-bit counter -> 7 transitions.
        assert len(PAPER_FPC_PROBABILITIES) == 7

    def test_paper_vector_values(self):
        assert PAPER_FPC_PROBABILITIES[0] == 1.0
        assert PAPER_FPC_PROBABILITIES[1] == 1 / 16
        assert PAPER_FPC_PROBABILITIES[5] == 1 / 32

    def test_expected_corrects_to_saturate(self):
        # E[corrects] = 1 + 4*16 + 2*32 = 129: the "couple hundred correct
        # predictions" gate of the paper.
        expected = sum(1 / p for p in PAPER_FPC_PROBABILITIES)
        assert expected == 129


class TestForwardProbabilisticCounter:
    def test_first_step_always_advances(self):
        c = ForwardProbabilisticCounter()
        c.on_correct()
        assert c.value == 1

    def test_reset_on_incorrect(self):
        c = ForwardProbabilisticCounter(initial=5)
        c.on_incorrect()
        assert c.value == 0

    def test_confident_only_at_max(self):
        c = ForwardProbabilisticCounter()
        assert not c.is_confident
        c.set(c.max_value)
        assert c.is_confident

    def test_eventually_saturates(self):
        c = ForwardProbabilisticCounter(rng=XorShift64(7))
        for _ in range(5000):
            c.on_correct()
        assert c.is_confident

    def test_set_out_of_range(self):
        c = ForwardProbabilisticCounter()
        with pytest.raises(ValueError):
            c.set(8)

    def test_wrong_probability_count(self):
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter(bits=2, probabilities=(1.0,) * 7)

    def test_deterministic_with_seed(self):
        a = ForwardProbabilisticCounter(rng=XorShift64(3))
        b = ForwardProbabilisticCounter(rng=XorShift64(3))
        for _ in range(500):
            a.on_correct()
            b.on_correct()
        assert a.value == b.value
