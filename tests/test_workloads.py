"""Tests for the workload kernels and the 36-benchmark suite."""

import pytest

from repro.workloads import all_workload_names, build_workload, generate_trace
from repro.workloads.kernels import (
    build_constant_kernel,
    build_control_dep_kernel,
    build_h2p_kernel,
    build_mixed_kernel,
    build_pointer_chase_kernel,
    build_random_kernel,
    build_strided_kernel,
)
from repro.workloads.suite import (
    EXTRA,
    SUITE,
    extra_workload_names,
    get_spec,
)


class TestSuite:
    def test_thirty_six_workloads(self):
        assert len(SUITE) == 36
        assert len(all_workload_names()) == 36

    def test_int_fp_split_matches_table2(self):
        ints = sum(1 for s in SUITE if s.category == "INT")
        fps = sum(1 for s in SUITE if s.category == "FP")
        assert ints == 18 and fps == 18

    def test_paper_ipcs_recorded(self):
        assert get_spec("mcf").paper_ipc == 0.113
        assert get_spec("mgrid").paper_ipc == 2.361

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_spec("notabenchmark")

    @pytest.mark.parametrize("name", all_workload_names())
    def test_every_workload_builds_and_runs(self, name):
        kernel = build_workload(name)
        trace = generate_trace(kernel.program, 2000, name=name,
                               init_mem=kernel.init_mem)
        # Multi-µ-op instructions may overshoot the budget by one µ-op.
        assert len(trace.uops) >= 2000  # no premature halt
        assert any(u.is_vp_eligible for u in trace.uops)

    def test_deterministic_traces(self):
        k1, k2 = build_workload("swim"), build_workload("swim")
        t1 = generate_trace(k1.program, 1000, init_mem=k1.init_mem)
        t2 = generate_trace(k2.program, 1000, init_mem=k2.init_mem)
        assert [u.value for u in t1.uops] == [u.value for u in t2.uops]

    def test_distinct_seeds_distinct_layouts(self):
        a = build_workload("swim").program.code_bytes()
        b = build_workload("mgrid").program.code_bytes()
        assert a != b

    def test_extra_workloads_resolve_but_stay_out_of_the_suite(self):
        # h2p_hard is reachable by name for the h2p experiment without
        # changing the paper's 36-workload suite (or any cached sweep).
        assert "h2p_hard" in extra_workload_names()
        assert "h2p_hard" not in all_workload_names()
        assert len(SUITE) == 36 and len(EXTRA) >= 1
        assert get_spec("h2p_hard").category == "INT"
        kernel = build_workload("h2p_hard")
        trace = generate_trace(kernel.program, 2000, name="h2p_hard",
                               init_mem=kernel.init_mem)
        assert len(trace.uops) >= 2000


class TestKernelCharacter:
    """Each kernel class must exhibit its designed value-pattern."""

    def _loads(self, kernel, n=4000):
        trace = generate_trace(kernel.program, n, init_mem=kernel.init_mem)
        return trace

    def test_strided_kernel_has_strided_loads(self):
        kernel = build_strided_kernel(seed=1, trip=32)
        trace = self._loads(kernel)
        from collections import defaultdict
        by_pc = defaultdict(list)
        for u in trace.uops:
            if u.is_load:
                by_pc[u.pc].append(u.value)
        # At least one load PC shows a constant stride over a run.
        found = False
        for values in by_pc.values():
            if len(values) > 10:
                deltas = {b - a for a, b in zip(values[4:10], values[5:11])}
                if len(deltas) == 1:
                    found = True
        assert found

    def test_pointer_chase_payload_not_strided(self):
        kernel = build_pointer_chase_kernel(seed=3, nodes=256)
        trace = self._loads(kernel)
        loads = [u for u in trace.uops if u.is_load]
        ptr_values = [u.value for u in loads[::2]][:50]
        deltas = {b - a for a, b in zip(ptr_values, ptr_values[1:])}
        assert len(deltas) > 10  # shuffled ring: no dominant stride

    def test_pointer_chase_payload_on_other_line(self):
        kernel = build_pointer_chase_kernel(seed=3, nodes=64, spread=4096)
        trace = self._loads(kernel, 600)
        loads = [u for u in trace.uops if u.is_load]
        ptr, pay = loads[0], loads[1]
        assert (ptr.mem_addr >> 6) != (pay.mem_addr >> 6)

    def test_pointer_chase_spread_validation(self):
        with pytest.raises(ValueError):
            build_pointer_chase_kernel(spread=64)

    def test_random_kernel_unpredictable_branches(self):
        kernel = build_random_kernel(seed=4)
        trace = self._loads(kernel)
        branches = [u for u in trace.uops if u.is_cond_branch]
        taken = sum(u.branch_taken for u in branches)
        assert 0.3 < taken / len(branches) < 0.7

    def test_h2p_kernel_branches_are_coin_flips(self):
        kernel = build_h2p_kernel(seed=7, trip=64, hard_branches=2)
        trace = self._loads(kernel, 8000)
        from collections import defaultdict
        by_pc = defaultdict(list)
        for u in trace.uops:
            if u.is_cond_branch:
                by_pc[u.pc].append(u.branch_taken)
        # The hard branches flip near 50/50; the loop-control branches are
        # near-always taken — cost concentrates in the former.
        rates = sorted(sum(t) / len(t) for t in by_pc.values() if len(t) > 50)
        assert any(0.3 < r < 0.7 for r in rates)
        assert rates[-1] > 0.9

    def test_h2p_kernel_stepping_loads_hold_then_step(self):
        kernel = build_h2p_kernel(seed=7, trip=64, stepping_loads=1,
                                  change_period=8)
        trace = self._loads(kernel, 8000)
        from collections import defaultdict
        by_pc = defaultdict(list)
        for u in trace.uops:
            if u.is_load:
                by_pc[u.pc].append(u.value)
        # Some load PC repeats one value for stretches, then steps to a
        # new one (the used-then-wrong vp_squash generator).
        stepped = False
        for values in by_pc.values():
            distinct = len(set(values))
            if len(values) > 40 and 1 < distinct < len(values) / 4:
                stepped = True
        assert stepped

    def test_h2p_kernel_change_period_validation(self):
        with pytest.raises(ValueError):
            build_h2p_kernel(change_period=6)

    def test_constant_kernel_reloads_constant(self):
        kernel = build_constant_kernel(seed=5, change_period=10_000)
        trace = self._loads(kernel)
        loads = [u for u in trace.uops if u.is_load]
        assert len({u.value for u in loads}) <= 2

    def test_control_dep_table_values_follow_history(self):
        kernel = build_control_dep_kernel(seed=2, period=4, arms=3)
        trace = self._loads(kernel, 8000)
        # The table load cycles through `period` slots with an increment
        # per revisit: the value sequence per slot is strided.
        loads = [u for u in trace.uops if u.is_load]
        from collections import defaultdict
        by_addr = defaultdict(list)
        for u in loads:
            by_addr[u.mem_addr].append(u.value)
        for values in by_addr.values():
            if len(values) > 4:
                deltas = {b - a for a, b in zip(values, values[1:])}
                assert deltas == {17}

    def test_mixed_kernel_runs(self):
        kernel = build_mixed_kernel(seed=6, use_divmod=True)
        trace = self._loads(kernel)
        assert any(u.uop_index == 1 and u.produces_value for u in trace.uops)

    def test_noise_blocks_produce_mispredictable_branch(self):
        kernel = build_strided_kernel(seed=1, trip=64, noise_period=4)
        trace = self._loads(kernel, 20000)
        # The noise branch outcome is PRNG-driven: both directions occur.
        noise_pcs = {}
        for u in trace.uops:
            if u.is_cond_branch:
                noise_pcs.setdefault(u.pc, []).append(u.branch_taken)
        mixed = [
            pc for pc, outs in noise_pcs.items()
            if 0.2 < sum(outs) / len(outs) < 0.8 and len(outs) > 50
        ]
        assert mixed  # at least the PRNG-steered branch

    def test_variable_instruction_lengths(self):
        kernel = build_strided_kernel(seed=1)
        lengths = {i.length for i in kernel.program.insts}
        assert len(lengths) >= 4
        assert all(1 <= le <= 15 for le in lengths)

    def test_instructions_straddle_blocks(self):
        """Variable lengths must create non-zero boundaries (the BeBoP
        attribution problem exists)."""
        kernel = build_strided_kernel(seed=1)
        trace = generate_trace(kernel.program, 2000, init_mem=kernel.init_mem)
        boundaries = {u.boundary for u in trace.uops}
        assert len(boundaries) > 4
