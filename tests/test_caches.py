"""Unit tests for the cache hierarchy and DRAM model."""

import pytest

from repro.pipeline.caches import LINE_BYTES, Cache, MemoryHierarchy


class TestCache:
    def test_miss_then_hit(self):
        c = Cache(1024, ways=2, latency=4)
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = Cache(1024, ways=2, latency=4)
        c.access(0x1000)
        assert c.access(0x1000 + LINE_BYTES - 1)

    def test_lru_eviction(self):
        c = Cache(2 * LINE_BYTES, ways=2, latency=1)  # 1 set, 2 ways
        a, b, d = 0x0, 0x1000, 0x2000
        c.access(a)
        c.access(b)
        c.access(a)      # b is now LRU
        c.access(d)      # evicts b
        assert c.probe(a)
        assert not c.probe(b)

    def test_probe_no_allocate(self):
        c = Cache(1024, ways=2, latency=1)
        assert not c.probe(0x5000)
        assert not c.probe(0x5000)
        assert c.misses == 0  # probe counts nothing

    def test_fill(self):
        c = Cache(1024, ways=2, latency=1)
        c.fill(0x3000)
        assert c.probe(0x3000)
        assert c.misses == 0

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(1024, ways=3, latency=1)


class TestMemoryHierarchy:
    def test_l1_hit_latency(self):
        m = MemoryHierarchy()
        m.load_latency(0x8000)          # install
        assert m.load_latency(0x8000) == m.l1d.latency

    def test_l2_hit_latency(self):
        m = MemoryHierarchy(l1d_size=2 * LINE_BYTES, l1_ways=2)
        m.load_latency(0x0)
        m.load_latency(0x10000)
        m.load_latency(0x20000)          # evicts 0x0 from tiny L1
        lat = m.load_latency(0x0)        # L1 miss, L2 hit
        assert lat == m.l1d.latency + m.l2.latency

    def test_dram_latency_range(self):
        m = MemoryHierarchy()
        lat = m.load_latency(0x9999_0000)
        assert lat >= m.l1d.latency + m.l2.latency + m.dram_min_latency
        assert lat <= m.l1d.latency + m.l2.latency + m.dram_max_latency

    def test_row_buffer_hit_is_min_latency(self):
        m = MemoryHierarchy(l1d_size=2 * LINE_BYTES, l1_ways=2,
                            l2_size=4 * LINE_BYTES, l2_ways=4)
        base = 0x4000_0000
        m.load_latency(base)                 # opens the row
        # Same 8K row, different line; thrash caches with tiny sizes so the
        # second access also reaches DRAM.
        lat = m.load_latency(base + 2 * LINE_BYTES)
        assert lat == m.l1d.latency + m.l2.latency + m.dram_min_latency

    def test_prefetcher_fills_l2(self):
        m = MemoryHierarchy(prefetch_degree=8)
        m.load_latency(0x7000_0000)
        assert m.l2.probe(0x7000_0000 + LINE_BYTES)
        assert m.l2.probe(0x7000_0000 + 8 * LINE_BYTES)

    def test_ifetch_path(self):
        m = MemoryHierarchy()
        first = m.ifetch_latency(0x40_0040)
        second = m.ifetch_latency(0x40_0040)
        assert first > second
        assert second == m.l1i.latency

    def test_store_allocates(self):
        m = MemoryHierarchy()
        m.store_latency(0xA000)
        assert m.load_latency(0xA000) == m.l1d.latency

    def test_dram_access_counted(self):
        m = MemoryHierarchy()
        m.load_latency(0x1234_0000)
        assert m.dram_accesses == 1
