"""Per-PC recovery-cost attribution and table-bank telemetry.

The contracts under test, in order of importance:

* **instrumentation invisibility** — a run with attribution *and* bank
  telemetry riding along produces :class:`SimStats` bit-identical to the
  golden nine-configuration records (same file as
  ``test_golden_identity``);
* **exact-sum** — per-PC attributed cycles sum exactly (not
  approximately) to the ``vp_squash + branch_redirect`` CPI-stack
  components of the same run, per workload class, and the sum survives
  top-k compaction;
* **H2P concentration** — on the ``h2p_hard`` kernel the 10 costliest
  PCs own at least 80% of the squash/redirect cycles (the kernel is
  built so recovery cost concentrates in a handful of µ-ops).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.eval.runner import (
    RunSpec,
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_eole_instr_vp,
    run_instr_vp,
)
from repro.obs import (
    ATTRIBUTED_CAUSES,
    BankTelemetry,
    CPIStackCollector,
    PCAttribution,
)
from repro.predictors.perpath import PerPathStridePredictor
from repro.workloads.suite import get_spec

_GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_stats.json").read_text()
)

UOPS, WARMUP = 24_000, 8_000


def _run_instrumented(key: str):
    """One golden configuration with every collector riding along."""
    workload, config = key.split("/")
    trace = get_trace(workload, _GOLDEN["uops"])
    warmup = _GOLDEN["warmup"]
    obs = dict(
        cpi=CPIStackCollector(),
        attrib=PCAttribution(),
        banks=BankTelemetry(interval=4_000),
    )
    if config == "baseline":
        stats = run_baseline(trace, warmup, **obs)
    elif config == "dvtage":
        stats = run_instr_vp(trace, make_instr_predictor("d-vtage"), warmup,
                             **obs)
    elif config == "vtage":
        stats = run_instr_vp(trace, make_instr_predictor("vtage"), warmup,
                             **obs)
    elif config == "hybrid":
        stats = run_instr_vp(trace, make_instr_predictor("vtage-2d-stride"),
                             warmup, **obs)
    elif config == "perpath":
        stats = run_instr_vp(trace, PerPathStridePredictor(), warmup, **obs)
    elif config == "eole-dvtage":
        stats = run_eole_instr_vp(trace, make_instr_predictor("d-vtage"),
                                  warmup, **obs)
    elif config == "eole-bebop":
        stats = run_bebop_eole(trace, make_bebop_engine(), warmup, **obs)
    else:
        raise ValueError(f"unknown golden config {config!r}")
    return stats, obs["cpi"], obs["attrib"], obs["banks"]


class TestGoldenIdentityInstrumented:
    @pytest.mark.parametrize("key", sorted(_GOLDEN["runs"]))
    def test_attrib_and_banks_are_invisible(self, key):
        stats, cpi, attrib, banks = _run_instrumented(key)
        assert dataclasses.asdict(stats) == _GOLDEN["runs"][key], (
            f"{key}: attribution/bank telemetry perturbed the simulation — "
            "collectors must be passive"
        )
        # The exact-sum contract holds on every configuration too.
        want = sum(cpi.stack.components[c] for c in ATTRIBUTED_CAUSES)
        assert attrib.total_cycles() == want
        assert sum(attrib.cause_cycles().values()) == want


class TestExactSum:
    #: One representative per workload class, plus the H2P kernel.
    WORKLOADS = ("swim", "gcc", "gobmk", "h2p_hard")

    def test_per_class_sums_match_cpi_stack(self):
        by_class_stack: dict[str, int] = {}
        by_class_attrib: dict[str, int] = {}
        for name in self.WORKLOADS:
            trace = get_trace(name, UOPS)
            cpi = CPIStackCollector()
            attrib = PCAttribution()
            run_bebop_eole(trace, make_bebop_engine(), WARMUP,
                           cpi=cpi, attrib=attrib)
            category = get_spec(name).category
            want = sum(cpi.stack.components[c] for c in ATTRIBUTED_CAUSES)
            by_class_stack[category] = (
                by_class_stack.get(category, 0) + want
            )
            by_class_attrib[category] = (
                by_class_attrib.get(category, 0) + attrib.total_cycles()
            )
            # Per-cause totals decompose the same way.
            for cause in ATTRIBUTED_CAUSES:
                assert (attrib.cause_cycles()[cause]
                        == cpi.stack.components[cause]), (name, cause)
        assert by_class_attrib == by_class_stack
        assert set(by_class_stack) == {"INT", "FP"}

    def test_baseline_attributes_only_branch_redirects(self):
        trace = get_trace("gobmk", UOPS)
        cpi = CPIStackCollector()
        attrib = PCAttribution()
        run_baseline(trace, WARMUP, cpi=cpi, attrib=attrib)
        cycles = attrib.cause_cycles()
        assert cycles["vp_squash"] == 0
        assert cycles["branch_redirect"] == cpi.stack.components[
            "branch_redirect"]


class TestH2PKernel:
    def test_top10_own_at_least_80_percent(self):
        trace = get_trace("h2p_hard", UOPS)
        cpi = CPIStackCollector()
        attrib = PCAttribution()
        run_bebop_eole(trace, make_bebop_engine(), WARMUP,
                       cpi=cpi, attrib=attrib)
        assert attrib.total_cycles() > 0, "kernel must generate recovery cost"
        assert attrib.share(10) >= 0.80
        # The worst PCs are the hard branches / stepping loads by design.
        worst = attrib.top(2)
        assert all(r.cycles > 0 for r in worst)

    def test_summary_shape(self):
        trace = get_trace("h2p_hard", UOPS)
        attrib = PCAttribution()
        stats = run_bebop_eole(trace, make_bebop_engine(), WARMUP,
                               attrib=attrib)
        s = attrib.summary(top=5)
        assert s["workload"] == stats.workload
        assert s["cycles"] == stats.cycles
        assert len(s["pcs"]) <= 5
        assert set(s["shares"]) == {1, 5, 10}
        assert s["pcs"] == sorted(s["pcs"], key=lambda r: -r["cycles"])
        for rec in s["pcs"]:
            assert rec["kind"] in ("branch", "vp", "mixed", "other")
            assert sum(rec["by_cause"].values()) == rec["cycles"]


class TestCompaction:
    def test_exact_sum_survives_compaction(self):
        attrib = PCAttribution(top_k=2, tail_samples=2, limit=4)
        total = 0
        for pc in range(64):
            attrib.account(pc, "branch_redirect", pc + 1)
            total += pc + 1
        assert attrib.compactions > 0
        assert len(attrib) <= attrib.limit
        assert attrib.total_cycles() == total
        assert attrib.cause_cycles()["branch_redirect"] == total
        assert len(attrib.tail_sampled) <= 2
        assert attrib.share(2) <= 1.0

    def test_fresh_record_is_not_evicted_by_its_own_insert(self):
        # Compaction runs *before* the triggering insert: the new record
        # must survive so its subsequent cycles are never orphaned.
        attrib = PCAttribution(top_k=1, tail_samples=1, limit=2)
        attrib.account(1, "vp_squash", 100)
        attrib.account(2, "vp_squash", 50)
        attrib.account(3, "vp_squash", 10)   # triggers compaction
        assert 3 in attrib._records
        attrib.account(3, "vp_squash", 5)
        assert attrib.total_cycles() == 165

    def test_validation(self):
        with pytest.raises(ValueError, match="top_k"):
            PCAttribution(top_k=0)
        with pytest.raises(ValueError, match="limit"):
            PCAttribution(top_k=8, limit=8)


class TestBankTelemetry:
    def test_bebop_banks_register_and_sample(self):
        trace = get_trace("gcc", UOPS)
        banks = BankTelemetry(interval=4_000)
        run_bebop_eole(trace, make_bebop_engine(), WARMUP, banks=banks)
        assert set(banks.bank_names) == {"lvt", "vt0", "tagged"}
        assert banks.samples >= 2
        snaps = banks.snapshots
        assert snaps[-1]["final"]
        assert [s["uop"] for s in snaps] == sorted(s["uop"] for s in snaps)
        for snap in snaps:
            for name, bank in snap["banks"].items():
                assert 0.0 <= bank["occupancy"] <= 1.0, name
        # Occupancy only grows as the predictor warms (monotone fill of
        # a cold table is the expected warmup curve shape).
        curve = banks.curve("tagged")
        assert curve[-1][1] >= curve[0][1]
        summary = banks.summary()
        assert summary["interval"] == 4_000
        assert set(summary["banks"]) == {"lvt", "vt0", "tagged"}

    def test_snapshot_bound_decimates(self):
        from repro.common.tables import Field, make_bank
        banks = BankTelemetry(interval=1, max_snapshots=4)
        banks.register("b", make_bank(8, [Field("v")]))
        for i in range(64):
            banks.sample(i)
        assert len(banks.snapshots) <= 4
        assert banks.samples == 64
        assert banks.snapshots[-1]["uop"] == 63

    def test_stacked_bank_samples_per_variant_rows(self):
        """A variant-stacked bank (batched sweeps) yields one occupancy
        row per variant, not one smeared flattened bank."""
        from repro.common.tables import Field, make_bank
        fields = [Field("tag", default=-1), Field("useful")]
        stack = make_bank(8, fields, variants=3, backend="python")
        banks = BankTelemetry(interval=1)
        banks.register("stacked", stack, tag_field="tag", tag_invalid=-1,
                       useful_field="useful")
        # Fill variant 1 fully, variant 2 half; variant 0 stays cold.
        stack.view(1).fill("tag", 7)
        for i in range(4):
            stack.write(2, "tag", i, 5)
        stack.write(2, "useful", 0, 3)
        snap = banks.sample(0)
        rows = snap["banks"]["stacked"]["variants"]
        assert [r["occupancy"] for r in rows] == [0.0, 1.0, 0.5]
        assert [r["useful_mass"] for r in rows] == [0, 0, 3]
        assert snap["banks"]["stacked"]["occupancy"] == pytest.approx(0.5)
        assert snap["banks"]["stacked"]["useful_mass"] == 3
        # Ages advance per variant: variant 1's entries survive, variant
        # 0 stays at age 0 even though the stack as a whole has activity.
        banks.sample(1)
        snap = banks.sample(2)
        rows = snap["banks"]["stacked"]["variants"]
        assert rows[1]["components"][0]["mean_age"] == 2.0
        assert rows[0]["components"][0]["mean_age"] == 0.0
        summary = banks.summary()
        assert summary["banks"]["stacked"]["n_variants"] == 3

    def test_snapshot_bound_decimates_with_stacked_banks(self):
        """The decimation bound is per-snapshot regardless of how many
        variant rows each snapshot carries."""
        from repro.common.tables import Field, make_bank
        banks = BankTelemetry(interval=1, max_snapshots=4)
        banks.register(
            "s", make_bank(8, [Field("tag", default=-1)], variants=5,
                           backend="python"),
            tag_field="tag",
        )
        for i in range(64):
            banks.sample(i)
        assert len(banks.snapshots) <= 4
        assert banks.samples == 64
        assert banks.snapshots[-1]["uop"] == 63
        assert all(
            len(s["banks"]["s"]["variants"]) == 5 for s in banks.snapshots
        )

    def test_register_validation(self):
        from repro.common.tables import Field, make_bank
        banks = BankTelemetry()
        bank = make_bank(8, [Field("v")])
        banks.register("b", bank)
        with pytest.raises(ValueError, match="already registered"):
            banks.register("b", bank)
        with pytest.raises(ValueError, match="split into"):
            banks.register("c", make_bank(9, [Field("v")]), components=2)
        with pytest.raises(ValueError, match="interval"):
            BankTelemetry(interval=0)
