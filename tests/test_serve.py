"""Tests for repro.serve: protocol, server+client, chaos, golden identity.

The integration tests run a real :class:`SweepServer` on a background
thread (``ServerThread``) with a cheap fake ``job_fn`` so the HTTP
plumbing — dedup, ordering, verification, error accounting — is
exercised without paying for simulations.  Bit-identity of the *real*
compute path over HTTP is pinned by ``TestGoldenOverHTTP``, which
replays the committed golden-stats configurations through a server and
compares byte-for-byte against ``tests/data/golden_stats.json``.
"""

import contextlib
import dataclasses
import http.client
import http.server
import json
import re
import socket
import threading
import time
from pathlib import Path

import pytest

import repro.exec
import repro.obs as obs
from repro.eval import experiments
from repro.eval.runner import RunSpec
from repro.exec import (
    ResultCache,
    baseline_job,
    bebop_job,
    instr_vp_job,
    stats_to_dict,
)
from repro.pipeline import SimStats
from repro.serve import (
    ProtocolError,
    RemoteScheduler,
    ServeClient,
    ServerError,
    ServerThread,
)
from repro.serve import protocol

TINY = RunSpec(uops=4_000, warmup=1_000, workloads=("swim", "gobmk"))


@pytest.fixture(autouse=True)
def _reset_default_scheduler():
    """RemoteScheduler installs itself globally; leave the default serial."""
    yield
    repro.exec.reset()


def _fake_job(spec):
    """Cheap stand-in cell: stats derived from the spec, no simulation."""
    return SimStats(workload=spec.workload, cycles=spec.uops,
                    insts=2 * spec.uops)


def _slow_fake_job(spec):
    time.sleep(0.4)
    return _fake_job(spec)


def _raising_job(spec):
    raise RuntimeError(f"boom: {spec.workload}")


# ---------------------------------------------------------------------------
# Protocol documents.
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_digest_validation(self):
        good = baseline_job("swim", 2000, 500).digest()
        assert protocol.is_digest(good)
        for bad in ("", "xyz", good[:-1], good + "0", good.upper(),
                    None, 42, "../" + good[3:]):
            assert not protocol.is_digest(bad)
            with pytest.raises(ProtocolError):
                protocol.validate_digest(bad)

    def test_submit_roundtrip(self):
        spec = bebop_job("swim", uops=2000, warmup=500)
        doc = protocol.encode_submit(spec)
        assert doc["v"] == protocol.PROTOCOL_VERSION
        again = protocol.decode_submit(json.loads(json.dumps(doc)))
        assert again == spec
        assert again.digest() == spec.digest()

    def test_version_mismatch_rejected(self):
        doc = protocol.encode_submit(baseline_job("swim", 2000, 500))
        doc["v"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            protocol.decode_submit(doc)

    def test_malformed_spec_rejected(self):
        with pytest.raises(ProtocolError, match="spec"):
            protocol.decode_submit({"v": protocol.PROTOCOL_VERSION,
                                    "spec": {"workload": "swim"}})

    def test_sweep_limits(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            protocol.decode_sweep({"v": protocol.PROTOCOL_VERSION,
                                   "specs": []})
        too_many = [baseline_job("swim", 2000, 500).as_dict()] * (
            protocol.MAX_SWEEP_SPECS + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_sweep({"v": protocol.PROTOCOL_VERSION,
                                   "specs": too_many})

    def test_result_roundtrip_and_verification(self):
        spec = baseline_job("swim", 2000, 500)
        stats = _fake_job(spec)
        doc = protocol.encode_result(spec, stats, "cache")
        spec2, stats2, source = protocol.decode_result(
            json.loads(json.dumps(doc)), expect_digest=spec.digest())
        assert (spec2, source) == (spec, "cache")
        assert stats_to_dict(stats2) == stats_to_dict(stats)

    def test_tampered_stats_fail_checksum(self):
        spec = baseline_job("swim", 2000, 500)
        doc = protocol.encode_result(spec, _fake_job(spec), "cache")
        doc["stats"]["cycles"] += 1
        with pytest.raises(ProtocolError, match="checksum"):
            protocol.decode_result(doc)

    def test_wrong_digest_rejected(self):
        spec = baseline_job("swim", 2000, 500)
        other = baseline_job("gobmk", 2000, 500)
        doc = protocol.encode_result(spec, _fake_job(spec), "computed")
        with pytest.raises(ProtocolError, match="digest"):
            protocol.decode_result(doc, expect_digest=other.digest())

    def test_unknown_source_rejected(self):
        spec = baseline_job("swim", 2000, 500)
        doc = protocol.encode_result(spec, _fake_job(spec), "cache")
        doc["source"] = "guessed"
        with pytest.raises(ProtocolError, match="source"):
            protocol.decode_result(doc)

    def test_sweep_results_length_must_match(self):
        spec = baseline_job("swim", 2000, 500)
        doc = protocol.encode_sweep_results(
            [protocol.encode_result(spec, _fake_job(spec), "cache")])
        with pytest.raises(ProtocolError, match="expected 2"):
            protocol.decode_sweep_results(
                doc, expect=[spec.digest(), spec.digest()])

    def test_parse_json_guards(self):
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.parse_json(b"{ nope")
        with pytest.raises(ProtocolError, match="object"):
            protocol.parse_json(b"[1, 2]")
        big = b" " * (protocol.MAX_BODY_BYTES + 1)
        with pytest.raises(ProtocolError) as err:
            protocol.parse_json(big)
        assert err.value.status == 413


# ---------------------------------------------------------------------------
# Server + client integration (fake jobs — plumbing only).
# ---------------------------------------------------------------------------

@pytest.fixture()
def server(tmp_path):
    srv = ServerThread(cache=ResultCache(root=tmp_path), jobs=1,
                       job_fn=_fake_job).start()
    try:
        yield srv
    finally:
        srv.stop()


class TestServer:
    def test_submit_cold_then_warm(self, server):
        spec = baseline_job("swim", 2000, 500)
        with ServeClient(server.url) as client:
            stats, source = client.submit_with_source(spec)
            assert source == "computed"
            assert stats_to_dict(stats) == stats_to_dict(_fake_job(spec))
            again, source = client.submit_with_source(spec)
            assert source == "cache"
            assert again == stats
        assert server.server.misses == 1
        assert server.server.hits == 1

    def test_sweep_preserves_request_order(self, server):
        specs = [baseline_job(w, 2000 + i, 500)
                 for i, w in enumerate(("swim", "gobmk", "mcf", "gcc"))]
        with ServeClient(server.url) as client:
            out = client.sweep(specs)
        assert [s.workload for s in out] == [s.workload for s in specs]
        assert [s.cycles for s in out] == [s.uops for s in specs]

    def test_result_route(self, server):
        spec = baseline_job("swim", 2000, 500)
        other = baseline_job("gobmk", 4000, 500)
        with ServeClient(server.url) as client:
            assert client.result(spec.digest()) is None   # not cached yet
            computed = client.submit(spec)
            cached = client.result(spec.digest())
            assert cached == computed
            assert client.result(other.digest()) is None
            with pytest.raises(ProtocolError):
                client.result("not-a-digest")

    def test_concurrent_same_digest_deduplicates(self, tmp_path):
        srv = ServerThread(cache=ResultCache(root=tmp_path), jobs=1,
                           job_fn=_slow_fake_job).start()
        try:
            spec = baseline_job("swim", 2000, 500)
            sources = []

            def one():
                with ServeClient(srv.url) as client:
                    sources.append(client.submit_with_source(spec)[1])

            threads = [threading.Thread(target=one) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(sources) == ["computed", "inflight", "inflight"]
            assert srv.server.misses == 1
            assert srv.server.dedup == 2
        finally:
            srv.stop()

    def test_health_and_metrics_documents(self, server):
        with ServeClient(server.url) as client:
            health = client.health()
            assert health["ok"] is True
            assert protocol.ROUTE_SUBMIT  # route constants exist
            client.submit(baseline_job("swim", 2000, 500))
            metrics = client.metrics()
        serve = metrics["serve"]
        assert serve["requests"] >= 2
        assert serve["misses"] == 1
        assert serve["cache"]["stores"] == 1

    def test_metrics_prometheus_exposition(self, server):
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{le="[^"]+"\})? '
            r'(?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf|NaN))$'
        )
        with ServeClient(server.url) as client:
            client.submit(baseline_job("swim", 2000, 500))
            text = client.metrics_prometheus()
            doc = client.metrics()   # JSON stays the default, unchanged
        assert doc["v"] == protocol.PROTOCOL_VERSION and "serve" in doc
        families = set()
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert sample.match(line), f"invalid exposition line: {line!r}"
            families.add(line.split("{")[0].split(" ")[0])
        # Every serve counter of the JSON document is exposed.
        for name in ("requests", "hits", "misses", "dedup", "errors_4xx",
                     "errors_5xx", "inflight", "sse_subscribers"):
            assert f"repro_serve_{name}" in families, name
        assert "repro_serve_cache_stores" in families
        assert "repro_serve_uptime_seconds" in families
        # A family is never exposed twice (server counters are excluded
        # from the obs-registry pass).
        types = [l for l in text.splitlines() if l.startswith("# TYPE ")]
        assert len(types) == len(set(types))
        assert "repro_serve_requests 0" not in text.splitlines()

    def test_metrics_prometheus_includes_obs_registry(self, server):
        import repro.obs as obs
        obs.enable()
        try:
            with ServeClient(server.url) as client:
                client.submit(baseline_job("swim", 2000, 500))
                text = client.metrics_prometheus()
            # The request-latency histogram lives only in the registry.
            assert "# TYPE repro_serve_request_ms histogram" in text
            assert 'repro_serve_request_ms_bucket{le="+Inf"}' in text
        finally:
            obs.disable()

    def test_metrics_unknown_format_is_4xx(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.server.port)
        try:
            conn.request("GET", protocol.ROUTE_METRICS + "?format=xml")
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 400
            assert "unknown metrics format" in body["error"]
        finally:
            conn.close()

    def test_progress_stream_sees_sweep(self, server):
        events = []
        done = threading.Event()

        def subscribe():
            with ServeClient(server.url) as sub:
                # The runner batches opportunistically: two cold specs may
                # arrive as one sweep of 2 or two sweeps of 1 — read finish
                # events until the meter's cumulative count covers both.
                for event in sub.progress_events(limit=12, timeout=10):
                    events.append(event)
                    if (event.get("event") == "finish"
                            and event["jobs_done"] >= 2):
                        break
            done.set()

        t = threading.Thread(target=subscribe)
        t.start()
        time.sleep(0.2)                       # let the subscription land
        with ServeClient(server.url) as client:
            client.sweep([baseline_job(w, 2000, 500)
                          for w in ("swim", "gobmk")])
        assert done.wait(timeout=10)
        t.join()
        kinds = [e.get("event") for e in events]
        assert "start" in kinds and "finish" in kinds
        finishes = [e for e in events if e.get("event") == "finish"]
        assert finishes[-1]["jobs_done"] == 2    # cumulative meter count

    def test_malformed_requests_are_4xx(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.server.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/submit", body=b"{ nope",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            doc = json.loads(resp.read())
            assert resp.status == 400
            assert "JSON" in doc["error"]

            conn.request("GET", "/v1/no-such-route")
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
        finally:
            conn.close()
        assert server.server.errors_4xx >= 2

    def test_client_survives_server_connection_close(self, server):
        """A keep-alive client reconnects transparently mid-session."""
        spec = baseline_job("swim", 2000, 500)
        with ServeClient(server.url) as client:
            client.submit(spec)
            client._conn.close()              # stale socket, client keeps it
            assert client.submit_with_source(spec)[1] == "cache"


# ---------------------------------------------------------------------------
# Client retry policy, against a scripted stub server.
# ---------------------------------------------------------------------------

class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Answers each request with the next status from ``statuses``
    (then 200s forever).  Shared mutable class state — tests run one
    stub at a time."""

    statuses: list = []
    hits = 0

    def do_GET(self):
        type(self).hits += 1
        status = self.statuses.pop(0) if self.statuses else 200
        body = json.dumps(
            {"ok": True} if status == 200 else {"error": f"scripted {status}"}
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):             # silence stderr
        pass


@contextlib.contextmanager
def _scripted_server(statuses):
    _ScriptedHandler.statuses = list(statuses)
    _ScriptedHandler.hits = 0
    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                            _ScriptedHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)


class TestClientRetries:
    def test_transient_statuses_retried_to_success(self):
        obs.enable()
        try:
            before = obs.registry().snapshot().get("serve/client/retries", 0)
            with _scripted_server([503, 502]) as url:
                client = ServeClient(url, retries=3, backoff=0.01,
                                     backoff_cap=0.02)
                assert client.health() == {"ok": True}
                client.close()
            assert client.retried == 2
            after = obs.registry().snapshot()["serve/client/retries"]
            assert after - before == 2
        finally:
            obs.disable()

    def test_500_is_not_transient(self):
        """500 marks a job that exhausted its compute retries server-side;
        re-requesting would recompute and fail again — raise immediately."""
        with _scripted_server([500]) as url:
            client = ServeClient(url, retries=3, backoff=0.01)
            with pytest.raises(ServerError) as err:
                client.health()
            client.close()
        assert err.value.status == 500
        assert client.retried == 0
        assert _ScriptedHandler.hits == 1

    def test_persistent_transient_status_surfaces_after_budget(self):
        with _scripted_server([503] * 10) as url:
            client = ServeClient(url, retries=2, backoff=0.01,
                                 backoff_cap=0.02)
            with pytest.raises(ServerError) as err:
                client.health()
            client.close()
        assert err.value.status == 503
        assert client.retried == 2
        assert _ScriptedHandler.hits == 3     # initial + 2 retries

    def test_connect_failure_retried_then_raised(self):
        # grab a port nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServeClient(f"http://127.0.0.1:{port}", retries=1,
                             backoff=0.01, backoff_cap=0.02)
        with pytest.raises(OSError):
            client.health()
        # one free keep-alive reconnect, then the counted retry budget
        assert client.retried == 1

    def test_zero_retries_still_has_the_keepalive_fast_path(self, server):
        spec = baseline_job("swim", 2000, 500)
        with ServeClient(server.url, retries=0) as client:
            client.submit(spec)
            client._conn.close()
            assert client.submit_with_source(spec)[1] == "cache"
            assert client.retried == 0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServeClient("http://localhost:1", retries=-1)


class TestRemoteScheduler:
    def test_experiments_run_identically_through_server(self, tmp_path):
        """fig5a through a real server == fig5a computed locally."""
        local = experiments.fig5a(TINY)

        srv = ServerThread(cache=ResultCache(root=tmp_path), jobs=2).start()
        try:
            client = ServeClient(srv.url)
            repro.exec.install_scheduler(RemoteScheduler(client))
            remote = experiments.fig5a(TINY)
            client.close()
        finally:
            srv.stop()
        assert remote == local

    def test_chunks_large_sweeps(self, server):
        client = ServeClient(server.url)
        sched = RemoteScheduler(client)
        specs = [baseline_job("swim", 2000 + 2 * i, 500) for i in range(10)]
        out = sched.run(specs)
        assert [s.cycles for s in out] == [s.uops for s in specs]
        assert sched.jobs == 0 and sched.cache is None
        client.close()


# ---------------------------------------------------------------------------
# Chaos on the server path.
# ---------------------------------------------------------------------------

class TestServeChaos:
    def test_transient_fault_is_retried_to_success(self, tmp_path):
        from repro.chaos import ChaosConfig, FaultPlan
        plan = FaultPlan(ChaosConfig(exception_rate=1.0, seed=7,
                                     max_faults_per_job=1))
        srv = ServerThread(cache=ResultCache(root=tmp_path), jobs=1,
                           retries=2, chaos=plan, job_fn=_fake_job).start()
        try:
            spec = baseline_job("swim", 2000, 500)
            with ServeClient(srv.url) as client:
                stats, source = client.submit_with_source(spec)
            assert source == "computed"
            assert stats_to_dict(stats) == stats_to_dict(_fake_job(spec))
            assert srv.server.errors_5xx == 0
        finally:
            srv.stop()

    def test_exhausted_retries_surface_as_5xx(self, tmp_path):
        srv = ServerThread(cache=ResultCache(root=tmp_path), jobs=1,
                           retries=1, job_fn=_raising_job).start()
        try:
            with ServeClient(srv.url) as client:
                with pytest.raises(ServerError) as err:
                    client.submit(baseline_job("swim", 2000, 500))
                assert err.value.status == 500
                assert "boom" in str(err.value)
                # The server stays healthy and accounts the failure.
                assert client.health()["ok"] is True
            assert srv.server.errors_5xx == 1
        finally:
            srv.stop()

    def test_corrupt_blob_is_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        srv = ServerThread(cache=cache, jobs=1, job_fn=_fake_job).start()
        try:
            spec = baseline_job("swim", 2000, 500)
            with ServeClient(srv.url) as client:
                first = client.submit(spec)
                cache._path(spec).write_text('{"tampered": true}')
                again, source = client.submit_with_source(spec)
            assert source == "computed"               # not served corrupt
            assert again == first
            assert cache.corrupt == 1                 # quarantined, not lost
            assert any(cache.quarantine_dir.iterdir())
            assert cache.get(spec) is not None        # re-stored verified
        finally:
            srv.stop()


# ---------------------------------------------------------------------------
# Golden bit-identity through HTTP.
# ---------------------------------------------------------------------------

_GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_stats.json").read_text())


def _golden_spec(key: str):
    """The JobSpec equivalent of a golden-stats configuration.

    ``gcc/perpath`` has no JobSpec form (``PerPathStridePredictor`` is not
    part of the :func:`make_instr_predictor` vocabulary), so the HTTP
    golden suite covers the other eight configurations; the ninth stays
    pinned by ``test_golden_identity.py``.
    """
    workload, config = key.split("/")
    uops, warmup = _GOLDEN["uops"], _GOLDEN["warmup"]
    if config == "baseline":
        return baseline_job(workload, uops, warmup)
    if config == "dvtage":
        return instr_vp_job(workload, "d-vtage", uops, warmup)
    if config == "vtage":
        return instr_vp_job(workload, "vtage", uops, warmup)
    if config == "hybrid":
        return instr_vp_job(workload, "vtage-2d-stride", uops, warmup)
    if config == "eole-dvtage":
        return instr_vp_job(workload, "d-vtage", uops, warmup, eole=True)
    if config == "eole-bebop":
        return bebop_job(workload, uops=uops, warmup=warmup)
    return None


_HTTP_KEYS = [k for k in sorted(_GOLDEN["runs"]) if _golden_spec(k)]


class TestGoldenOverHTTP:
    """The bit-identity contract of the service: a result obtained over
    HTTP equals the committed golden record, field for field."""

    @pytest.fixture(scope="class")
    def golden_server(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serve-golden")
        srv = ServerThread(cache=ResultCache(root=root), jobs=2).start()
        try:
            yield srv
        finally:
            srv.stop()

    def test_covers_all_spec_expressible_configs(self):
        assert len(_HTTP_KEYS) == len(_GOLDEN["runs"]) - 1  # all but perpath

    @pytest.mark.parametrize("key", _HTTP_KEYS)
    def test_http_result_bit_identical_to_golden(self, golden_server, key):
        with ServeClient(golden_server.url) as client:
            stats = client.submit(_golden_spec(key))
        assert dataclasses.asdict(stats) == _GOLDEN["runs"][key], (
            f"{key}: HTTP result diverged from the golden record — the "
            "serve path must be bit-identical to direct execution"
        )
