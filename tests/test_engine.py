"""Tests for the BeBoP engine: prediction flow, policies, squash handling."""

import pytest

from repro.bebop import (
    BeBoPEngine,
    BlockDVTAGE,
    BlockDVTAGEConfig,
    RecoveryPolicy,
    SpeculativeWindow,
)
from repro.pipeline import BASELINE_6_60, PipelineModel, eole_4_60
from repro.predictors.base import HistoryState
from repro.workloads import generate_trace
from repro.workloads.kernels import build_constant_kernel, build_strided_kernel


def make_engine(window=None, policy=RecoveryPolicy.DNRDNR, **cfg):
    return BeBoPEngine(
        BlockDVTAGE(BlockDVTAGEConfig(**cfg)), SpeculativeWindow(window), policy
    )


def run_workload(engine, kernel, uops=60000, warmup=20000):
    trace = generate_trace(kernel.program, uops, init_mem=kernel.init_mem)
    return PipelineModel(eole_4_60(), engine).run(trace, warmup_uops=warmup)


class TestEngineFlow:
    def test_fetch_group_returns_parallel_preds(self):
        engine = make_engine()
        kernel = build_strided_kernel(seed=1, trip=8)
        trace = generate_trace(kernel.program, 100, init_mem=kernel.init_mem)
        group = [u for u in trace.uops if u.block_pc == trace.uops[0].block_pc][:4]
        handle = engine.fetch_group(group, cycle=0, hist=HistoryState())
        assert len(handle.preds) == len(group)

    def test_fifo_populated_and_drained(self):
        engine = make_engine()
        kernel = build_strided_kernel(seed=1, trip=16)
        run_workload(engine, kernel, uops=5000, warmup=0)
        engine.flush_training()
        assert engine.fifo.pushes > 0
        assert len(engine.fifo) == 0  # everything retired or squashed

    def test_strided_workload_converges(self):
        engine = make_engine()
        kernel = build_strided_kernel(seed=1, trip=48, body_fp_ops=6, fp_chains=1)
        stats = run_workload(engine, kernel)
        assert stats.vp_coverage > 0.2
        assert stats.vp_accuracy > 0.99

    def test_window_essential_for_overlapped_loops(self):
        """Fig 7b 'None': without the window, in-flight loops lose coverage."""
        kernel = build_strided_kernel(seed=1, trip=48, body_fp_ops=6, fp_chains=1)
        with_window = run_workload(make_engine(window=32), kernel)
        without = run_workload(make_engine(window=0), kernel)
        assert with_window.vp_coverage > without.vp_coverage + 0.1

    def test_constant_workload_predicted(self):
        engine = make_engine()
        kernel = build_constant_kernel(seed=5, change_period=512)
        stats = run_workload(engine, kernel)
        assert stats.vp_coverage > 0.03
        assert stats.vp_accuracy > 0.99

    def test_storage_reporting(self):
        engine = make_engine(window=32, npred=6, base_entries=256,
                             tagged_entries=256, stride_bits=8)
        assert abs(engine.storage_kb() - 32.76) < 0.01


class TestRecoveryPolicies:
    @pytest.mark.parametrize("policy", list(RecoveryPolicy))
    def test_policies_run_clean(self, policy):
        engine = make_engine(policy=policy)
        kernel = build_strided_kernel(seed=1, trip=24, body_fp_ops=4, fp_chains=1)
        stats = run_workload(engine, kernel, uops=40000, warmup=10000)
        assert stats.cycles > 0
        # Accuracy must stay high under every policy.
        if stats.vp_used:
            assert stats.vp_accuracy > 0.98

    def test_policies_roughly_equivalent(self):
        """Fig 7a: realistic policies are within a few percent of another."""
        kernel_args = dict(seed=1, trip=48, body_fp_ops=8, fp_chains=2)
        ipcs = {}
        for policy in (RecoveryPolicy.REPRED, RecoveryPolicy.DNRDNR,
                       RecoveryPolicy.DNRR):
            engine = make_engine(policy=policy)
            stats = run_workload(engine, build_strided_kernel(**kernel_args))
            ipcs[policy] = stats.ipc
        values = list(ipcs.values())
        assert max(values) / min(values) < 1.1


class TestSquashBehaviour:
    def test_window_and_fifo_rollback(self):
        engine = make_engine(window=64)
        engine.window.insert(0x40_0040, seq=10, values=[1] * 6)
        engine.window.insert(0x40_0080, seq=20, values=[2] * 6)
        engine.branch_squash(flush_seq=15, cycle=100)
        assert engine.window.lookup(0x40_0080) is None
        assert engine.window.lookup(0x40_0040) is not None

    def test_vp_squash_same_block_repred_drops_head(self):
        from repro.bebop.update_queue import PendingBlock
        from repro.pipeline.vp import GroupHandle

        engine = make_engine(window=64, policy=RecoveryPolicy.REPRED)
        pending = PendingBlock(5, 0x40_0040, HistoryState(), None, [0] * 6)
        engine.window.insert(0x40_0040, seq=5, values=[1] * 6)
        engine.fifo.push(pending)
        handle = GroupHandle([None], HistoryState(), ctx=pending)
        engine.vp_squash(handle, flush_seq=7, next_block_pc=0x40_0040, cycle=50)
        assert engine.window.lookup(0x40_0040) is None
        assert len(engine.fifo) == 0

    def test_vp_squash_dnrdnr_keeps_head(self):
        from repro.bebop.update_queue import PendingBlock
        from repro.pipeline.vp import GroupHandle

        engine = make_engine(window=64, policy=RecoveryPolicy.DNRDNR)
        pending = PendingBlock(5, 0x40_0040, HistoryState(), None, [0] * 6)
        engine.window.insert(0x40_0040, seq=5, values=[1] * 6)
        engine.fifo.push(pending)
        handle = GroupHandle([None], HistoryState(), ctx=pending)
        engine.vp_squash(handle, flush_seq=7, next_block_pc=0x40_0040, cycle=50)
        assert engine.window.lookup(0x40_0040) is not None
        assert len(engine.fifo) == 1

    def test_vp_squash_different_block_keeps_head(self):
        from repro.bebop.update_queue import PendingBlock
        from repro.pipeline.vp import GroupHandle

        engine = make_engine(window=64, policy=RecoveryPolicy.REPRED)
        pending = PendingBlock(5, 0x40_0040, HistoryState(), None, [0] * 6)
        engine.window.insert(0x40_0040, seq=5, values=[1] * 6)
        engine.fifo.push(pending)
        handle = GroupHandle([None], HistoryState(), ctx=pending)
        # Bnew != Bflush: operate as usual (§IV-A), head stays.
        engine.vp_squash(handle, flush_seq=7, next_block_pc=0x40_0100, cycle=50)
        assert engine.window.lookup(0x40_0040) is not None
