"""Tests for the VP adapter layer (deferred training, squash checkpoints)."""

from repro.isa.instruction import DynMicroOp, LatencyClass
from repro.pipeline.vp import GroupHandle, InstructionVPAdapter, PredUse
from repro.predictors import DVTAGEPredictor, HistoryState
from repro.predictors.base import Prediction, ValuePredictor


def make_uop(seq, pc, value=0, dest=1, is_li=False):
    return DynMicroOp(
        seq=seq, pc=pc, static_id=0, uop_index=0, inst_length=4,
        block_pc=pc & ~15, boundary=pc & 15, dest=dest, srcs=(),
        value=value, latency_class=LatencyClass.ALU, is_load_imm=is_li,
    )


class RecordingPredictor(ValuePredictor):
    """Minimal predictor recording call order."""

    def __init__(self):
        self.calls = []

    def predict(self, pc, uop_index, hist):
        self.calls.append(("predict", pc))
        return Prediction(7, True)

    def train(self, pc, uop_index, hist, actual, prediction):
        self.calls.append(("train", pc, actual))

    def squash(self, surviving=None):
        self.calls.append(("squash", dict(surviving or {})))

    def storage_bits(self):
        return 0


class TestInstructionVPAdapter:
    def test_fetch_group_shapes(self):
        ad = InstructionVPAdapter(RecordingPredictor())
        uops = [make_uop(0, 0x400000), make_uop(1, 0x400004, dest=None)]
        handle = ad.fetch_group(uops, 0, HistoryState())
        assert len(handle.preds) == 2
        assert isinstance(handle.preds[0], PredUse)
        assert handle.preds[1] is None  # no dest -> not eligible

    def test_load_imm_not_predicted(self):
        ad = InstructionVPAdapter(RecordingPredictor())
        uops = [make_uop(0, 0x400000, is_li=True)]
        handle = ad.fetch_group(uops, 0, HistoryState())
        assert handle.preds[0] is None  # §II-B3: free LIs

    def test_training_deferred_until_cycle(self):
        pred = RecordingPredictor()
        ad = InstructionVPAdapter(pred)
        uops = [make_uop(0, 0x400000, value=5)]
        handle = ad.fetch_group(uops, cycle=0, hist=HistoryState())
        ad.commit_uop(handle, 0, uops[0], cycle=30)
        # A fetch at cycle 10 must not see the training (applies at 31).
        ad.fetch_group([make_uop(1, 0x400010)], cycle=10, hist=HistoryState())
        assert ("train", 0x400000, 5) not in pred.calls
        # A fetch at cycle 40 must.
        ad.fetch_group([make_uop(2, 0x400020)], cycle=40, hist=HistoryState())
        assert ("train", 0x400000, 5) in pred.calls

    def test_flush_training_applies_all(self):
        pred = RecordingPredictor()
        ad = InstructionVPAdapter(pred)
        uops = [make_uop(0, 0x400000, value=5)]
        handle = ad.fetch_group(uops, 0, HistoryState())
        ad.commit_uop(handle, 0, uops[0], cycle=1000)
        ad.flush_training()
        assert ("train", 0x400000, 5) in pred.calls

    def test_surviving_counts_from_deferred(self):
        pred = RecordingPredictor()
        ad = InstructionVPAdapter(pred)
        hist = HistoryState()
        u1, u2 = make_uop(0, 0x400000, value=1), make_uop(1, 0x400000, value=2)
        h = ad.fetch_group([u1, u2], 0, hist)
        ad.commit_uop(h, 0, u1, cycle=100)
        ad.commit_uop(h, 1, u2, cycle=101)
        ad.vp_squash(h, flush_seq=1, next_block_pc=None, cycle=50)
        squash_calls = [c for c in pred.calls if c[0] == "squash"]
        assert squash_calls[-1][1] == {(0x400000, 0): 2}

    def test_branch_squash_passes_checkpoint(self):
        pred = RecordingPredictor()
        ad = InstructionVPAdapter(pred)
        ad.branch_squash(5, 10)
        assert pred.calls[-1] == ("squash", {})

    def test_real_predictor_end_to_end(self):
        """The adapter + D-VTAGE converge on a strided stream with lag."""
        ad = InstructionVPAdapter(DVTAGEPredictor())
        hist = HistoryState()
        used = good = 0
        pending = []
        for i in range(3000):
            u = make_uop(i, 0x400040, value=(100 + 8 * i) & ((1 << 64) - 1))
            h = ad.fetch_group([u], cycle=i, hist=hist)
            p = h.preds[0]
            if p is not None and p.confident:
                used += 1
                good += p.value == u.value
            pending.append((h, u))
            if len(pending) > 25:
                oh, ou = pending.pop(0)
                ad.commit_uop(oh, 0, ou, cycle=i)
        assert used > 2000
        assert good == used


class TestGroupHandle:
    def test_carries_context(self):
        h = GroupHandle([None], HistoryState(1, 2), ctx="anything")
        assert h.hist.branch == 1
        assert h.ctx == "anything"
