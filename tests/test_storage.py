"""Tests for the Table III storage accounting."""

from repro.storage import (
    LARGE,
    MEDIUM,
    SMALL_4P,
    SMALL_6P,
    TABLE_III,
    TableIIIConfig,
    breakdown,
)


class TestTableIII:
    def test_medium_exact(self):
        assert abs(breakdown(MEDIUM).total_kb - 32.76) < 0.005

    def test_small_6p_exact(self):
        assert abs(breakdown(SMALL_6P).total_kb - 17.18) < 0.005

    def test_small_4p_close(self):
        # The paper reports 17.26; our bit accounting gives 17.16 (see
        # EXPERIMENTS.md for the delta discussion).
        assert abs(breakdown(SMALL_4P).total_kb - SMALL_4P.paper_kb) < 0.11

    def test_large_close(self):
        assert abs(breakdown(LARGE).total_kb - LARGE.paper_kb) < 0.08

    def test_all_rows_ordered_by_size(self):
        sizes = [breakdown(c).total_kb for c in (SMALL_6P, MEDIUM, LARGE)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_breakdown_sums(self):
        b = breakdown(MEDIUM)
        assert b.total_bits == b.lvt_bits + b.vt0_bits + b.tagged_bits + b.window_bits

    def test_paper_sizes_recorded(self):
        assert [c.paper_kb for c in TABLE_III] == [17.26, 17.18, 32.76, 61.65]


class TestPartialStrideSizes:
    """§VI-B(a): 290KB (64-bit) -> 203/160/138KB for 32/16/8-bit strides."""

    def _config(self, bits):
        return TableIIIConfig("x", 2048, 256, 6, 0, bits, 6, 0.0)

    def test_stride_sweep_sizes(self):
        expected = {64: 290, 32: 203, 16: 160, 8: 138}
        for bits, paper_kb in expected.items():
            computed = breakdown(self._config(bits)).total_kb
            assert abs(computed - paper_kb) < 1.5, f"{bits}-bit strides"

    def test_monotone_in_stride_bits(self):
        sizes = [breakdown(self._config(b)).total_kb for b in (8, 16, 32, 64)]
        assert sizes == sorted(sizes)

    def test_lvt_dominates_at_narrow_strides(self):
        b = breakdown(self._config(8))
        assert b.lvt_bits > b.vt0_bits
        assert b.lvt_bits > b.tagged_bits
