"""Batched-vs-serial bit-identity: the golden contract of repro.batch.

The fused batched walk (:mod:`repro.batch.runner`) re-implements the
serial pipeline + BeBoP engine + predictors for speed; the *only*
acceptable difference is wall-clock.  Every :class:`SimStats` field must
match the serial path bit for bit — across predictor geometries,
recovery policies, speculative-window capacities and workloads — and the
golden eole-bebop records must reproduce through the batched path too.

These tests are deliberately the slowest part of the batch suite: they
run full simulations twice.  Trace lengths are trimmed to keep tier-1
wall-clock reasonable while still exercising squash/refetch/reuse paths
(the traces misbehave plenty within the first few thousand µ-ops).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.batch import (
    batch_group_key,
    batchable_groups,
    is_batchable,
    run_batched_group,
)
from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.common.tables import numpy_available, use_table_backend
from repro.exec.jobs import baseline_job, bebop_job, run_job

_GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"
_GOLDEN = json.loads(_GOLDEN_PATH.read_text())

BACKENDS = [
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not numpy_available(), reason="numpy backend not installed")),
]

_UOPS = 12_000
_WARMUP = 4_000


def _assert_parity(specs):
    batched = run_batched_group(specs)
    assert len(batched) == len(specs)
    for spec, got in zip(specs, batched):
        want = dataclasses.asdict(run_job(spec))
        assert dataclasses.asdict(got) == want, (
            f"batched stats diverged from serial for {spec.label()} "
            f"(policy={spec.engine[3]}, window={spec.engine[2]})"
        )


# ---------------------------------------------------------------------------
# Grouping predicates
# ---------------------------------------------------------------------------

def test_is_batchable_accepts_only_bebop_eole():
    assert is_batchable(bebop_job("gcc"))
    assert not is_batchable(baseline_job("gcc"))


def test_batchable_groups_partitions_by_front_end_key():
    specs = [
        bebop_job("gcc", uops=_UOPS, warmup=_WARMUP),
        bebop_job("gcc", config=BlockDVTAGEConfig(npred=4),
                  uops=_UOPS, warmup=_WARMUP),
        bebop_job("swim", uops=_UOPS, warmup=_WARMUP),   # other workload
        baseline_job("gcc", uops=_UOPS, warmup=_WARMUP),  # not batchable
        bebop_job("gcc", uops=2 * _UOPS, warmup=_WARMUP),  # other trace len
    ]
    groups = batchable_groups(specs)
    # Only the two gcc/_UOPS bebop cells form a group of >= 2; the swim
    # and longer-trace singletons gain nothing from batching.
    assert list(groups.values()) == [[0, 1]]
    assert batch_group_key(specs[0]) in groups


def test_run_batched_group_rejects_mixed_groups():
    with pytest.raises(ValueError, match="front-end groups"):
        run_batched_group([
            bebop_job("gcc", uops=_UOPS, warmup=_WARMUP),
            bebop_job("swim", uops=_UOPS, warmup=_WARMUP),
        ])
    with pytest.raises(ValueError, match="not batchable"):
        run_batched_group([baseline_job("gcc", uops=_UOPS, warmup=_WARMUP)])
    assert run_batched_group([]) == []


# ---------------------------------------------------------------------------
# SimStats bit-identity
# ---------------------------------------------------------------------------

def test_fig6a_geometry_grid_parity():
    """The Fig 6a sweep axes: npred x table size, one shared trace pass."""
    specs = [
        bebop_job(
            "gcc",
            config=BlockDVTAGEConfig(
                npred=npred, base_entries=base, tagged_entries=tagged
            ),
            uops=_UOPS,
            warmup=_WARMUP,
        )
        for npred in (4, 6, 8)
        for base, tagged in ((1024, 128), (2048, 256))
    ]
    _assert_parity(specs)


def test_policy_and_window_parity():
    """Fig 7a/7b axes: every recovery policy and window capacity."""
    specs = [
        bebop_job("gcc", policy=policy, uops=_UOPS, warmup=_WARMUP)
        for policy in RecoveryPolicy
    ] + [
        bebop_job("gcc", window=window, uops=_UOPS, warmup=_WARMUP)
        for window in (None, 0, 8)
    ]
    _assert_parity(specs)


def test_config_knob_parity():
    """Non-geometry predictor knobs flow through the fused walk too."""
    specs = [
        bebop_job(
            "gcc",
            config=BlockDVTAGEConfig(
                propagate_confidence=False, monotonic_byte_tags=False
            ),
            uops=_UOPS,
            warmup=_WARMUP,
        ),
        bebop_job(
            "gcc",
            config=BlockDVTAGEConfig(components=4, max_history=32),
            uops=_UOPS,
            warmup=_WARMUP,
        ),
    ]
    _assert_parity(specs)


def test_swim_parity():
    specs = [
        bebop_job("swim", uops=_UOPS, warmup=_WARMUP),
        bebop_job("swim", config=BlockDVTAGEConfig(npred=4),
                  uops=_UOPS, warmup=_WARMUP),
    ]
    _assert_parity(specs)


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------

def test_scheduler_batch_knob_is_bit_identical_and_caches(tmp_path):
    """Scheduler(batch=True) groups + unstacks into the same cache cells."""
    from repro.exec import ResultCache, Scheduler

    specs = [
        bebop_job("gcc", uops=_UOPS, warmup=_WARMUP),
        baseline_job("gcc", uops=_UOPS, warmup=_WARMUP),  # not batchable
        bebop_job("gcc", config=BlockDVTAGEConfig(npred=4),
                  uops=_UOPS, warmup=_WARMUP),
    ]
    want = [dataclasses.asdict(s) for s in Scheduler().run(specs)]
    cache = ResultCache(root=tmp_path)
    got = Scheduler(cache=cache, batch=True).run(specs)
    assert [dataclasses.asdict(s) for s in got] == want
    # Batched results landed in the ordinary per-spec cache cells.
    fresh = ResultCache(root=tmp_path)
    for spec, stats in zip(specs, want):
        hit = fresh.get(spec)
        assert hit is not None and dataclasses.asdict(hit) == stats


def test_batch_eligibility_gates():
    """Chaos, obs and substituted job_fns force the per-job paths."""
    import repro.obs as obs
    from repro.exec import Scheduler

    assert Scheduler(batch=True)._batch_eligible()
    assert not Scheduler()._batch_eligible()
    assert not Scheduler(batch=True, job_fn=len)._batch_eligible()
    assert not Scheduler(batch=True, chaos=object())._batch_eligible()
    obs.enable()
    try:
        assert not Scheduler(batch=True)._batch_eligible()
    finally:
        obs.disable()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "key", [k for k in sorted(_GOLDEN["runs"]) if k.endswith("eole-bebop")]
)
def test_golden_eole_bebop_through_batched_path(key, backend):
    """The golden records reproduce through the batched path.

    The serial half of this equality is enforced by
    ``tests/test_golden_identity.py``; together they pin
    batched == serial == golden for the BeBoP cells.  Parametrized over
    storage backends because JobSpec digests exclude the backend: a
    batched result must be valid for either cache cell.
    """
    workload, _config = key.split("/")
    with use_table_backend(backend):
        spec = bebop_job(workload, uops=_GOLDEN["uops"],
                         warmup=_GOLDEN["warmup"])
        got = dataclasses.asdict(run_batched_group([spec])[0])
    assert got == _GOLDEN["runs"][key], (
        f"{key} [{backend}]: batched walk diverged from the golden record"
    )
