"""Unit tests for BeBoP byte-index tag attribution (paper §II-B1, Fig 2)."""

from repro.bebop.attribution import (
    FREE_TAG,
    attribute_predictions,
    update_tag_assignment,
)


class TestAttribute:
    def test_paper_fig2_false_sharing(self):
        """Fig 2: entry learned through I1 (byte 0) and I2 (byte 3); a fetch
        entering at I2 must get P2, not P1."""
        tags = [0, 3]
        assert attribute_predictions(tags, [3]) == [1]

    def test_full_block_entry(self):
        tags = [0, 3]
        assert attribute_predictions(tags, [0, 3]) == [0, 1]

    def test_unknown_boundary(self):
        assert attribute_predictions([0, 3], [5]) == [None]

    def test_multiple_results_same_instruction(self):
        # Two result µ-ops of the instruction at byte 4: two slots tagged 4.
        tags = [4, 4, 9]
        assert attribute_predictions(tags, [4, 4, 9]) == [0, 1, 2]

    def test_slots_consumed_in_order(self):
        tags = [2, 5, 5]
        assert attribute_predictions(tags, [5, 5]) == [1, 2]

    def test_no_backward_matching(self):
        """A consumed slot position is never revisited."""
        tags = [3, 0]
        # Boundary 0 appears after 3 was matched at slot 0 -> slot 1.
        assert attribute_predictions(tags, [3, 0]) == [0, 1]

    def test_free_tags_never_match(self):
        tags = [FREE_TAG] * 4
        assert attribute_predictions(tags, [0, 1]) == [None, None]

    def test_empty(self):
        assert attribute_predictions([], []) == []
        assert attribute_predictions([0, 1], []) == []


class TestUpdateAssignment:
    def test_fresh_allocation_takes_boundaries(self):
        assignment, tags = update_tag_assignment(
            [FREE_TAG] * 4, [2, 5, 9], fresh_allocation=True
        )
        assert assignment == [0, 1, 2]
        assert tags == [2, 5, 9, FREE_TAG]

    def test_fresh_allocation_overflow(self):
        assignment, tags = update_tag_assignment(
            [FREE_TAG] * 2, [1, 2, 3], fresh_allocation=True
        )
        assert assignment == [0, 1, None]
        assert tags == [1, 2]

    def test_exact_match_stable(self):
        assignment, tags = update_tag_assignment([2, 5], [2, 5], False)
        assert assignment == [0, 1]
        assert tags == [2, 5]

    def test_lesser_tag_replaces_greater(self):
        """An earlier entry point teaches the entry about earlier
        instructions: tag 3 may become 0."""
        assignment, tags = update_tag_assignment([3, 7], [0, 3], False)
        assert assignment == [0, 1]
        assert tags == [0, 3]

    def test_greater_never_replaces_lesser(self):
        """Fig 2's constraint: once slot 0 is tagged 0 (I1), entering via I2
        (byte 3) must not retag it."""
        assignment, tags = update_tag_assignment([0, 3], [3], False)
        assert assignment == [1]
        assert tags == [0, 3]

    def test_free_slot_claimed(self):
        assignment, tags = update_tag_assignment([2, FREE_TAG], [2, 8], False)
        assert assignment == [0, 1]
        assert tags == [2, 8]

    def test_unmatchable_dropped(self):
        # All slots tagged lower than the boundary: nothing to claim.
        assignment, tags = update_tag_assignment([0, 1], [5], False)
        assert assignment == [None]
        assert tags == [0, 1]

    def test_convergence_to_earliest_layout(self):
        """Alternating entry points converge on the earliest layout and then
        remain stable (P1/I1 pairing preserved, §II-B1)."""
        tags = [FREE_TAG] * 4
        _, tags = update_tag_assignment(tags, [3, 7], fresh_allocation=True)
        assert tags[:2] == [3, 7]
        _, tags = update_tag_assignment(tags, [0, 3, 7], False)
        assert tags[:3] == [0, 3, 7]
        # Re-entering via byte 3 changes nothing.
        assignment, tags2 = update_tag_assignment(tags, [3, 7], False)
        assert tags2 == tags
        assert assignment == [1, 2]
