"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bebop.attribution import (
    FREE_TAG,
    attribute_predictions,
    update_tag_assignment,
)
from repro.bebop.spec_window import SpeculativeWindow
from repro.common.bits import fold_bits, mask, sign_extend, to_signed, to_unsigned
from repro.common.counters import SaturatingCounter
from repro.common.history import GlobalHistory
from repro.common.rng import XorShift64
from repro.predictors import HistoryState, TwoDeltaStridePredictor
from repro.predictors.base import table_index, tagged_index, tagged_tag

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
small_bits = st.integers(min_value=1, max_value=64)


class TestBitProperties:
    @given(u64, small_bits)
    def test_signed_unsigned_roundtrip(self, value, bits):
        v = value & mask(bits)
        assert to_unsigned(to_signed(v, bits), bits) == v

    @given(st.integers(min_value=-(1 << 62), max_value=1 << 62), small_bits)
    def test_to_signed_range(self, value, bits):
        s = to_signed(value, bits)
        assert -(1 << (bits - 1)) <= s < (1 << (bits - 1))

    @given(u64, st.integers(min_value=1, max_value=16))
    def test_fold_in_range(self, value, out_bits):
        assert 0 <= fold_bits(value, 64, out_bits) < (1 << out_bits)

    @given(u64, u64, small_bits)
    def test_fold_xor_distributes(self, a, b, out_bits):
        """Folding is linear under XOR — the property TAGE's incremental
        folded histories rely on."""
        assert fold_bits(a ^ b, 64, out_bits) == (
            fold_bits(a, 64, out_bits) ^ fold_bits(b, 64, out_bits)
        )

    @given(u64, st.integers(min_value=1, max_value=32))
    def test_sign_extend_preserves_value(self, value, bits):
        v = value & mask(bits)
        assert to_signed(sign_extend(v, bits, 64), 64) == to_signed(v, bits)

    @given(st.integers(min_value=-(1 << 30), max_value=1 << 30),
           st.integers(min_value=-(1 << 30), max_value=1 << 30))
    def test_stride_arithmetic_consistent(self, last, stride):
        """last + (actual - last) == actual under 64-bit wrapping."""
        actual = to_unsigned(last + stride, 64)
        observed = to_signed(actual - to_unsigned(last, 64), 64)
        assert to_unsigned(to_unsigned(last, 64) + observed, 64) == actual


class TestIndexProperties:
    @given(u64, st.integers(min_value=4, max_value=16))
    def test_table_index_in_range(self, key, bits):
        assert 0 <= table_index(key, bits) < (1 << bits)

    @given(u64, u64, u64, st.integers(min_value=2, max_value=128))
    def test_tagged_index_and_tag_in_range(self, key, bh, ph, hist_len):
        hist = HistoryState(bh, ph)
        assert 0 <= tagged_index(key, hist, hist_len, 10) < (1 << 10)
        assert 0 <= tagged_tag(key, hist, hist_len, 13) < (1 << 13)

    @given(u64, u64)
    def test_index_deterministic(self, key, bh):
        hist = HistoryState(bh, 0)
        assert tagged_index(key, hist, 16, 10) == tagged_index(key, hist, 16, 10)


class TestCounterProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.booleans(), max_size=200))
    def test_saturating_counter_bounds(self, bits, ops):
        c = SaturatingCounter(bits=bits)
        for up in ops:
            c.increment() if up else c.decrement()
            assert 0 <= c.value <= c.max_value


class TestHistoryProperties:
    @given(st.lists(st.booleans(), max_size=300),
           st.integers(min_value=1, max_value=64))
    def test_history_value_matches_reference(self, outcomes, capacity):
        h = GlobalHistory(capacity)
        reference = 0
        for taken in outcomes:
            h.push_outcome(taken)
            reference = ((reference << 1) | taken) & mask(capacity)
        assert h.value() == reference

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_snapshot_restore_inverse(self, outcomes):
        h = GlobalHistory(64)
        for t in outcomes[: len(outcomes) // 2]:
            h.push_outcome(t)
        snap = h.snapshot()
        for t in outcomes[len(outcomes) // 2:]:
            h.push_outcome(t)
        h.restore(snap)
        assert h.snapshot() == snap


class TestAttributionProperties:
    tags = st.lists(
        st.one_of(st.just(FREE_TAG), st.integers(min_value=0, max_value=15)),
        min_size=0, max_size=8,
    )
    boundaries = st.lists(st.integers(min_value=0, max_value=15),
                          min_size=0, max_size=10)

    @given(tags, boundaries)
    def test_attribution_shape(self, tags, boundaries):
        result = attribute_predictions(tags, boundaries)
        assert len(result) == len(boundaries)
        assigned = [s for s in result if s is not None]
        # Slots are consumed at most once, in strictly increasing order.
        assert assigned == sorted(assigned)
        assert len(assigned) == len(set(assigned))
        # A matched slot's tag equals the µ-op's boundary.
        for slot, boundary in zip(result, boundaries):
            if slot is not None:
                assert tags[slot] == boundary

    @given(tags, boundaries, st.booleans())
    def test_update_tags_monotonic(self, tags, boundaries, fresh):
        """A greater tag never replaces a lesser one (§II-B1), except on a
        fresh allocation."""
        assignment, new_tags = update_tag_assignment(tags, boundaries, fresh)
        assert len(new_tags) == len(tags)
        if not fresh:
            for old, new in zip(tags, new_tags):
                if old != FREE_TAG and new != FREE_TAG:
                    assert new <= old

    @given(boundaries.filter(lambda b: len(b) > 0))
    def test_fresh_then_attribute_consistent(self, boundaries):
        """After a fresh allocation, attribution of the same boundary
        sequence must find every slot that was assigned."""
        n = 6
        sorted_b = sorted(boundaries)[:n]
        _, tags = update_tag_assignment([FREE_TAG] * n, sorted_b, True)
        result = attribute_predictions(tags, sorted_b)
        assert all(s is not None for s in result[: min(len(sorted_b), n)])


class TestWindowProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=7), u64),
                    max_size=60),
           st.integers(min_value=1, max_value=16))
    def test_capacity_never_exceeded(self, inserts, capacity):
        w = SpeculativeWindow(capacity)
        for seq, (block, value) in enumerate(inserts):
            w.insert(0x40_0000 + 16 * block, seq, [value])
            assert len(w) <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=40),
           st.integers(min_value=0, max_value=100))
    def test_squash_removes_all_younger(self, seqs, flush):
        w = SpeculativeWindow(None)
        for i, s in enumerate(sorted(seqs)):
            w.insert(0x40_0000 + 16 * (i % 4), s, [i])
        w.squash(flush)
        assert all(e.seq <= flush for e in w._entries)

    @given(st.lists(u64, min_size=1, max_size=30))
    def test_lookup_returns_most_recent(self, values):
        w = SpeculativeWindow(None)
        for seq, v in enumerate(values):
            w.insert(0x40_0040, seq, [v])
        assert w.lookup(0x40_0040) == [values[-1]]


class TestPredictorProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=0, max_value=(1 << 32)))
    def test_stride_predictor_learns_any_stride(self, stride, start):
        if stride == 0:
            stride = 1
        p = TwoDeltaStridePredictor()
        hist = HistoryState()
        stream = [to_unsigned(start + stride * i, 64) for i in range(400)]
        used = correct = 0
        for v in stream:
            pred = p.predict(0x40_0010, 0, hist)
            if pred is not None and pred.confident:
                used += 1
                correct += pred.value == v
        # train immediately (no lag) — must reach perfect accuracy
            p.train(0x40_0010, 0, hist, v, pred)
        assert correct == used
        assert used > 100

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=63))
    def test_rng_bits_bounded(self, bits):
        rng = XorShift64(bits)
        for _ in range(50):
            assert rng.next_bits(bits) < (1 << bits)
