"""End-to-end integration tests: paper-shape assertions on small runs.

These run the full stack (workload -> trace -> pipeline -> predictor) on a
handful of workloads at reduced scale and assert the qualitative results the
paper reports.  The full-scale numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.eval.runner import (
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_eole_instr_vp,
    run_instr_vp,
)

UOPS = 60_000
WARMUP = 20_000


@pytest.fixture(scope="module")
def baselines():
    names = ("swim", "gcc", "mcf", "gobmk", "wupwise")
    return {n: run_baseline(get_trace(n, UOPS), WARMUP) for n in names}


class TestBaselineCharacter:
    def test_mcf_memory_bound(self, baselines):
        assert baselines["mcf"].ipc < 0.3

    def test_fp_codes_moderate_ipc(self, baselines):
        assert 0.8 < baselines["swim"].ipc < 4.0
        assert 0.8 < baselines["wupwise"].ipc < 4.0

    def test_branch_mispredicts_present(self, baselines):
        for name, stats in baselines.items():
            assert stats.branch_mispredicts > 0, name

    def test_gobmk_branch_hostile(self, baselines):
        assert baselines["gobmk"].branch_mpki > 20


class TestFig5aShape:
    """D-VTAGE >= naive hybrid >= single-scheme predictors; no slowdown."""

    @pytest.fixture(scope="class")
    def speedups(self):
        names = ("swim", "gcc", "mcf", "gobmk")
        base = {n: run_baseline(get_trace(n, UOPS), WARMUP).ipc for n in names}
        out = {}
        for kind in ("2d-stride", "vtage", "d-vtage"):
            out[kind] = {
                n: run_instr_vp(get_trace(n, UOPS), make_instr_predictor(kind),
                                WARMUP).ipc / base[n]
                for n in names
            }
        return out

    def test_no_slowdown_with_dvtage(self, speedups):
        """Paper: 'no slowdown is observed with D-VTAGE'."""
        for name, s in speedups["d-vtage"].items():
            assert s > 0.97, name

    def test_dvtage_wins_on_strided_fp(self, speedups):
        assert speedups["d-vtage"]["swim"] > 1.2
        assert speedups["d-vtage"]["swim"] >= speedups["vtage"]["swim"]

    def test_vtage_cannot_do_strided(self, speedups):
        assert speedups["vtage"]["swim"] < speedups["2d-stride"]["swim"]

    def test_unpredictable_floor_flat(self, speedups):
        for kind in speedups:
            assert abs(speedups[kind]["gobmk"] - 1.0) < 0.08


class TestVPAccuracy:
    """FPC confidence must keep used-prediction accuracy extremely high."""

    @pytest.mark.parametrize("name", ["swim", "gcc", "vortex", "libquantum"])
    def test_accuracy_above_99(self, name):
        stats = run_instr_vp(
            get_trace(name, UOPS), make_instr_predictor("d-vtage"), WARMUP
        )
        if stats.vp_used > 100:
            assert stats.vp_accuracy > 0.99


class TestFig5bShape:
    def test_eole4_close_to_vp6(self):
        """Reducing issue width 6 -> 4 with EOLE costs little (Fig 5b)."""
        ratios = []
        for name in ("swim", "gcc", "wupwise"):
            trace = get_trace(name, UOPS)
            vp6 = run_instr_vp(trace, make_instr_predictor("d-vtage"), WARMUP)
            eole4 = run_eole_instr_vp(trace, make_instr_predictor("d-vtage"), WARMUP)
            ratios.append(eole4.ipc / vp6.ipc)
        assert min(ratios) > 0.85
        from repro.pipeline.stats import gmean
        assert gmean(ratios) > 0.95


class TestBeBoPShape:
    # Block-based FPC convergence needs a couple hundred correct
    # predictions per (entry, slot): use longer traces here.
    LONG_UOPS = 120_000
    LONG_WARMUP = 50_000

    def test_block_dvtage_converges(self):
        engine = make_bebop_engine(window=32)
        stats = run_bebop_eole(
            get_trace("wupwise", self.LONG_UOPS), engine, self.LONG_WARMUP
        )
        assert stats.vp_coverage > 0.2
        assert stats.vp_accuracy > 0.99

    def test_window_none_loses_coverage(self):
        """Fig 7b: no speculative window -> stride chains cannot be followed
        in overlapped loops."""
        with_w = run_bebop_eole(
            get_trace("wupwise", UOPS), make_bebop_engine(window=32), WARMUP
        )
        without = run_bebop_eole(
            get_trace("wupwise", UOPS), make_bebop_engine(window=0), WARMUP
        )
        assert with_w.vp_coverage > without.vp_coverage + 0.1
        assert with_w.ipc >= without.ipc * 0.98

    def test_window32_close_to_infinite(self):
        """Fig 7b: 32 entries is a good tradeoff vs infinite."""
        inf = run_bebop_eole(
            get_trace("wupwise", UOPS), make_bebop_engine(window=None), WARMUP
        )
        w32 = run_bebop_eole(
            get_trace("wupwise", UOPS), make_bebop_engine(window=32), WARMUP
        )
        assert w32.ipc > inf.ipc * 0.95

    def test_medium_config_still_effective(self):
        """Fig 8: the 32.76KB Medium config keeps most of the benefit."""
        base = run_baseline(get_trace("swim", self.LONG_UOPS), self.LONG_WARMUP)
        medium = BlockDVTAGEConfig(
            npred=6, base_entries=256, tagged_entries=256, stride_bits=8
        )
        stats = run_bebop_eole(
            get_trace("swim", self.LONG_UOPS),
            make_bebop_engine(medium, window=32),
            self.LONG_WARMUP,
        )
        assert stats.ipc > base.ipc  # still a speedup at ~32KB
        assert stats.vp_accuracy > 0.99

    def test_recovery_policies_all_safe(self):
        for policy in RecoveryPolicy:
            stats = run_bebop_eole(
                get_trace("bzip2", UOPS),
                make_bebop_engine(window=None, policy=policy),
                WARMUP,
            )
            assert stats.cycles > 0
            if stats.vp_used > 100:
                assert stats.vp_accuracy > 0.98
