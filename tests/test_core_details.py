"""Detailed behavioural tests of the timing model's resource constraints."""

from repro.isa import BasicBlock, Opcode, Program, StaticInst
from repro.pipeline import BASELINE_6_60, PipelineModel, baseline_vp_6_60
from repro.pipeline.vp import InstructionVPAdapter, PredUse
from repro.predictors import DVTAGEPredictor
from repro.workloads import generate_trace
from repro.workloads.kernels import build_strided_kernel


def _li(rd, imm, length=4):
    return StaticInst(Opcode.LI, dests=(rd,), imm=imm, length=length)


class TestMemoryDependences:
    def test_store_to_load_ordering(self):
        """A load from a just-stored address waits for the store."""
        b = BasicBlock("entry")
        b.add(_li(1, 0x9000))
        b.add(_li(2, 5))
        # Long-latency producer for the store data: a DIV chain.
        b.add(StaticInst(Opcode.DIV, dests=(3,), srcs=(1, 2), length=4))
        b.add(StaticInst(Opcode.STORE, srcs=(1, 3), length=4))
        b.add(StaticInst(Opcode.LOAD, dests=(4,), srcs=(1,), length=4))
        trace = generate_trace(Program([b]), 100)
        tl = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=tl)
        # Timeline: ..., div, store-addr, store-data, load
        div_complete = tl[2][3]
        load_complete = tl[-1][3]
        assert load_complete > div_complete  # load waited for the store data

    def test_independent_loads_overlap(self):
        b = BasicBlock("entry")
        for i in range(8):
            b.add(_li(1 + i, 0x9000 + 0x40 * i))
        for i in range(8):
            b.add(StaticInst(Opcode.LOAD, dests=(9 + i % 4,), srcs=(1 + i,),
                             length=4))
        trace = generate_trace(Program([b]), 100)
        tl = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=tl)
        load_completes = [t[3] for t in tl[8:]]
        # With 2 load ports and parallel misses, the 8 loads must not be
        # fully serialised (8 x DRAM would be > 1000 cycles apart).
        assert max(load_completes) - min(load_completes) < 600


class TestFrontEnd:
    def test_fetch_queue_backpressure(self):
        """With a tiny fetch queue, fetch cannot run far ahead of dispatch;
        timing must still be consistent and slower than unconstrained."""
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 4000, init_mem=kr.init_mem)
        wide = PipelineModel(BASELINE_6_60.with_(fetch_queue_uops=4096)).run(trace)
        tight = PipelineModel(BASELINE_6_60.with_(fetch_queue_uops=16)).run(trace)
        assert tight.cycles >= wide.cycles

    def test_icache_misses_counted(self):
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 1000, init_mem=kr.init_mem)
        model = PipelineModel(BASELINE_6_60)
        model.run(trace)
        assert model.memory.l1i.misses > 0
        assert model.memory.l1i.hits > model.memory.l1i.misses

    def test_btb_learns_targets(self):
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 4000, init_mem=kr.init_mem)
        model = PipelineModel(BASELINE_6_60)
        stats = model.run(trace)
        # Taken branches repeat: the BTB must end up mostly hitting.
        assert model.btb.hits > model.btb.misses
        assert stats.btb_misses < stats.branches


class TestValueMispredictSquash:
    def test_forced_wrong_prediction_squashes(self):
        """An adapter that lies (confident wrong value) must trigger
        commit-time squashes and cost cycles."""

        class LyingAdapter(InstructionVPAdapter):
            def fetch_group(self, uops, cycle, hist, reuse=None):
                handle = super().fetch_group(uops, cycle, hist, reuse)
                for i, u in enumerate(uops):
                    if u.is_vp_eligible and u.value is not None:
                        handle.preds[i] = PredUse(
                            (u.value + 1) & ((1 << 64) - 1), True
                        )
                return handle

        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 3000, init_mem=kr.init_mem)
        honest = PipelineModel(BASELINE_6_60).run(trace)
        lying = PipelineModel(
            baseline_vp_6_60(), LyingAdapter(DVTAGEPredictor())
        ).run(trace)
        assert lying.vp_squashes > 100
        assert lying.vp_accuracy == 0.0
        assert lying.cycles > honest.cycles * 1.5  # squashing is expensive

    def test_oracle_prediction_speeds_up(self):
        """An oracle adapter (always right) bounds the VP upside."""

        class OracleAdapter(InstructionVPAdapter):
            def fetch_group(self, uops, cycle, hist, reuse=None):
                handle = super().fetch_group(uops, cycle, hist, reuse)
                for i, u in enumerate(uops):
                    if u.is_vp_eligible and u.value is not None:
                        handle.preds[i] = PredUse(u.value, True)
                return handle

        kr = build_strided_kernel(seed=1, trip=32, body_fp_ops=6, fp_chains=1)
        trace = generate_trace(kr.program, 20000, init_mem=kr.init_mem)
        base = PipelineModel(BASELINE_6_60).run(trace, warmup_uops=5000)
        oracle = PipelineModel(
            baseline_vp_6_60(), OracleAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=5000)
        assert oracle.vp_squashes == 0
        assert oracle.ipc > base.ipc * 1.2
        # A real predictor cannot beat the oracle.
        real = PipelineModel(
            baseline_vp_6_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=5000)
        assert real.ipc <= oracle.ipc * 1.001
