"""Direct unit tests for repro.exec.progress (rendering and accounting).

``test_exec.py`` covers the meter through the scheduler; these tests pin
the meter itself — line content, TTY vs non-TTY emission policy, zero
division edges, cached ticks, disabled mode — since :mod:`repro.serve`
now builds on it (``ServeProgress`` broadcasts these very readings).
"""

import io

from repro.exec import ProgressMeter


class _TTY(io.StringIO):
    """A capture stream that claims to be a terminal."""

    def isatty(self) -> bool:
        return True


class TestLineRendering:
    def test_line_shows_done_total_label_and_rate(self):
        meter = ProgressMeter(stream=io.StringIO())
        meter.start(4, label="fig5a")
        meter.tick()
        line = meter._line()
        assert line.startswith("[1/4] fig5a")
        assert "jobs/s" in line
        assert "cached" not in line              # no cached ticks yet

    def test_cached_ticks_appear_in_line_and_counters(self):
        meter = ProgressMeter(stream=io.StringIO())
        meter.start(3)
        meter.tick(cached=True)
        meter.tick(cached=True)
        meter.tick()
        assert "(2 cached)" in meter._line()
        assert meter.cached == 2
        assert meter.jobs_cached == 2
        assert meter.jobs_done == 3

    def test_tty_rewrites_in_place_and_newlines_only_on_final(self):
        stream = _TTY()
        meter = ProgressMeter(stream=stream)
        meter.start(2)
        meter.tick()
        meter.tick()
        meter.finish()
        out = stream.getvalue()
        assert out.count("\r") >= 4              # start + ticks + final
        assert out.count("\n") == 1              # exactly one, at finish
        assert "[2/2]" in out

    def test_tty_pads_when_line_shrinks(self):
        stream = _TTY()
        meter = ProgressMeter(stream=stream)
        meter.start(1)
        meter._last_len = 80                     # as if the previous render
        meter.tick()                             # ... was 80 columns wide
        last = stream.getvalue().rsplit("\r", 1)[-1]
        assert len(last) == 80                   # shorter line blanked it

    def test_tty_final_render_resets_padding_state(self):
        stream = _TTY()
        meter = ProgressMeter(stream=stream)
        meter.start(1, label="a-very-long-sweep-label")
        meter.tick()
        meter.finish()
        assert meter._last_len == 0              # next batch starts clean

    def test_non_tty_emits_only_batch_boundaries(self):
        stream = io.StringIO()                   # StringIO has no isatty=True
        meter = ProgressMeter(stream=stream)
        meter.start(3)
        for _ in range(3):
            meter.tick()
        meter.finish()
        lines = [l for l in stream.getvalue().splitlines() if l]
        # One line for the empty batch opening, one final — no per-tick spam.
        assert len(lines) == 2
        assert lines[0].startswith("[0/3]")
        assert lines[-1].startswith("[3/3]")

    def test_disabled_writes_nothing_but_still_counts(self):
        stream = io.StringIO()
        meter = ProgressMeter(stream=stream, enabled=False)
        meter.start(2)
        meter.tick(cached=True)
        meter.tick()
        meter.finish()
        assert stream.getvalue() == ""
        assert meter.jobs_done == 2
        assert meter.jobs_cached == 1


class TestThroughputEdges:
    def test_zero_elapsed_is_zero_not_nan(self, monkeypatch):
        import repro.exec.progress as progress_mod
        meter = ProgressMeter(stream=io.StringIO())
        now = 100.0
        monkeypatch.setattr(progress_mod.time, "monotonic", lambda: now)
        meter.start(5)
        meter.tick()
        assert meter.throughput == 0.0           # dt == 0, no ZeroDivision

    def test_zero_total_batch_renders_and_finishes(self):
        stream = io.StringIO()
        meter = ProgressMeter(stream=stream)
        meter.start(0, label="empty")
        dt = meter.finish()
        assert dt >= 0.0
        assert "[0/0] empty" in stream.getvalue()

    def test_summary_with_no_elapsed_time(self):
        meter = ProgressMeter(stream=io.StringIO(), enabled=False)
        assert meter.summary() == "0 jobs in 0.0s (0.0 jobs/s, 0 from cache)"

    def test_summary_accumulates_across_batches(self):
        meter = ProgressMeter(stream=io.StringIO(), enabled=False)
        for _ in range(2):
            meter.start(2)
            meter.tick(cached=True)
            meter.tick()
            meter.finish()
        text = meter.summary()
        assert text.startswith("4 jobs in ")
        assert text.endswith("2 from cache)")

    def test_finish_returns_batch_wallclock_and_accumulates(self, monkeypatch):
        import repro.exec.progress as progress_mod
        clock = iter([10.0, 13.0, 20.0, 24.0])   # start, finish, start, finish
        monkeypatch.setattr(progress_mod.time, "monotonic", lambda: next(clock))
        meter = ProgressMeter(stream=io.StringIO(), enabled=False)
        meter.start(1)
        assert meter.finish() == 3.0
        meter.start(1)
        assert meter.finish() == 4.0
        assert meter.elapsed == 7.0
