"""Per-µop timeline tracing: recorder semantics, pipeline integration,
provenance analytics and the Chrome/Konata exports."""

import json

import pytest

import repro.obs as obs
from repro.eval.runner import get_trace, make_bebop_engine, run_bebop_eole
from repro.obs import Provenance, TimelineRecorder, UopTimeline
from repro.obs.timeline import TIMELINE_STAGES, provider_label
from repro.pipeline import BASELINE_6_60, PipelineModel, baseline_vp_6_60
from repro.pipeline.vp import InstructionVPAdapter, PredUse
from repro.predictors import DVTAGEPredictor
from repro.workloads import generate_trace
from repro.workloads.kernels import build_strided_kernel


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable()


def _record(rec, n, prov_every=0):
    """n synthetic µ-ops with increasing cycles; every ``prov_every``-th
    carries a provenance record."""
    for i in range(n):
        prov = None
        if prov_every and i % prov_every == 0:
            prov = Provenance(provider=1, conf=3, source="lvt", slot=0,
                              value=i, confident=True, policy="dnrdnr")
        rec.record_uop(i, 0x1000 + 4 * i, 0x1000, i, i + 1, i + 3, i + 4,
                       i + 5, i + 8, prov)


class TestRecorder:
    def test_records_and_lengths(self):
        rec = TimelineRecorder()
        _record(rec, 5)
        assert len(rec) == 5
        assert rec.recorded == 5
        assert rec.dropped == 0
        u = rec.uops()[0]
        assert isinstance(u, UopTimeline)
        assert u.stage_cycles() == {
            "fetch": 0, "decode": 1, "dispatch": 3, "issue": 4,
            "execute": 5, "commit": 8,
        }

    def test_capacity_bound_drops_oldest_first(self):
        rec = TimelineRecorder(capacity=3)
        _record(rec, 10)
        assert len(rec) == 3
        assert rec.recorded == 10
        assert rec.dropped == 7
        assert [u.seq for u in rec.uops()] == [7, 8, 9]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TimelineRecorder(capacity=0)

    def test_provider_label(self):
        assert provider_label(0) == "vt0"
        assert provider_label(1) == "t0"
        assert provider_label(6) == "t5"

    def test_squash_and_instant_events(self):
        rec = TimelineRecorder()
        rec.squash(7, 0x40, cycle=100, cost=12, policy="dnrdnr")
        rec.instant("branch_redirect", 50, seq=3)
        assert rec.squashes[0].cost == 12
        assert rec.instants[0]["cycle"] == 50

    def test_squash_cost_summary(self):
        rec = TimelineRecorder()
        for cost in (1, 2, 3, 5, 9):
            rec.squash(0, 0, cycle=0, cost=cost, policy="dnrr")
        s = rec.squash_cost_summary()
        assert s["count"] == 5
        assert s["min"] == 1 and s["max"] == 9
        assert s["mean"] == pytest.approx(4.0)
        # power-of-two ceil buckets: 1, 2, 3→4, 5→8, 9→16
        assert s["histogram"] == {"le_2^0": 1, "le_2^1": 1, "le_2^2": 1,
                                  "le_2^3": 1, "le_2^4": 1}

    def test_empty_squash_summary(self):
        assert TimelineRecorder().squash_cost_summary()["count"] == 0


class TestProvenanceSummary:
    def test_shares_and_accuracy(self):
        rec = TimelineRecorder()
        for verdict, used in (("correct", True), ("correct", True),
                              ("squash", True), ("correct_unused", False)):
            rec.record_uop(0, 0, 0, 0, 0, 0, 0, 0, 0, Provenance(
                provider=2, source="spec_window", used=used, verdict=verdict,
            ))
        rec.record_uop(0, 0, 0, 0, 0, 0, 0, 0, 0, Provenance(
            provider=0, source="lvt", used=True, verdict="correct",
        ))
        rec.record_uop(0, 0, 0, 0, 0, 0, 0, 0, 0, Provenance(
            tag_match=False, verdict="no_prediction",
        ))
        rec.record_uop(0, 0, 0, 0, 0, 0, 0, 0, 0, None)  # not predicted
        s = rec.provenance_summary()
        assert s["predictions"] == 5
        assert s["attribution"] == {"requests": 6, "misses": 1}
        assert s["window"] == {"spec_window": 4, "lvt": 1}
        t1 = s["components"]["t1"]
        assert t1["predictions"] == 4 and t1["used"] == 3
        assert t1["correct"] == 2
        assert t1["share"] == pytest.approx(4 / 5)
        assert t1["accuracy"] == pytest.approx(2 / 3)
        vt0 = s["components"]["vt0"]
        assert vt0["share"] == pytest.approx(1 / 5)
        assert vt0["accuracy"] == 1.0


class TestChromeExport:
    def test_required_keys_and_structure(self, tmp_path):
        rec = TimelineRecorder()
        _record(rec, 4, prov_every=2)
        rec.squash(1, 0x1004, cycle=9, cost=4, policy="dnrdnr")
        rec.instant("branch_redirect", 6, seq=2)
        path = tmp_path / "trace.json"
        n = rec.export_chrome(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == n
        for e in events:
            for key in ("ph", "ts", "pid", "tid"):
                assert key in e
        # One metadata name record per stage track.
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == set(TIMELINE_STAGES)
        # One complete slice per stage per µ-op.
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 4 * len(TIMELINE_STAGES)
        assert all(e["dur"] >= 0 for e in slices)
        # Provenance rides the commit-track slice of predicted µ-ops.
        commit_tid = len(TIMELINE_STAGES)
        with_prov = [e for e in slices if "provenance" in e["args"]]
        assert len(with_prov) == 2
        assert all(e["tid"] == commit_tid for e in with_prov)
        assert with_prov[0]["args"]["provenance"]["provider"] == "t0"
        # Squashes and redirects are instant events.
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"vp_squash",
                                                 "branch_redirect"}
        assert doc["otherData"]["uops"] == 4

    def test_counts_dropped_uops(self, tmp_path):
        rec = TimelineRecorder(capacity=2)
        _record(rec, 5)
        doc = rec.to_chrome_trace()
        assert doc["otherData"]["uops"] == 2
        assert doc["otherData"]["dropped_uops"] == 3

    def test_dropped_records_warn_and_count_at_export(self, tmp_path,
                                                      capsys):
        obs.enable()
        try:
            rec = TimelineRecorder(capacity=2)
            _record(rec, 5)
            rec.export_chrome(tmp_path / "trace.json")
            err = capsys.readouterr().err
            assert "3 of 5" in err and "truncated" in err
            assert obs.registry().value("obs/timeline/dropped") == 3
            # The Konata exporter warns (and counts) the same way.
            rec.export_konata(tmp_path / "konata.log")
            assert "3 of 5" in capsys.readouterr().err
            assert obs.registry().value("obs/timeline/dropped") == 6
        finally:
            obs.disable()

    def test_no_warning_without_drops(self, tmp_path, capsys):
        rec = TimelineRecorder()
        _record(rec, 3)
        rec.export_chrome(tmp_path / "trace.json")
        assert capsys.readouterr().err == ""


class TestKonataExport:
    def test_header_and_retirement(self, tmp_path):
        rec = TimelineRecorder()
        _record(rec, 3, prov_every=1)
        rec.uops()[1].prov.verdict = "squash"
        path = tmp_path / "konata.log"
        lines_written = rec.export_konata(path)
        lines = path.read_text().splitlines()
        assert lines_written == len(lines)
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        retire = [l for l in lines if l.startswith("R\t")]
        assert len(retire) == 3
        # The squashed µ-op retires with flush type 1.
        assert [l.split("\t")[3] for l in retire] == ["0", "1", "0"]
        # Cycle advances are deltas.
        assert all(int(l.split("\t")[1]) > 0 for l in lines
                   if l.startswith("C\t"))


class _LyingAdapter(InstructionVPAdapter):
    """Forces confident wrong predictions: every use squashes."""

    def fetch_group(self, uops, cycle, hist, reuse=None):
        handle = super().fetch_group(uops, cycle, hist, reuse)
        for i, u in enumerate(uops):
            if u.is_vp_eligible and u.value is not None:
                handle.preds[i] = PredUse((u.value + 1) & ((1 << 64) - 1),
                                          True)
        return handle


def _kernel_trace(n=4000):
    kr = build_strided_kernel(seed=1, trip=16)
    return generate_trace(kr.program, n, init_mem=kr.init_mem)


class TestPipelineIntegration:
    def test_stats_bit_identical_with_recorder(self):
        trace = _kernel_trace()
        adapter = InstructionVPAdapter(DVTAGEPredictor())
        plain = PipelineModel(baseline_vp_6_60(), adapter).run(
            trace, warmup_uops=500
        )
        rec = TimelineRecorder()
        adapter2 = InstructionVPAdapter(DVTAGEPredictor())
        traced = PipelineModel(baseline_vp_6_60(), adapter2).run(
            trace, warmup_uops=500, recorder=rec
        )
        assert plain == traced
        assert rec.recorded == len(trace.uops)

    def test_stage_cycles_monotonic(self):
        trace = _kernel_trace()
        rec = TimelineRecorder()
        PipelineModel(BASELINE_6_60).run(trace, recorder=rec)
        for u in rec.uops():
            assert (u.fetch <= u.decode <= u.dispatch <= u.issue
                    <= u.complete <= u.commit)

    def test_matches_legacy_timeline_tuples(self):
        trace = _kernel_trace(1500)
        rec = TimelineRecorder()
        legacy: list = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=legacy, recorder=rec)
        assert len(legacy) == len(rec.uops())
        for (seq, pc, d, complete, cc), u in zip(legacy, rec.uops()):
            assert (seq, pc, d, complete, cc) == (
                u.seq, u.pc, u.dispatch, u.complete, u.commit
            )

    def test_instr_vp_provenance_and_verdicts(self):
        trace = _kernel_trace()
        rec = TimelineRecorder()
        adapter = InstructionVPAdapter(DVTAGEPredictor())
        stats = PipelineModel(baseline_vp_6_60(), adapter).run(
            trace, recorder=rec
        )
        provs = [u.prov for u in rec.uops() if u.prov is not None]
        assert provs, "D-VTAGE predicted nothing on a strided kernel"
        assert all(p.source == "inst" for p in provs)
        used_correct = sum(1 for p in provs if p.verdict == "correct")
        assert used_correct == stats.vp_used_correct  # warmup=0: 1:1
        squashed = sum(1 for p in provs if p.verdict == "squash")
        assert squashed == stats.vp_squashes

    def test_forced_squashes_recorded_with_cost(self):
        trace = _kernel_trace(3000)
        rec = TimelineRecorder()
        stats = PipelineModel(
            baseline_vp_6_60(), _LyingAdapter(DVTAGEPredictor())
        ).run(trace, recorder=rec)
        assert stats.vp_squashes > 100
        assert len(rec.squashes) == stats.vp_squashes
        # Cost spans result-complete to the refetch barrier: >= the
        # back-end depth, since validation happens at commit.
        assert all(s.cost >= 1 for s in rec.squashes)
        assert rec.squash_cost_summary()["count"] == stats.vp_squashes

    def test_provenance_disabled_when_recorder_absent(self):
        trace = _kernel_trace(1000)
        adapter = InstructionVPAdapter(DVTAGEPredictor())
        model = PipelineModel(baseline_vp_6_60(), adapter)
        rec = TimelineRecorder()
        model.run(trace, recorder=rec)
        assert adapter._prov is True
        model.run(trace)  # next untraced run switches provenance back off
        assert adapter._prov is False


class TestBeBoPIntegration:
    def test_provenance_counts_match_metrics(self):
        trace = get_trace("gcc", 12_000)
        obs.enable()
        rec = TimelineRecorder()
        run_bebop_eole(trace, make_bebop_engine(), 3_000, recorder=rec)
        snapshot = obs.registry().snapshot()
        obs.disable()
        summary = rec.provenance_summary()
        assert summary["predictions"] > 0
        # Per-component counts sum to the registry's provider counters.
        reg_counts = {
            name.split("/")[2]: value
            for name, value in snapshot.items()
            if name.startswith("bebop/provider/")
        }
        prov_counts = {
            comp: row["predictions"]
            for comp, row in summary["components"].items()
        }
        assert prov_counts == reg_counts
        assert sum(prov_counts.values()) == summary["predictions"]
        assert (summary["attribution"]["requests"]
                == snapshot["bebop/attribution/requests"])
        assert (summary["attribution"]["misses"]
                == snapshot.get("bebop/attribution/misses", 0))

    def test_every_attributed_uop_has_block_provenance(self):
        trace = get_trace("swim", 8_000)
        rec = TimelineRecorder()
        stats = run_bebop_eole(trace, make_bebop_engine(), 0, recorder=rec)
        matched = [u.prov for u in rec.uops()
                   if u.prov is not None and u.prov.tag_match]
        assert len(matched) == stats.vp_predicted
        assert all(p.source in ("spec_window", "lvt", "cold", "reuse")
                   for p in matched)
        assert all(p.slot >= 0 for p in matched)
        assert all(p.policy == "dnrdnr" for p in matched)
        # Spec-window anchors name the providing in-flight instance.
        spec = [p for p in matched if p.source == "spec_window"]
        assert spec and all(p.spec_seq is not None for p in spec)

    def test_bebop_stats_bit_identical_with_recorder(self):
        trace = get_trace("mcf", 10_000)
        plain = run_bebop_eole(trace, make_bebop_engine(), 2_000)
        rec = TimelineRecorder()
        traced = run_bebop_eole(trace, make_bebop_engine(), 2_000,
                                recorder=rec)
        assert plain == traced

    def test_chrome_export_of_real_run_is_valid(self, tmp_path):
        trace = get_trace("gcc", 12_000)
        rec = TimelineRecorder()
        run_bebop_eole(trace, make_bebop_engine(), 3_000, recorder=rec)
        assert rec.recorded >= 10_000
        path = tmp_path / "timeline.json"
        rec.export_chrome(path)
        doc = json.loads(path.read_text())
        assert all(k in e for e in doc["traceEvents"]
                   for k in ("ph", "ts", "pid", "tid"))
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == rec.recorded * len(TIMELINE_STAGES)


class TestProvenanceExperiment:
    def test_provenance_experiment_runs(self):
        from repro.eval.experiments import provenance
        from repro.eval.reporting import render_provenance
        from repro.eval.runner import RunSpec

        result = provenance(RunSpec(uops=8_000, warmup=2_000,
                                    workloads=("swim",)))
        row = result["swim"]
        assert row["predictions"] > 0
        assert set(row["squash_cost"]) == {"ideal", "repred", "dnrdnr",
                                           "dnrr"}
        text = render_provenance(result)
        assert "swim" in text
        assert "dnrr" in text
