"""Unit tests for the deterministic xorshift64 generator."""

import pytest

from repro.common.rng import XorShift64


class TestXorShift64:
    def test_deterministic(self):
        a, b = XorShift64(5), XorShift64(5)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert XorShift64(1).next_u64() != XorShift64(2).next_u64()

    def test_zero_seed_remapped(self):
        # Zero is a fixed point of xorshift; the constructor must avoid it.
        rng = XorShift64(0)
        assert rng.next_u64() != 0

    def test_next_bits_range(self):
        rng = XorShift64(9)
        for _ in range(100):
            assert 0 <= rng.next_bits(5) < 32

    def test_next_below_range(self):
        rng = XorShift64(11)
        for _ in range(200):
            assert 0 <= rng.next_below(7) < 7

    def test_next_below_invalid(self):
        with pytest.raises(ValueError):
            XorShift64(1).next_below(0)

    def test_chance_extremes(self):
        rng = XorShift64(13)
        assert rng.chance(1.0) is True
        assert rng.chance(0.0) is False

    def test_chance_rate_roughly_matches(self):
        rng = XorShift64(17)
        hits = sum(rng.chance(1 / 16) for _ in range(16000))
        assert 700 <= hits <= 1300  # ~1000 expected

    def test_fork_independent(self):
        rng = XorShift64(23)
        fork = rng.fork()
        assert fork.next_u64() != rng.next_u64()

    def test_values_are_64_bit(self):
        rng = XorShift64(29)
        for _ in range(100):
            assert 0 <= rng.next_u64() < (1 << 64)
