"""Unit tests for the block-based D-VTAGE predictor."""

import pytest

from repro.bebop.attribution import FREE_TAG
from repro.bebop.predictor import BlockDVTAGE, BlockDVTAGEConfig
from repro.common.bits import to_unsigned
from repro.predictors.base import HistoryState

BLOCK = 0x40_0040
HIST = HistoryState(0, 0)


def train_stream(pred, block, instances, hist=HIST, use_spec=False):
    """Feed retired block instances [(boundary, value), ...] sequentially,
    reading before each update (read -> compose -> update)."""
    readouts = []
    for retired in instances:
        readout = pred.read(block, hist)
        last = readout.lvt_last
        pred.compose(readout, last)
        pred.update(readout, retired)
        readouts.append(readout)
    return readouts


class TestConfig:
    def test_defaults(self):
        c = BlockDVTAGEConfig()
        assert c.npred == 6 and c.base_entries == 2048 and c.tagged_entries == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDVTAGEConfig(base_entries=1000)
        with pytest.raises(ValueError):
            BlockDVTAGEConfig(npred=0)

    def test_validation_reports_every_violation_at_once(self):
        from repro.pipeline import ConfigError

        with pytest.raises(ConfigError) as info:
            BlockDVTAGEConfig(npred=0, base_entries=1000, stride_bits=65)
        err = info.value
        assert err.config_name == "BlockDVTAGEConfig"
        assert len(err.violations) == 3
        text = str(err)
        assert "npred must be positive, got 0" in text
        assert "base_entries must be a power of two, got 1000" in text
        assert "stride_bits" in text

    def test_validation_checks_history_bounds(self):
        from repro.pipeline import ConfigError

        with pytest.raises(ConfigError, match="min_history"):
            BlockDVTAGEConfig(min_history=64, max_history=8)


class TestReadUpdate:
    def test_cold_read_misses(self):
        pred = BlockDVTAGE()
        r = pred.read(BLOCK, HIST)
        assert not r.lvt_hit
        assert r.byte_tags == [FREE_TAG] * 6
        assert r.provider == 0

    def test_first_update_allocates_lvt(self):
        pred = BlockDVTAGE()
        train_stream(pred, BLOCK, [[(3, 100), (7, 200)]])
        r = pred.read(BLOCK, HIST)
        assert r.lvt_hit
        assert r.byte_tags[:2] == [3, 7]
        assert r.lvt_last[:2] == [100, 200]

    def test_strided_block_learns(self):
        pred = BlockDVTAGE()
        instances = [[(3, 100 + 8 * i), (7, 5000 + 24 * i)] for i in range(600)]
        train_stream(pred, BLOCK, instances)
        r = pred.read(BLOCK, HIST)
        values = pred.compose(r, r.lvt_last)
        assert values[0] == 100 + 8 * 600
        assert values[1] == 5000 + 24 * 600
        assert pred.is_confident(r, 0)
        assert pred.is_confident(r, 1)

    def test_confidence_resets_on_change(self):
        pred = BlockDVTAGE()
        instances = [[(3, 8 * i)] for i in range(400)]
        train_stream(pred, BLOCK, instances)
        r = pred.read(BLOCK, HIST)
        assert pred.is_confident(r, 0)
        # Break the pattern.
        train_stream(pred, BLOCK, [[(3, 999999)]])
        r2 = pred.read(BLOCK, HIST)
        assert not pred.is_confident(r2, 0)

    def test_more_results_than_slots(self):
        """Extra results beyond npred lose coverage but must not crash."""
        pred = BlockDVTAGE(BlockDVTAGEConfig(npred=2))
        instances = [[(1, i), (4, 2 * i), (9, 3 * i), (12, 4 * i)] for i in range(50)]
        train_stream(pred, BLOCK, instances)
        r = pred.read(BLOCK, HIST)
        assert r.byte_tags == [1, 4]

    def test_per_slot_independent_confidence(self):
        pred = BlockDVTAGE()
        from repro.common.rng import XorShift64
        rng = XorShift64(3)
        instances = [
            [(3, 8 * i), (7, rng.next_u64())] for i in range(600)
        ]
        train_stream(pred, BLOCK, instances)
        r = pred.read(BLOCK, HIST)
        assert pred.is_confident(r, 0)
        assert not pred.is_confident(r, 1)

    def test_empty_update_is_noop(self):
        pred = BlockDVTAGE()
        r = pred.read(BLOCK, HIST)
        pred.compose(r, r.lvt_last)
        assert pred.update(r, []) == {}

    def test_update_returns_slot_actuals(self):
        pred = BlockDVTAGE()
        r = pred.read(BLOCK, HIST)
        pred.compose(r, r.lvt_last)
        actuals = pred.update(r, [(3, 42), (7, 43)])
        assert actuals == {0: 42, 1: 43}


class TestComposition:
    def test_compose_uses_given_last_values(self):
        """Spec-window substitution: compose with window values, not LVT."""
        pred = BlockDVTAGE()
        train_stream(pred, BLOCK, [[(3, 8 * i)] for i in range(300)])
        r = pred.read(BLOCK, HIST)
        window_values = [10_000] * 6
        values = pred.compose(r, window_values)
        assert values[0] == 10_008  # window last + learned stride 8

    def test_partial_stride_sign_extension(self):
        pred = BlockDVTAGE(BlockDVTAGEConfig(stride_bits=8))
        start = 1 << 20
        instances = [[(3, to_unsigned(start - 3 * i, 64))] for i in range(400)]
        train_stream(pred, BLOCK, instances)
        r = pred.read(BLOCK, HIST)
        values = pred.compose(r, r.lvt_last)
        assert values[0] == to_unsigned(start - 3 * 400, 64)


class TestHistoryComponents:
    def test_history_dependent_strides(self):
        """Different histories select different strides (the D in D-VTAGE)."""
        pred = BlockDVTAGE()
        hist_a, hist_b = HistoryState(0b1010, 0), HistoryState(0b0101, 0)
        value = 0
        # Alternate: stride 5 under hist_a, stride 11 under hist_b.
        for i in range(800):
            hist = hist_a if i % 2 == 0 else hist_b
            value = to_unsigned(value + (5 if i % 2 == 0 else 11), 64)
            r = pred.read(BLOCK, hist)
            pred.compose(r, r.lvt_last)
            pred.update(r, [(3, value)])
        # Next instance under hist_a must predict +5 over the last value.
        r = pred.read(BLOCK, hist_a)
        values = pred.compose(r, r.lvt_last)
        assert values[0] == to_unsigned(value + 5, 64)
        assert pred.is_confident(r, 0)

    def test_allocation_propagates_confidence(self):
        """§III-D-b: correct slots keep their counters in the new entry."""
        config = BlockDVTAGEConfig(propagate_confidence=True)
        pred = BlockDVTAGE(config)
        from repro.common.rng import XorShift64
        rng = XorShift64(7)
        # Slot 0 strided (correct), slot 1 random (wrong -> allocations).
        instances = [[(3, 8 * i), (7, rng.next_u64())] for i in range(600)]
        train_stream(pred, BLOCK, instances)
        r = pred.read(BLOCK, HIST)
        # Despite constant allocations caused by slot 1, slot 0 stays usable.
        assert pred.is_confident(r, 0)


class TestStorage:
    def test_medium_configuration_matches_paper(self):
        pred = BlockDVTAGE(
            BlockDVTAGEConfig(
                npred=6, base_entries=256, tagged_entries=256, stride_bits=8
            )
        )
        window_bits = 32 * (15 + 6 * 64)
        total_kb = (pred.storage_bits() + window_bits) / 8 / 1000
        assert abs(total_kb - 32.76) < 0.005

    def test_baseline_290kb(self):
        pred = BlockDVTAGE(BlockDVTAGEConfig())  # 2K base, 6x256, 64-bit
        assert abs(pred.storage_bits() / 8 / 1000 - 289.0) < 0.5
