"""Unit tests for the block-based speculative window (paper §IV)."""

import pytest

from repro.bebop.spec_window import SpeculativeWindow, window_tag


BLOCK_A = 0x40_0040
BLOCK_B = 0x40_0080


class TestBasics:
    def test_empty_lookup(self):
        w = SpeculativeWindow(8)
        assert w.lookup(BLOCK_A) is None

    def test_insert_lookup(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, seq=1, values=[1, 2, 3])
        assert w.lookup(BLOCK_A) == [1, 2, 3]
        assert w.lookup(BLOCK_B) is None

    def test_most_recent_wins(self):
        """Fig 4: the priority encoder prefers the highest sequence number."""
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, seq=1, values=[1])
        w.insert(BLOCK_B, seq=2, values=[2])
        w.insert(BLOCK_A, seq=3, values=[3])
        assert w.lookup(BLOCK_A) == [3]

    def test_values_copied_on_insert(self):
        w = SpeculativeWindow(8)
        values = [1, 2]
        w.insert(BLOCK_A, 1, values)
        values[0] = 99
        assert w.lookup(BLOCK_A) == [1, 2]

    def test_capacity_circular_overwrite(self):
        """Head overruns tail: oldest entries are lost (§IV)."""
        w = SpeculativeWindow(2)
        w.insert(BLOCK_A, 1, [1])
        w.insert(BLOCK_B, 2, [2])
        w.insert(BLOCK_B + 16, 3, [3])
        assert w.lookup(BLOCK_A) is None
        assert len(w) == 2

    def test_zero_capacity_disabled(self):
        w = SpeculativeWindow(0)
        assert not w.enabled
        w.insert(BLOCK_A, 1, [1])
        assert w.lookup(BLOCK_A) is None

    def test_infinite_capacity(self):
        w = SpeculativeWindow(None)
        for i in range(1000):
            w.insert(BLOCK_A + 16 * i, i, [i])
        assert len(w) == 1000

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            SpeculativeWindow(-1)


class TestSquash:
    def test_drops_younger(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 1, [1])
        w.insert(BLOCK_B, 5, [5])
        dropped = w.squash(flush_seq=3)
        assert dropped == 1
        assert w.lookup(BLOCK_B) is None
        assert w.lookup(BLOCK_A) == [1]

    def test_keeps_equal_by_default(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 3, [3])
        assert w.squash(flush_seq=3) == 0
        assert w.lookup(BLOCK_A) == [3]

    def test_drop_equal_for_repred(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 3, [3])
        assert w.squash(flush_seq=3, drop_equal=True) == 1
        assert w.lookup(BLOCK_A) is None


class TestWritebackCorrection:
    def test_correct_entry_patches_slots(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 1, [10, 20, 30])
        assert w.correct_entry(BLOCK_A, 1, {1: 99})
        assert w.lookup(BLOCK_A) == [10, 99, 30]

    def test_correct_entry_requires_seq_match(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 1, [10])
        assert not w.correct_entry(BLOCK_A, 2, {0: 99})
        assert w.lookup(BLOCK_A) == [10]

    def test_correct_entry_out_of_range_slot_ignored(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 1, [10])
        w.correct_entry(BLOCK_A, 1, {5: 99})
        assert w.lookup(BLOCK_A) == [10]

    def test_retire_invalidates(self):
        w = SpeculativeWindow(8)
        w.insert(BLOCK_A, 1, [10])
        w.insert(BLOCK_A, 2, [20])
        assert w.retire(BLOCK_A, 1)
        assert w.lookup(BLOCK_A) == [20]
        assert w.retire(BLOCK_A, 2)
        assert w.lookup(BLOCK_A) is None

    def test_retire_missing_is_false(self):
        w = SpeculativeWindow(8)
        assert not w.retire(BLOCK_A, 1)


class TestPartialTags:
    def test_tag_is_partial(self):
        # Partial tags allow (rare) false positives — by design (§IV).
        assert 0 <= window_tag(BLOCK_A, 15) < (1 << 15)

    def test_distinct_blocks_distinct_tags(self):
        assert window_tag(BLOCK_A) != window_tag(BLOCK_B)


class TestStorage:
    def test_storage_formula(self):
        w = SpeculativeWindow(32)
        # Table III accounting: 32 x (15 + 6*64) bits.
        assert w.storage_bits(npred=6) == 32 * (15 + 6 * 64)

    def test_infinite_storage_raises(self):
        with pytest.raises(ValueError):
            SpeculativeWindow(None).storage_bits(npred=6)
