"""Unit tests for repro.common.bits."""

import pytest

from repro.common.bits import (
    WORD_MASK,
    fold_bits,
    mask,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(8) == 0xFF

    def test_word_width(self):
        assert mask(64) == WORD_MASK

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestToUnsigned:
    def test_truncates(self):
        assert to_unsigned(0x1FF, 8) == 0xFF

    def test_wraps_negative(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-1, 64) == WORD_MASK

    def test_identity_in_range(self):
        assert to_unsigned(42, 8) == 42

    def test_addition_wraps(self):
        assert to_unsigned(WORD_MASK + 1, 64) == 0


class TestToSigned:
    def test_positive(self):
        assert to_signed(0x7F, 8) == 127

    def test_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    def test_sixty_four_bit(self):
        assert to_signed(WORD_MASK, 64) == -1

    def test_roundtrip(self):
        for v in (-128, -1, 0, 1, 127):
            assert to_signed(to_unsigned(v, 8), 8) == v


class TestSignExtend:
    def test_extends_negative(self):
        assert sign_extend(0xFF, 8, 16) == 0xFFFF

    def test_keeps_positive(self):
        assert sign_extend(0x7F, 8, 16) == 0x7F

    def test_same_width(self):
        assert sign_extend(0xAB, 8, 8) == 0xAB

    def test_narrowing_raises(self):
        with pytest.raises(ValueError):
            sign_extend(0xFF, 16, 8)

    def test_stride_semantics(self):
        # A -3 stride stored in 8 bits must add as -3 in 64 bits.
        stored = to_unsigned(-3, 8)
        assert to_signed(sign_extend(stored, 8, 64), 64) == -3


class TestFoldBits:
    def test_fold_identity_when_fits(self):
        assert fold_bits(0b1010, 4, 4) == 0b1010

    def test_fold_xors_chunks(self):
        assert fold_bits(0b1010_1100, 8, 4) == (0b1100 ^ 0b1010)

    def test_zero_output_width(self):
        assert fold_bits(0xFFFF, 16, 0) == 0

    def test_result_in_range(self):
        for v in (0, 1, 0xDEADBEEF, WORD_MASK):
            assert 0 <= fold_bits(v, 64, 13) < (1 << 13)

    def test_truncates_input(self):
        # Bits above input_bits must not affect the fold.
        assert fold_bits(0xF0F, 8, 4) == fold_bits(0x0F, 8, 4)
