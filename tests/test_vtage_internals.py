"""White-box tests of VTAGE/TAGE-style allocation and usefulness logic."""

from repro.predictors import DVTAGEPredictor, HistoryState, VTAGEPredictor
from repro.predictors.vtage import geometric_history_lengths

PC = 0x40_0200


class TestGeometricLengths:
    def test_paper_series(self):
        assert geometric_history_lengths(6, 2, 64) == (2, 4, 8, 16, 32, 64)

    def test_single_component(self):
        assert geometric_history_lengths(1, 2, 64) == (2,)

    def test_endpoints_exact(self):
        lengths = geometric_history_lengths(12, 8, 640)
        assert lengths[0] == 8 and lengths[-1] == 640

    def test_strictly_increasing(self):
        lengths = geometric_history_lengths(8, 2, 256)
        assert all(a < b for a, b in zip(lengths, lengths[1:]))


class TestVTAGEAllocation:
    def test_mispredict_allocates_tagged_entry(self):
        p = VTAGEPredictor()
        hist = HistoryState(0b1101, 0)
        # Train a value, then change it: the wrong prediction must allocate.
        pred = None
        for _ in range(5):
            pred = p.predict(PC, 0, hist)
            p.train(PC, 0, hist, 100, pred)
        allocated_before = sum(1 for t in p._t_tag if t != -1)
        pred = p.predict(PC, 0, hist)
        p.train(PC, 0, hist, 999, pred)  # mispredict
        allocated_after = sum(1 for t in p._t_tag if t != -1)
        assert allocated_after > allocated_before

    def test_value_installed_after_mispredict(self):
        """After training a constant, some component predicts it."""
        p = VTAGEPredictor()
        hist = HistoryState(0, 0)
        for _ in range(3):
            pred = p.predict(PC, 0, hist)
            p.train(PC, 0, hist, 42, pred)
        pred = p.predict(PC, 0, hist)
        assert pred is not None
        assert pred.value == 42

    def test_useful_reset_period(self):
        p = VTAGEPredictor(useful_reset_period=10)
        hist = HistoryState(0b111, 0)
        # Force usefulness (in the current generation), then push past the
        # reset period: every entry must read as not-useful again.  The
        # reset is a generation bump, not a table walk, so observe through
        # the logical accessor.
        all_slots = range(p.components * p.tagged_entries)
        for comp in range(p.components):
            first = comp * p.tagged_entries
            p._t_useful[first] = 1
            p._t_ugen[first] = p._useful_gen
        assert any(p._useful_value(i) == 1 for i in all_slots)
        for i in range(12):
            pred = p.predict(PC + 8 * i, 0, hist)
            p.train(PC + 8 * i, 0, hist, i, pred)
        assert all(p._useful_value(i) == 0 for i in all_slots)


class TestDVTAGEInternals:
    def test_lvt_claimed_at_fetch(self):
        p = DVTAGEPredictor()
        hist = HistoryState()
        assert p.predict(PC, 0, hist) is None  # claims the entry
        from repro.predictors.base import mix_pc, table_index
        idx = table_index(mix_pc(PC, 0), p.base_index_bits)
        assert p._l_tag[idx] != -1
        assert p._l_inflight[idx] == 1
        assert not p._l_valid[idx]

    def test_stale_train_after_steal_ignored(self):
        p = DVTAGEPredictor()
        hist = HistoryState()
        p.predict(PC, 0, hist)
        # Find another pc colliding on the same LVT index.
        from repro.predictors.base import mix_pc, table_index
        idx = table_index(mix_pc(PC, 0), p.base_index_bits)
        other = None
        for cand in range(PC + 1, PC + (1 << 20)):
            if (table_index(mix_pc(cand, 0), p.base_index_bits) == idx
                    and mix_pc(cand, 0) >> p.base_index_bits != mix_pc(PC, 0) >> p.base_index_bits):
                other = cand
                break
        assert other is not None
        p.predict(other, 0, hist)  # steals the entry
        tag_after_steal = p._l_tag[idx]
        p.train(PC, 0, hist, 123, None)  # stale train for the old owner
        assert p._l_tag[idx] == tag_after_steal  # unchanged

    def test_propagate_confidence_flag(self):
        on = DVTAGEPredictor(propagate_confidence=True)
        off = DVTAGEPredictor(propagate_confidence=False)
        assert on.propagate_confidence and not off.propagate_confidence

    def test_partial_stride_storage_in_tables(self):
        p8 = DVTAGEPredictor(stride_bits=8)
        p64 = DVTAGEPredictor(stride_bits=64)
        # 8-bit strides shrink VT0 + tagged but not the LVT.
        diff = p64.storage_bits() - p8.storage_bits()
        per_entry_savings = 56  # 64-8 bits per stride slot
        expected = (p64.base_entries + p64.tagged_entries * 6) * per_entry_savings
        assert diff == expected
