"""Tests for the Per-Path Stride predictor (related work, §VII-B)."""

import pytest

from repro.common.bits import to_unsigned
from repro.predictors import HistoryState, PerPathStridePredictor

PC = 0x40_0030


def drive(pred, stream, hist_fn=None):
    used = correct = 0
    for i, value in enumerate(stream):
        hist = hist_fn(i) if hist_fn else HistoryState()
        p = pred.predict(PC, 0, hist)
        if p is not None and p.confident:
            used += 1
            correct += p.value == value
        pred.train(PC, 0, hist, value, p)
    return used, correct


class TestPerPathStride:
    def test_plain_stride(self):
        stream = [to_unsigned(50 + 9 * i, 64) for i in range(3000)]
        used, correct = drive(PerPathStridePredictor(), stream)
        assert used > 2500
        assert correct == used

    def test_constant(self):
        used, correct = drive(PerPathStridePredictor(), [7] * 3000)
        assert used > 2500 and correct == used

    def test_path_dependent_stride(self):
        """The PS selling point: different strides per branch history."""
        hist_bits, values, hists, v = 0, [], [], 0
        for i in range(6000):
            taken = i % 2 == 0
            hist_bits = ((hist_bits << 1) | taken) & ((1 << 64) - 1)
            hists.append(HistoryState(hist_bits, 0))
            v = to_unsigned(v + (4 if taken else 10), 64)
            values.append(v)
        used, correct = drive(
            PerPathStridePredictor(), values, hist_fn=lambda i: hists[i]
        )
        assert used > 3000
        assert correct / used > 0.99

    def test_random_not_used(self):
        from repro.common.rng import XorShift64

        rng = XorShift64(5)
        used, _ = drive(PerPathStridePredictor(),
                        [rng.next_u64() for _ in range(3000)])
        assert used < 30

    def test_squash_checkpoint(self):
        p = PerPathStridePredictor()
        hist = HistoryState()
        for v in range(100):
            pred = p.predict(PC, 0, hist)
            p.train(PC, 0, hist, 9 * v, pred)
        for _ in range(4):
            p.predict(PC, 0, hist)
        p.squash({(PC, 0): 1})
        idx, _ = p._vht_slot(PC)
        assert p._h_inflight[idx] == 1

    def test_storage(self):
        p = PerPathStridePredictor(vht_entries=1024, sht_entries=1024,
                                   stride_bits=8)
        assert p.storage_bits() == 1024 * (5 + 64) + 1024 * (8 + 3)

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            PerPathStridePredictor(vht_entries=1000)
