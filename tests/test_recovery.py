"""Unit tests for the §IV-A recovery policies."""

from repro.bebop.recovery import RecoveryPolicy


class TestRecoveryPolicy:
    def test_all_four_exist(self):
        assert {p.value for p in RecoveryPolicy} == {
            "ideal", "repred", "dnrdnr", "dnrr"
        }

    def test_repredicts(self):
        assert RecoveryPolicy.IDEAL.repredicts
        assert RecoveryPolicy.REPRED.repredicts
        assert not RecoveryPolicy.DNRDNR.repredicts
        assert not RecoveryPolicy.DNRR.repredicts

    def test_reuse(self):
        # DnRDnR is the only policy that forbids using the predictions.
        assert not RecoveryPolicy.DNRDNR.reuses_predictions
        assert RecoveryPolicy.DNRR.reuses_predictions
        assert RecoveryPolicy.REPRED.reuses_predictions
        assert RecoveryPolicy.IDEAL.reuses_predictions

    def test_head_squash(self):
        # Repred squashes the flushing block's own entries (§IV-A-c).
        assert RecoveryPolicy.REPRED.squashes_head
        assert not RecoveryPolicy.DNRR.squashes_head
        assert not RecoveryPolicy.DNRDNR.squashes_head
        assert not RecoveryPolicy.IDEAL.squashes_head
