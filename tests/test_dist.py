"""Tests for repro.dist: lease queue, wire protocol, workers, fault drills.

The :class:`LeaseQueue` unit tests drive a fake clock, so lease expiry,
backoff gating and retry exhaustion are asserted without sleeping.  The
integration tests run a real coordinator (``CoordinatorThread``) with
in-process worker threads on a cheap fake ``job_fn``; the heavyweight
drills — SIGKILLing a real worker subprocess mid-job, degrading to the
local pool when every worker is gone — use tiny real simulations and pin
the headline property end to end: results bit-identical to a serial run.
"""

import threading
import time
from pathlib import Path

import pytest

import repro.exec
import repro.obs as obs
from repro.chaos import ChaosConfig, FaultPlan
from repro.common.rng import deterministic_backoff
from repro.dist import (
    CoordinatorThread,
    DistBackend,
    DistClient,
    DistWorker,
    LeaseQueue,
    WorkerPool,
)
from repro.dist.coordinator import DONE, FAILED, LEASED, QUEUED
from repro.exec import JobSpec, ResultCache, Scheduler, baseline_job
from repro.pipeline import SimStats
from repro.serve import ProtocolError, protocol


@pytest.fixture(autouse=True)
def _clean_slate():
    repro.exec.reset()
    obs.disable()
    yield
    repro.exec.reset()
    obs.disable()


def _fake_job(spec: JobSpec) -> SimStats:
    return SimStats(workload=spec.workload, cycles=spec.uops,
                    insts=2 * spec.uops)


def _specs(n: int) -> list[JobSpec]:
    return [baseline_job("swim", 1_000 + i, 0) for i in range(n)]


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _queue(**kwargs) -> tuple[LeaseQueue, FakeClock]:
    clock = FakeClock()
    defaults = dict(clock=clock, lease_seconds=10.0, retries=2,
                    backoff_base=0.5, backoff_cap=4.0)
    defaults.update(kwargs)
    return LeaseQueue(**defaults), clock


def _grant_digest(grant: dict) -> str:
    return grant["job"]["digest"]


# ---------------------------------------------------------------------------
# Deterministic backoff.
# ---------------------------------------------------------------------------

class TestDeterministicBackoff:
    def test_reproducible(self):
        assert (deterministic_backoff("k", 3, 0.5, 30.0)
                == deterministic_backoff("k", 3, 0.5, 30.0))

    def test_jitter_varies_by_key_and_attempt(self):
        values = {deterministic_backoff(key, attempt, 0.5, 300.0)
                  for key in ("a", "b", "c") for attempt in (1, 2, 3)}
        assert len(values) > 5  # jittered, not a shared ladder

    def test_bounded_by_jittered_exponential(self):
        for attempt in range(1, 12):
            value = deterministic_backoff("job", attempt, 0.5, 8.0)
            assert 0 < value <= 8.0
            assert value <= 0.5 * 2 ** (attempt - 1)
            # jitter factor is drawn from [0.5, 1.0)
            assert value >= min(8.0, 0.5 * 2 ** (attempt - 1)) * 0.5

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            deterministic_backoff("job", 0, 0.5, 8.0)


# ---------------------------------------------------------------------------
# Protocol documents.
# ---------------------------------------------------------------------------

class TestDistProtocol:
    SPEC = baseline_job("swim", 1_000, 0)

    def test_worker_id_validation(self):
        assert protocol.validate_worker("w0r1") == "w0r1"
        for bad in ("", "a b", "x" * 121, None, 7):
            with pytest.raises(ProtocolError):
                protocol.validate_worker(bad)

    def test_lease_grant_roundtrip(self):
        from repro.chaos import FaultAction
        grant = protocol.encode_lease_grant(
            self.SPEC, 2, 7.5, fault=FaultAction("hang", seconds=0.3),
            corrupt="truncate",
        )
        order, drain = protocol.decode_lease(grant)
        assert not drain
        assert order.spec == self.SPEC
        assert order.attempt == 2
        assert order.lease_seconds == 7.5
        assert order.fault.kind == "hang"
        assert order.fault.seconds == 0.3
        assert order.corrupt == "truncate"
        assert order.digest == self.SPEC.digest()

    def test_lease_idle_and_drain(self):
        assert protocol.decode_lease(protocol.encode_lease_idle()) \
            == (None, False)
        assert protocol.decode_lease(protocol.encode_lease_idle(drain=True)) \
            == (None, True)

    def test_lease_tampered_digest_rejected(self):
        grant = protocol.encode_lease_grant(self.SPEC, 0, 5.0)
        grant["job"]["digest"] = "0" * 64
        with pytest.raises(ProtocolError):
            protocol.decode_lease(grant)

    def test_complete_roundtrip_verifies(self):
        stats = _fake_job(self.SPEC)
        doc = protocol.encode_complete("w0", self.SPEC, stats,
                                       {"exec/job/count": 1})
        worker, spec, decoded, result_doc, metrics = \
            protocol.decode_complete(doc)
        assert (worker, spec, decoded) == ("w0", self.SPEC, stats)
        assert metrics == {"exec/job/count": 1}
        # the embedded result document re-verifies standalone
        respec, restats, _ = protocol.decode_result(result_doc)
        assert (respec, restats) == (self.SPEC, stats)

    def test_complete_tampered_stats_rejected(self):
        doc = protocol.encode_complete("w0", self.SPEC, _fake_job(self.SPEC))
        doc["result"]["stats"]["cycles"] += 1
        with pytest.raises(ProtocolError):
            protocol.decode_complete(doc)

    def test_fail_and_heartbeat_roundtrip(self):
        digest = self.SPEC.digest()
        assert protocol.decode_fail(
            protocol.encode_fail("w1", digest, "boom")
        ) == ("w1", digest, "boom")
        assert protocol.decode_heartbeat(
            protocol.encode_heartbeat("w1", digest)
        ) == ("w1", digest)

    def test_collect_roundtrip(self):
        stats = _fake_job(self.SPEC)
        doc = protocol.encode_collect_response(
            [protocol.encode_result(self.SPEC, stats, "computed")],
            [{"digest": self.SPEC.digest(), "error": "gone"}], 3, 2,
        )
        results, failed, outstanding, live = \
            protocol.decode_collect_response(doc)
        assert results == [(self.SPEC, stats)]
        assert failed == [(self.SPEC.digest(), "gone")]
        assert (outstanding, live) == (3, 2)


# ---------------------------------------------------------------------------
# The lease queue, on a fake clock.
# ---------------------------------------------------------------------------

class TestLeaseQueue:
    def test_submit_deduplicates_digests(self):
        queue, _ = _queue()
        specs = _specs(3)
        assert queue.submit(specs) == 3
        assert queue.submit(specs) == 0
        assert queue.counters["jobs"] == 3

    def test_lease_oldest_first_then_idle(self):
        queue, _ = _queue()
        specs = _specs(2)
        queue.submit(specs)
        assert _grant_digest(queue.lease("w0")) == specs[0].digest()
        assert _grant_digest(queue.lease("w0")) == specs[1].digest()
        assert queue.lease("w0") is None

    def test_complete_is_idempotent_first_wins(self):
        queue, _ = _queue()
        spec = _specs(1)[0]
        queue.submit([spec])
        queue.lease("w0")
        doc = protocol.encode_result(spec, _fake_job(spec), "computed")
        assert queue.complete("w0", spec.digest(), doc) == "ok"
        assert queue.complete("w1", spec.digest(), doc) == "stale"
        results, failed, outstanding, _ = queue.collect()
        assert len(results) == 1 and not failed and outstanding == 0
        assert queue.collect()[0] == []   # drained exactly once
        assert queue.counters["stale_completions"] == 1

    def test_heartbeat_extends_lease(self):
        queue, clock = _queue(lease_seconds=10.0)
        spec = _specs(1)[0]
        queue.submit([spec])
        queue.lease("w0")
        clock.advance(8.0)
        assert queue.heartbeat("w0", spec.digest())
        clock.advance(8.0)          # 16s since lease, 8s since heartbeat
        assert queue.reap() == 0
        assert queue.status()["jobs"][LEASED] == 1

    def test_heartbeat_refused_for_non_holder(self):
        queue, _ = _queue()
        spec = _specs(1)[0]
        queue.submit([spec])
        queue.lease("w0")
        assert not queue.heartbeat("w1", spec.digest())
        assert not queue.heartbeat("w0", "0" * 64)

    def test_expired_lease_requeues_with_backoff(self):
        queue, clock = _queue(lease_seconds=10.0)
        spec = _specs(1)[0]
        queue.submit([spec])
        queue.lease("w0")
        clock.advance(10.1)
        assert queue.reap() == 1
        assert queue.counters["lease_expired"] == 1
        assert queue.counters["requeues"] == 1
        # backoff gates the re-lease: not immediately available...
        assert queue.lease("w1") is None
        # ...but available once the deterministic backoff has passed
        clock.advance(deterministic_backoff(spec.digest(), 1, 0.5, 4.0))
        grant = queue.lease("w1")
        assert _grant_digest(grant) == spec.digest()
        assert grant["job"]["attempt"] == 1
        # w1 took over w0's job: that's a steal, attributed to w1
        assert queue.counters["steals"] == 1
        assert queue.worker_counters["w1"]["steals"] == 1

    def test_retry_budget_exhaustion_is_terminal(self):
        queue, clock = _queue(lease_seconds=1.0, retries=2,
                              backoff_base=0.1, backoff_cap=0.2)
        spec = _specs(1)[0]
        queue.submit([spec])
        for _ in range(3):          # initial + 2 retries
            clock.advance(5.0)      # clear any backoff gate
            assert queue.lease("w0") is not None
            clock.advance(1.1)
            queue.reap()
        clock.advance(5.0)
        assert queue.lease("w0") is None
        assert queue.status()["jobs"][FAILED] == 1
        _, failed, outstanding, _ = queue.collect()
        assert len(failed) == 1 and "lease expired" in failed[0]["error"]
        assert outstanding == 0

    def test_worker_fail_report_charges_attempt(self):
        queue, clock = _queue(retries=1, backoff_base=0.1, backoff_cap=0.1)
        spec = _specs(1)[0]
        queue.submit([spec])
        queue.lease("w0")
        queue.fail("w0", spec.digest(), "boom 1")
        clock.advance(1.0)
        queue.lease("w0")
        queue.fail("w0", spec.digest(), "boom 2")
        assert queue.status()["jobs"][FAILED] == 1
        assert queue.collect()[1][0]["error"] == "boom 2"

    def test_late_completion_after_expiry_still_counts(self):
        """The first finished computation wins even if its lease expired."""
        queue, clock = _queue(lease_seconds=1.0, backoff_base=10.0,
                              backoff_cap=10.0)
        spec = _specs(1)[0]
        queue.submit([spec])
        queue.lease("w0")
        clock.advance(1.5)
        queue.reap()                # w0's lease expired, job back in queue
        doc = protocol.encode_result(spec, _fake_job(spec), "computed")
        assert queue.complete("w0", spec.digest(), doc) == "ok"
        assert queue.status()["jobs"][DONE] == 1
        assert queue.lease("w1") is None   # nothing left to steal

    def test_cancel_terminates_unfinished_jobs(self):
        queue, _ = _queue()
        specs = _specs(3)
        queue.submit(specs)
        queue.lease("w0")
        cancelled = queue.cancel()
        assert sorted(cancelled) == sorted(s.digest() for s in specs)
        status = queue.status()
        assert status["jobs"][FAILED] == 3
        assert status["leases"] == []
        # cancelled jobs are not reported as fresh failures
        assert queue.collect()[1] == []

    def test_live_workers_expire_with_ttl(self):
        queue, clock = _queue(lease_seconds=1.0, worker_ttl=2.0)
        queue.touch_worker("w0")
        queue.touch_worker("w1")
        assert queue.live_workers() == 2
        clock.advance(2.5)
        queue.touch_worker("w1")
        assert queue.live_workers() == 1
        queue.reap()
        queue.touch_worker("w1")
        assert queue.live_workers() == 1

    def test_chaos_verdicts_independent_of_worker(self):
        """Injection is a function of (seed, digest, ordinal) — whoever
        steals the job gets the same verdict."""
        config = ChaosConfig(crash_rate=0.5, cache_corrupt_rate=0.5, seed=11)
        specs = _specs(6)
        grants = {}
        for worker_order in (("w0", "w1"), ("w1", "w0")):
            queue, _ = _queue(chaos=FaultPlan(config))
            queue.submit(specs)
            seen = {}
            worker = iter(worker_order * len(specs))
            while True:
                grant = queue.lease(next(worker))
                if grant is None:
                    break
                job = grant["job"]
                seen[job["digest"]] = (job["fault"], job["corrupt"])
            grants[worker_order] = seen
        first, second = grants.values()
        assert first == second
        assert any(f or c for f, c in first.values())  # the plan does fire


# ---------------------------------------------------------------------------
# Coordinator + in-process workers (fake jobs: pure plumbing).
# ---------------------------------------------------------------------------

def _run_workers(url: str, n: int, cache: ResultCache, **kwargs):
    """Start ``n`` in-process workers; returns (workers, threads)."""
    workers, threads = [], []
    for i in range(n):
        worker = DistWorker(url, f"w{i}", cache=cache, job_fn=_fake_job,
                            in_process=True, poll_interval=0.01,
                            max_idle=kwargs.pop("max_idle", None), **kwargs)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        workers.append(worker)
        threads.append(thread)
    return workers, threads


def _stop_workers(workers, threads):
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=20)
        assert not thread.is_alive()


class TestDistIntegration:
    def test_sweep_matches_serial_and_leaks_no_leases(self, tmp_path):
        specs = _specs(8)
        expected = [_fake_job(s) for s in specs]
        cache = ResultCache(root=tmp_path / "cache")
        with CoordinatorThread(lease_seconds=5.0) as coord:
            workers, threads = _run_workers(coord.url, 2, cache)
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.01))
            assert sched.run(specs) == expected
            status = DistClient(coord.url).dist_status()
            _stop_workers(workers, threads)
        assert status["jobs"] == {QUEUED: 0, LEASED: 0,
                                  DONE: len(specs), FAILED: 0}
        assert status["leases"] == []
        assert coord.queue.counters["completions"] == len(specs)

    def test_duplicate_specs_computed_once(self, tmp_path):
        spec = _specs(1)[0]
        specs = [spec, spec, spec]
        cache = ResultCache(root=tmp_path / "cache")
        with CoordinatorThread(lease_seconds=5.0) as coord:
            workers, threads = _run_workers(coord.url, 1, cache)
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.01))
            assert sched.run(specs) == [_fake_job(spec)] * 3
            _stop_workers(workers, threads)
        assert coord.queue.counters["jobs"] == 1
        assert coord.queue.counters["completions"] == 1

    def test_workers_write_journals_mergeable_on_resume(self, tmp_path):
        from repro.chaos import RunJournal, merge_journals
        specs = _specs(4)
        cache = ResultCache(root=tmp_path / "cache")
        journals = [RunJournal(tmp_path / f"w{i}.jsonl") for i in range(2)]
        with CoordinatorThread(lease_seconds=5.0) as coord:
            workers, threads = [], []
            for i, journal in enumerate(journals):
                worker = DistWorker(coord.url, f"w{i}", cache=cache,
                                    journal=journal, job_fn=_fake_job,
                                    in_process=True, poll_interval=0.01)
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                workers.append(worker)
                threads.append(thread)
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.01))
            results = sched.run(specs)
            _stop_workers(workers, threads)
        for journal in journals:
            journal.close()
        merged = merge_journals([tmp_path / "w0.jsonl",
                                 tmp_path / "w1.jsonl"])
        assert len(merged) == len(specs)
        assert [merged.get(s) for s in specs] == results

    def test_terminal_remote_failure_recomputed_locally(self, tmp_path):
        """A job whose distributed retries are exhausted falls back to the
        local pool — the sweep still completes with correct results."""
        def _always_raises(spec):
            raise RuntimeError("injected worker bug")

        specs = [baseline_job("swim", 1_000, 0)]
        expected = Scheduler().run(specs)
        cache = ResultCache(root=tmp_path / "cache")
        with CoordinatorThread(lease_seconds=5.0, retries=1,
                               backoff_base=0.01, backoff_cap=0.02) as coord:
            workers, threads = [], []
            worker = DistWorker(coord.url, "w0", cache=cache,
                                job_fn=_always_raises, in_process=True,
                                poll_interval=0.01)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.01))
            assert sched.run(specs) == expected
            worker.stop()
            thread.join(timeout=20)
        assert coord.queue.counters["failures"] == 1
        # the locally recomputed result was stored for everyone
        assert cache.get(specs[0]) == expected[0]

    def test_degrades_to_local_pool_when_no_workers_exist(self, tmp_path):
        specs = _specs(3)
        expected = Scheduler().run(specs)
        cache = ResultCache(root=tmp_path / "cache")
        with CoordinatorThread(lease_seconds=5.0) as coord:
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.02,
                                                  degrade_after=0.3))
            assert sched.run(specs) == expected
        assert coord.queue.counters["cancelled"] == len(specs)
        assert all(cache.get(s) == e for s, e in zip(specs, expected))

    def test_corrupt_verdict_quarantined_and_repaired(self, tmp_path):
        """A coordinator-shipped corruption verdict damages the worker's
        stored blob; the worker proves repair: quarantine + clean re-put."""
        specs = _specs(3)
        expected = [_fake_job(s) for s in specs]
        chaos = FaultPlan(ChaosConfig(cache_corrupt_rate=1.0, seed=5))
        cache = ResultCache(root=tmp_path / "cache")
        with CoordinatorThread(lease_seconds=5.0, chaos=chaos) as coord:
            workers, threads = _run_workers(coord.url, 1, cache)
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.01))
            assert sched.run(specs) == expected
            _stop_workers(workers, threads)
        assert chaos.injected.get("cache_corrupt") == len(specs)
        quarantined = list(cache.quarantine_dir.glob("*.json"))
        assert len(quarantined) == len(specs)
        # no reader is ever served corrupt bytes
        fresh = ResultCache(root=tmp_path / "cache")
        assert [fresh.get(s) for s in specs] == expected

    def test_in_process_crash_verdict_downgraded_and_recovered(self,
                                                               tmp_path):
        specs = _specs(4)
        expected = [_fake_job(s) for s in specs]
        chaos = FaultPlan(ChaosConfig(crash_rate=0.7, seed=3,
                                      max_faults_per_job=2))
        cache = ResultCache(root=tmp_path / "cache")
        with CoordinatorThread(lease_seconds=5.0, retries=4,
                               backoff_base=0.01, backoff_cap=0.05,
                               chaos=chaos) as coord:
            workers, threads = _run_workers(coord.url, 2, cache)
            sched = Scheduler(cache=cache,
                              backend=DistBackend(coord.url,
                                                  poll_interval=0.01))
            assert sched.run(specs) == expected
            _stop_workers(workers, threads)
        assert chaos.injected.get("crash", 0) > 0
        assert chaos.recovered > 0
        assert coord.queue.status()["jobs"][DONE] == len(specs)


# ---------------------------------------------------------------------------
# The hard drills: real subprocess workers, real (tiny) simulations.
# ---------------------------------------------------------------------------

def _kill_when_leased(url: str, pool: WorkerPool, idx: int, worker: str,
                      outcome: list, timeout: float = 60.0) -> None:
    """SIGKILL pool worker ``idx`` the moment the coordinator shows
    ``worker`` holding a lease — deterministic mid-job node loss
    regardless of how long subprocess startup takes."""
    client = DistClient(url)
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            leases = client.dist_status().get("leases", [])
            if any(lease.get("worker") == worker for lease in leases):
                pool.kill(idx)
                outcome.append(True)
                return
            time.sleep(0.02)
        outcome.append(False)
    except Exception:
        outcome.append(False)     # coordinator shut down under us
    finally:
        client.close()


class TestWorkerLossDrills:
    def test_sigkilled_worker_job_releases_and_finishes_elsewhere(
            self, tmp_path):
        """SIGKILL one of two real workers mid-job: its lease expires, the
        job is re-leased to the survivor, and the sweep's results are
        bit-identical to a serial run."""
        specs = [baseline_job(w, uops=2_000, warmup=500)
                 for w in ("swim", "gobmk", "mcf", "bzip2")]
        serial = Scheduler().run(specs)
        cache = ResultCache(root=tmp_path / "cache")
        killed: list = []
        with CoordinatorThread(lease_seconds=1.0, retries=4,
                               backoff_base=0.05, backoff_cap=0.2) as coord:
            with WorkerPool(coord.url, 2, cache_root=str(cache.root),
                            respawn=False, slowdown=0.4,
                            poll_interval=0.01) as pool:
                killer = threading.Thread(
                    target=_kill_when_leased,
                    args=(coord.url, pool, 0, "w0", killed), daemon=True,
                )
                killer.start()
                sched = Scheduler(cache=cache,
                                  backend=DistBackend(coord.url,
                                                      poll_interval=0.02))
                dist = sched.run(specs)
                killer.join(timeout=20)
                status = DistClient(coord.url).dist_status()
        assert killed == [True]
        assert dist == serial
        assert status["jobs"][DONE] == len(specs)
        assert status["leases"] == []          # zero leaked lease records
        counters = coord.queue.counters
        assert counters.get("lease_expired", 0) >= 1
        assert counters.get("requeues", 0) >= 1

    def test_losing_every_worker_degrades_to_local(self, tmp_path):
        specs = [baseline_job("swim", 2_000, 500),
                 baseline_job("gobmk", 2_000, 500)]
        serial = Scheduler().run(specs)
        cache = ResultCache(root=tmp_path / "cache")
        killed: list = []
        with CoordinatorThread(lease_seconds=1.0, retries=8,
                               backoff_base=0.05, backoff_cap=0.2) as coord:
            with WorkerPool(coord.url, 1, cache_root=str(cache.root),
                            respawn=False, slowdown=2.0,
                            poll_interval=0.01) as pool:
                killer = threading.Thread(
                    target=_kill_when_leased,
                    args=(coord.url, pool, 0, "w0", killed), daemon=True,
                )
                killer.start()
                sched = Scheduler(
                    cache=cache,
                    backend=DistBackend(coord.url, poll_interval=0.05,
                                        degrade_after=1.0),
                )
                dist = sched.run(specs)
                killer.join(timeout=20)
        assert killed == [True]
        assert dist == serial
        assert all(cache.get(s) == r for s, r in zip(specs, serial))
