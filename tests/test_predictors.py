"""Unit tests for the instruction-based value predictors.

Each predictor is driven with canonical value streams (constant, strided,
history-correlated, random) and must show its textbook behaviour: LVP gets
constants only, stride predictors get arithmetic progressions, VTAGE gets
history-correlated series, D-VTAGE gets all of strided / constant /
history-correlated / history-dependent-strided.
"""

import pytest

from repro.common.bits import to_unsigned
from repro.predictors import (
    DVTAGEPredictor,
    FCMPredictor,
    DFCMPredictor,
    HistoryState,
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
    VTAGE2DStrideHybrid,
    VTAGEPredictor,
)

PC = 0x40_0010


def drive(predictor, stream, pc=PC, hist_fn=None):
    """Feed a value stream predict-then-train; return (used, correct_used)."""
    used = correct = 0
    for i, value in enumerate(stream):
        hist = hist_fn(i) if hist_fn else HistoryState(0, 0)
        p = predictor.predict(pc, 0, hist)
        if p is not None and p.confident:
            used += 1
            correct += p.value == value
        predictor.train(pc, 0, hist, value, p)
    return used, correct


def strided(n, start=100, stride=7):
    return [to_unsigned(start + stride * i, 64) for i in range(n)]


def history_correlated(n, period=3):
    """(values, hist_fn): value decided by a periodic branch pattern."""
    hist_bits = 0
    values, hists = [], []
    for i in range(n):
        taken = i % period == 0
        hist_bits = ((hist_bits << 1) | taken) & ((1 << 64) - 1)
        hists.append(HistoryState(hist_bits, 0))
        values.append(111 if taken else 222)
    return values, lambda i: hists[i]


N = 3000


class TestLastValuePredictor:
    def test_constant_stream(self):
        used, correct = drive(LastValuePredictor(), [42] * N)
        assert used > N * 0.9
        assert correct == used

    def test_strided_stream_fails(self):
        used, _ = drive(LastValuePredictor(), strided(N))
        assert used == 0

    def test_tag_mismatch_returns_none(self):
        p = LastValuePredictor()
        assert p.predict(PC, 0, HistoryState()) is None

    def test_storage_bits(self):
        p = LastValuePredictor(entries=1024, tag_bits=5)
        assert p.storage_bits() == 1024 * (5 + 64 + 3)

    def test_bad_entry_count(self):
        with pytest.raises(ValueError):
            LastValuePredictor(entries=1000)


class TestStridePredictors:
    @pytest.mark.parametrize("cls", [StridePredictor, TwoDeltaStridePredictor])
    def test_strided_stream(self, cls):
        used, correct = drive(cls(), strided(N))
        assert used > N * 0.9
        assert correct == used

    @pytest.mark.parametrize("cls", [StridePredictor, TwoDeltaStridePredictor])
    def test_constant_stream(self, cls):
        used, correct = drive(cls(), [9] * N)
        assert used > N * 0.9
        assert correct == used

    def test_negative_stride(self):
        used, correct = drive(TwoDeltaStridePredictor(), strided(N, 10**6, -13))
        assert used > N * 0.9
        assert correct == used

    def test_two_delta_filters_one_off_jump(self):
        """After a single stride glitch, 2-delta keeps the old stride."""
        p = TwoDeltaStridePredictor()
        hist = HistoryState()
        stream = strided(500) + [strided(500)[-1] + 9999] + strided(
            500, start=strided(500)[-1] + 9999 + 7
        )
        for value in stream:
            pred = p.predict(PC, 0, hist)
            p.train(PC, 0, hist, value, pred)
        # Predicting stride must be back to (or still) 7.
        index, _ = p._lookup(PC, 0)
        assert p._predicting_stride(index) == 7

    def test_partial_stride_wraps(self):
        """An 8-bit stride predictor cannot express stride 300."""
        p = TwoDeltaStridePredictor(stride_bits=8)
        used, correct = drive(p, strided(N, stride=300))
        assert used == 0 or correct < used  # never confidently correct

    def test_partial_stride_small_ok(self):
        p = TwoDeltaStridePredictor(stride_bits=8)
        used, correct = drive(p, strided(N, stride=5))
        assert used > N * 0.9 and correct == used

    def test_inflight_counting(self):
        """Lag between predict and train must not derail the chain."""
        from collections import deque

        p = TwoDeltaStridePredictor()
        stream = strided(2000)
        q = deque()
        hist = HistoryState()
        correct = used = 0
        for i, v in enumerate(stream):
            pred = p.predict(PC, 0, hist)
            q.append((v, pred))
            if pred is not None and pred.confident:
                used += 1
                correct += pred.value == v
            if len(q) > 20:
                av, ap = q.popleft()
                p.train(PC, 0, hist, av, ap)
        assert used > 1500
        assert correct == used

    def test_squash_restores_surviving_counts(self):
        p = TwoDeltaStridePredictor()
        hist = HistoryState()
        for v in strided(300):
            pred = p.predict(PC, 0, hist)
            p.train(PC, 0, hist, v, pred)
        # 5 in-flight predictions, then a squash with 2 survivors.
        for _ in range(5):
            p.predict(PC, 0, hist)
        p.squash({(PC, 0): 2})
        index, _ = p._lookup(PC, 0)
        assert p._inflight[index] == 2


class TestVTAGE:
    def test_history_correlated(self):
        values, hist_fn = history_correlated(N * 2)
        used, correct = drive(VTAGEPredictor(), values, hist_fn=hist_fn)
        assert used > N
        assert correct / used > 0.99

    def test_strided_fails(self):
        """VTAGE cannot capture strided series (paper §III-B)."""
        used, _ = drive(VTAGEPredictor(), strided(N))
        assert used == 0

    def test_constant_ok(self):
        used, correct = drive(VTAGEPredictor(), [5] * N)
        assert used > N * 0.9 and correct == used

    def test_storage_bits(self):
        p = VTAGEPredictor(base_entries=8192, tagged_entries=1024, components=6)
        base = 8192 * (64 + 3)
        tagged = sum(1024 * (13 + i + 64 + 3 + 1) for i in range(6))
        assert p.storage_bits() == base + tagged

    def test_history_lengths_geometric(self):
        p = VTAGEPredictor()
        assert p.history_lengths == (2, 4, 8, 16, 32, 64)

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            VTAGEPredictor(base_entries=100)


class TestDVTAGE:
    def test_strided(self):
        used, correct = drive(DVTAGEPredictor(), strided(N))
        assert used > N * 0.9 and correct == used

    def test_constant(self):
        used, correct = drive(DVTAGEPredictor(), [1234] * N)
        assert used > N * 0.9 and correct == used

    def test_history_correlated(self):
        values, hist_fn = history_correlated(N * 2)
        used, correct = drive(DVTAGEPredictor(), values, hist_fn=hist_fn)
        assert used > N
        assert correct / used > 0.99

    def test_history_dependent_strided(self):
        """The pattern D-VTAGE exists for (§III-C): stride selected by
        branch history."""
        hist_bits = 0
        values, hists = [], []
        v = 0
        for i in range(N * 2):
            taken = i % 2 == 0
            hist_bits = ((hist_bits << 1) | taken) & ((1 << 64) - 1)
            hists.append(HistoryState(hist_bits, 0))
            v = to_unsigned(v + (5 if taken else 11), 64)
            values.append(v)
        used, correct = drive(
            DVTAGEPredictor(), values, hist_fn=lambda i: hists[i]
        )
        assert used > N
        assert correct / used > 0.99

    def test_random_never_confident(self):
        from repro.common.rng import XorShift64

        rng = XorShift64(3)
        used, _ = drive(DVTAGEPredictor(), [rng.next_u64() for _ in range(N)])
        assert used < N * 0.01

    def test_partial_strides(self):
        p = DVTAGEPredictor(stride_bits=8)
        used, correct = drive(p, strided(N, stride=3))
        assert used > N * 0.9 and correct == used

    def test_storage_smaller_with_partial_strides(self):
        full = DVTAGEPredictor(stride_bits=64).storage_bits()
        partial = DVTAGEPredictor(stride_bits=8).storage_bits()
        assert partial < full


class TestHybrid:
    def test_covers_strided_and_correlated(self):
        used_s, correct_s = drive(VTAGE2DStrideHybrid(), strided(N))
        assert used_s > N * 0.9 and correct_s == used_s
        values, hist_fn = history_correlated(N * 2)
        used_h, correct_h = drive(VTAGE2DStrideHybrid(), values, hist_fn=hist_fn)
        assert used_h > N and correct_h / used_h > 0.99

    def test_storage_is_sum(self):
        h = VTAGE2DStrideHybrid()
        assert h.storage_bits() == h.vtage.storage_bits() + h.stride.storage_bits()

    def test_disagreement_blocks_use(self):
        """Both confident with different values -> not confident."""
        from repro.predictors.base import Prediction
        from repro.predictors.hybrid import _HybridMeta

        h = VTAGE2DStrideHybrid()

        class FakeV:
            def predict(self, pc, u, hist):
                return Prediction(1, True)

            def train(self, *a):
                pass

        class FakeS(FakeV):
            def predict(self, pc, u, hist):
                return Prediction(2, True)

        h.vtage, h.stride = FakeV(), FakeS()
        p = h.predict(PC, 0, HistoryState())
        assert p is not None and not p.confident


class TestFCM:
    def test_periodic_local_history(self):
        """FCM captures periodic value sequences with no branch context."""
        values = [(10, 20, 30)[i % 3] for i in range(N * 2)]
        used, correct = drive(FCMPredictor(), values)
        assert used > N
        assert correct / used > 0.99

    def test_dfcm_periodic(self):
        values = [(10, 20, 30)[i % 3] for i in range(N * 2)]
        used, correct = drive(DFCMPredictor(), values)
        assert used > N
        assert correct / used > 0.99

    def test_storage_accounts_orders(self):
        assert FCMPredictor(order=4).storage_bits() > FCMPredictor(order=1).storage_bits()

    def test_bad_order(self):
        with pytest.raises(ValueError):
            FCMPredictor(order=0)

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            FCMPredictor(vht_entries=100)
