"""Tests for the experiment harness (runner, experiments, reporting)."""

import pytest

from repro.eval import ExperimentResult, experiments, reporting
from repro.eval.runner import (
    RunSpec,
    clear_trace_cache,
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    set_trace_cache_limit,
)

TINY = RunSpec(uops=8_000, warmup=2_000, workloads=("swim", "gobmk"))


class TestRunner:
    def test_trace_cache(self):
        clear_trace_cache()
        t1 = get_trace("swim", 5000)
        t2 = get_trace("swim", 5000)
        assert t1 is t2
        t3 = get_trace("swim", 6000)
        assert t3 is not t1

    def test_trace_cache_lru_bound(self):
        clear_trace_cache()
        set_trace_cache_limit(2)
        try:
            t1 = get_trace("swim", 5000)
            get_trace("swim", 6000)
            get_trace("swim", 5000)      # refresh t1: now most recent
            get_trace("swim", 7000)      # evicts the 6000-µop trace
            assert get_trace("swim", 5000) is t1
            from repro.eval.runner import _TRACE_CACHE
            assert len(_TRACE_CACHE) == 2
            assert ("swim", 6000) not in _TRACE_CACHE
        finally:
            set_trace_cache_limit(48)
            clear_trace_cache()

    def test_trace_cache_limit_validation(self):
        with pytest.raises(ValueError):
            set_trace_cache_limit(0)

    def test_make_instr_predictor_kinds(self):
        for kind in ("lvp", "2d-stride", "vtage", "vtage-2d-stride", "d-vtage"):
            p = make_instr_predictor(kind)
            assert p.storage_bits() > 0

    def test_make_instr_predictor_unknown(self):
        with pytest.raises(ValueError):
            make_instr_predictor("oracle")

    def test_make_bebop_engine_window_conventions(self):
        assert make_bebop_engine(window=None).window.capacity is None
        assert make_bebop_engine(window=0).window.capacity == 0
        assert make_bebop_engine(window=32).window.capacity == 32

    def test_runspec_names_default_full_suite(self):
        assert len(RunSpec().names()) == 36
        assert TINY.names() == ("swim", "gobmk")


class TestExperiments:
    def test_table2_structure(self):
        r = experiments.table2_ipc(TINY)
        assert set(r) == {"swim", "gobmk"}
        assert r["swim"]["paper_ipc"] == 1.745

    def test_fig5a_structure(self):
        r = experiments.fig5a(TINY)
        assert set(r) == {"swim", "gobmk"}
        assert set(r["swim"]) == set(experiments.FIG5A_PREDICTORS)
        for row in r.values():
            for v in row.values():
                assert 0.5 < v < 5.0

    def test_fig5b_structure(self):
        r = experiments.fig5b(TINY)
        assert set(r) == {"swim", "gobmk"}

    def test_table3_structure(self):
        r = experiments.table3_storage()
        assert set(r) == {"Small_4p", "Small_6p", "Medium", "Large"}
        assert r["Medium"]["computed_kb"] == pytest.approx(32.76, abs=0.005)

    def test_fig7b_window_labels(self):
        one = RunSpec(uops=6_000, warmup=1_000, workloads=("swim",))
        r = experiments.fig7b(one)
        assert set(r) == {"inf", "64", "56", "48", "32", "16", "none"}

    def test_validate_experiment_ids(self):
        experiments.validate_experiment_ids([])
        experiments.validate_experiment_ids(["fig6a", "table2"])
        with pytest.raises(ValueError, match="fig6x"):
            experiments.validate_experiment_ids(["fig6x", "fig6a"])

    def test_aggregate(self):
        agg = experiments.aggregate({"a": 1.0, "b": 4.0})
        assert agg["min"] == 1.0 and agg["max"] == 4.0
        assert agg["gmean"] == pytest.approx(2.0)

    def test_cpi_stack_structure(self):
        r = experiments.cpi_stack(TINY)
        assert isinstance(r, ExperimentResult)
        assert set(r) == {"swim", "gobmk"}
        assert r.columns == experiments.CPI_STACK_CONFIGS
        for stacks in r.values():
            assert set(stacks) == set(experiments.CPI_STACK_CONFIGS)
            for stack in stacks.values():
                stack.check()
                assert stack.cycles > 0

    def test_h2p_structure(self):
        r = experiments.h2p(TINY)
        assert isinstance(r, ExperimentResult)
        # The H2P concentration kernel is appended to the spec's suite.
        assert set(r) == {"swim", "gobmk", "h2p_hard"}
        for name, row in r.items():
            assert row["category"] in ("INT", "FP")
            row["stack"].check()
            attribution = row["attribution"]
            want = (row["stack"].components["vp_squash"]
                    + row["stack"].components["branch_redirect"])
            assert attribution["attributed_cycles"] == want, name
            assert set(attribution["shares"]) == {1, 5, 10}
            assert "banks" not in row   # only with bank_interval

    def test_h2p_bank_telemetry_rides_along(self):
        spec = RunSpec(uops=6_000, warmup=1_000, workloads=("h2p_hard",))
        r = experiments.h2p(spec, bank_interval=2_000)
        banks = r["h2p_hard"]["banks"]
        assert set(banks["banks"]) == {"lvt", "vt0", "tagged"}
        assert banks["snapshots"] >= 2


class TestExperimentResult:
    def test_entry_points_return_typed_results(self):
        r = experiments.table2_ipc(TINY)
        assert isinstance(r, ExperimentResult)
        assert r.experiment == "table2"
        assert r.spec == TINY
        assert r.columns == ("ipc", "paper_ipc")

    def test_mapping_protocol(self):
        r = experiments.table2_ipc(TINY)
        assert set(r.keys()) == {"swim", "gobmk"}
        assert "swim" in r and "mcf" not in r
        assert len(r) == 2
        assert r.get("mcf") is None
        assert dict(r.items()) == r.rows
        assert [k for k in r] == list(r.rows)

    def test_equality_with_plain_dict(self):
        r = experiments.table3_storage()
        assert r == r.rows
        assert r == dict(r.rows)
        assert r != {"Small_4p": {}}

    def test_equality_ignores_meta(self):
        a = ExperimentResult("e", {"x": 1}, meta={"elapsed_seconds": 1.0})
        b = ExperimentResult("e", {"x": 1}, meta={"elapsed_seconds": 9.0})
        assert a == b
        assert a != ExperimentResult("other", {"x": 1})

    def test_meta_carries_provenance(self):
        r = experiments.table2_ipc(TINY)
        assert r.meta["elapsed_seconds"] > 0
        assert r.meta["jobs"] == 1

    def test_meta_cache_counters(self, tmp_path):
        import repro.exec as rexec
        rexec.configure(cache=rexec.ResultCache(root=tmp_path))
        try:
            cold = experiments.table2_ipc(TINY)
            warm = experiments.table2_ipc(TINY)
        finally:
            rexec.reset()
        assert cold.meta["cache_misses"] == 2 and cold.meta["cache_hits"] == 0
        assert warm.meta["cache_misses"] == 0 and warm.meta["cache_hits"] == 2
        assert warm == cold  # meta differs; the result does not

    def test_as_dict_sheds_provenance(self):
        r = experiments.table3_storage()
        d = r.as_dict()
        assert type(d) is dict and d == r.rows and d is not r.rows


class TestReporting:
    def test_render_per_workload(self):
        text = reporting.render_per_workload(
            "T", {"swim": {"x": 1.5}, "mcf": {"x": 0.9}}, ["x"]
        )
        assert "swim" in text and "gmean" in text and "1.500" in text

    def test_render_per_workload_insertion_order(self):
        # No column_order: columns appear as the experiment produced them,
        # not alphabetically resorted.
        rows = {"swim": {"zeta": 1.0, "alpha": 2.0}}
        text = reporting.render_per_workload("T", rows)
        header = text.splitlines()[2]
        assert header.index("zeta") < header.index("alpha")

    def test_render_per_workload_uses_result_columns(self):
        r = ExperimentResult(
            "e", {"swim": {"alpha": 1.0, "beta": 2.0}}, columns=("beta", "alpha")
        )
        header = reporting.render_per_workload("T", r).splitlines()[2]
        assert header.index("beta") < header.index("alpha")

    def test_render_cpi_stack(self):
        r = experiments.cpi_stack(
            RunSpec(uops=6_000, warmup=1_000, workloads=("swim",))
        )
        text = reporting.render_cpi_stack(r)
        assert "swim" in text and "Baseline_6_60" in text
        for component in ("base", "memory", "fu", "vp_squash"):
            assert component in text

    def test_render_h2p(self):
        r = experiments.h2p(
            RunSpec(uops=6_000, warmup=1_000, workloads=("swim",))
        )
        text = reporting.render_h2p(r)
        assert "swim" in text and "h2p_hard" in text
        assert "Per workload class" in text
        assert "top10" in text and "0x" in text

    def test_render_box_summary(self):
        text = reporting.render_box_summary("T", {"cfg": {"a": 1.0, "b": 2.0}})
        assert "cfg" in text and "min" in text

    def test_render_table2(self):
        text = reporting.render_table2(
            {"swim": {"ipc": 2.0, "paper_ipc": 1.745}}
        )
        assert "1.745" in text

    def test_render_table3(self):
        text = reporting.render_table3(experiments.table3_storage())
        assert "32.76" in text

    def test_render_partial_strides(self):
        fake = {
            64: {"speedups": {"a": 1.0}, "aggregate": {"gmean": 1.0, "min": 1.0,
                                                       "max": 1.0},
                 "storage_kb": 289.0},
        }
        text = reporting.render_partial_strides(fake)
        assert "289.0" in text
