"""Unit tests for global/folded histories."""

import pytest

from repro.common.bits import fold_bits
from repro.common.history import FoldedHistory, GlobalHistory


class TestGlobalHistory:
    def test_push_outcome(self):
        h = GlobalHistory(8)
        h.push_outcome(True)
        h.push_outcome(False)
        h.push_outcome(True)
        assert h.value() == 0b101

    def test_capacity_truncates(self):
        h = GlobalHistory(4)
        for _ in range(10):
            h.push_outcome(True)
        assert h.value() == 0b1111

    def test_value_with_length(self):
        h = GlobalHistory(16)
        h.push(0b110101, 6)
        assert h.value(3) == 0b101
        assert h.value(6) == 0b110101

    def test_value_length_beyond_capacity(self):
        h = GlobalHistory(4)
        h.push(0b1111, 4)
        assert h.value(100) == 0b1111

    def test_push_path(self):
        h = GlobalHistory(8)
        h.push_path(0b111, bits=2)
        assert h.value() == 0b11

    def test_snapshot_restore(self):
        h = GlobalHistory(16)
        h.push(0b1010, 4)
        snap = h.snapshot()
        h.push(0b1111, 4)
        assert h.value() != 0b1010
        h.restore(snap)
        assert h.value() == 0b1010

    def test_clear(self):
        h = GlobalHistory(8)
        h.push(0xFF, 8)
        h.clear()
        assert h.value() == 0

    def test_folded_matches_fold_bits(self):
        h = GlobalHistory(64)
        h.push(0xDEAD_BEEF, 32)
        assert h.folded(32, 7) == fold_bits(h.value(32), 32, 7)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)


class TestFoldedHistory:
    def test_matches_direct_fold(self):
        """Incremental folding equals direct folding of the same history."""
        length, out = 12, 5
        fh = FoldedHistory(length, out)
        bits: list[int] = []
        for i in range(100):
            inserted = (i * 7 + 3) & 1
            evicted = bits[-length] if len(bits) >= length else 0
            fh.update(inserted, evicted)
            bits.append(inserted)
            window = bits[-length:]
            direct_value = 0
            for b in window:  # oldest..newest, newest at LSB of shift-in order
                direct_value = (direct_value << 1) | b
            assert fh.value == fold_bits(direct_value, length, out), f"step {i}"

    def test_clear(self):
        fh = FoldedHistory(8, 4)
        fh.update(1, 0)
        fh.clear()
        assert fh.value == 0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            FoldedHistory(8, 0)
