"""Unit tests for global/folded histories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bits import fold_bits, mask
from repro.common.history import (
    PATH_FOLD_BITS,
    FoldedHistory,
    FoldedHistorySet,
    GlobalHistory,
    fold_key,
)
from repro.predictors.base import HistoryState, tagged_index, tagged_tag


class TestGlobalHistory:
    def test_push_outcome(self):
        h = GlobalHistory(8)
        h.push_outcome(True)
        h.push_outcome(False)
        h.push_outcome(True)
        assert h.value() == 0b101

    def test_capacity_truncates(self):
        h = GlobalHistory(4)
        for _ in range(10):
            h.push_outcome(True)
        assert h.value() == 0b1111

    def test_value_with_length(self):
        h = GlobalHistory(16)
        h.push(0b110101, 6)
        assert h.value(3) == 0b101
        assert h.value(6) == 0b110101

    def test_value_length_beyond_capacity(self):
        h = GlobalHistory(4)
        h.push(0b1111, 4)
        assert h.value(100) == 0b1111

    def test_push_path(self):
        h = GlobalHistory(8)
        h.push_path(0b111, bits=2)
        assert h.value() == 0b11

    def test_snapshot_restore(self):
        h = GlobalHistory(16)
        h.push(0b1010, 4)
        snap = h.snapshot()
        h.push(0b1111, 4)
        assert h.value() != 0b1010
        h.restore(snap)
        assert h.value() == 0b1010

    def test_clear(self):
        h = GlobalHistory(8)
        h.push(0xFF, 8)
        h.clear()
        assert h.value() == 0

    def test_folded_matches_fold_bits(self):
        h = GlobalHistory(64)
        h.push(0xDEAD_BEEF, 32)
        assert h.folded(32, 7) == fold_bits(h.value(32), 32, 7)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)


class TestFoldedHistory:
    def test_matches_direct_fold(self):
        """Incremental folding equals direct folding of the same history."""
        length, out = 12, 5
        fh = FoldedHistory(length, out)
        bits: list[int] = []
        for i in range(100):
            inserted = (i * 7 + 3) & 1
            evicted = bits[-length] if len(bits) >= length else 0
            fh.update(inserted, evicted)
            bits.append(inserted)
            window = bits[-length:]
            direct_value = 0
            for b in window:  # oldest..newest, newest at LSB of shift-in order
                direct_value = (direct_value << 1) | b
            assert fh.value == fold_bits(direct_value, length, out), f"step {i}"

    def test_clear(self):
        fh = FoldedHistory(8, 4)
        fh.update(1, 0)
        fh.clear()
        assert fh.value == 0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            FoldedHistory(8, 0)


class TestFoldedHistorySet:
    """The incremental fold registers against the on-demand reference.

    ``FoldedHistorySet`` and ``tagged_index``/``tagged_tag``'s fallback path
    must be bit-identical by construction (XOR-folding is linear in the
    history bits); these properties enforce it over randomized sequences of
    outcome pushes, path pushes, snapshots and restores.
    """

    @staticmethod
    def _reference_folds(hset, idx_pairs, tag_pairs):
        """On-demand folds of the raw registers (the pre-existing slow path)."""
        branch = hset.branch.value()
        path = hset.path.value()
        idx = {}
        for length, width in idx_pairs:
            h = fold_bits(branch & mask(length), length, width)
            p = fold_bits(
                path & mask(min(length, PATH_FOLD_BITS)), PATH_FOLD_BITS, width
            )
            idx[fold_key(length, width)] = h ^ p
        tag = {}
        for length, width in tag_pairs:
            h = fold_bits(branch & mask(length), length, width)
            if width > 1:
                h ^= fold_bits(branch & mask(length), length, width - 1) << 1
            tag[fold_key(length, width)] = h
        return idx, tag

    _pairs = st.lists(
        st.tuples(st.integers(1, 64), st.integers(1, 12)),
        min_size=1,
        max_size=4,
    )
    _ops = st.lists(
        st.one_of(
            st.tuples(st.just("outcome"), st.booleans()),
            st.tuples(st.just("path"), st.integers(0, 0xFFFF)),
            st.tuples(st.just("snap"), st.just(0)),
            st.tuples(st.just("restore"), st.integers(0, 9)),
        ),
        max_size=60,
    )

    @settings(max_examples=60, deadline=None)
    @given(idx_pairs=_pairs, tag_pairs=_pairs, ops=_ops)
    def test_incremental_folds_match_reference(self, idx_pairs, tag_pairs, ops):
        hset = FoldedHistorySet(640, 64, idx_pairs, tag_pairs)
        snaps = []
        for kind, arg in ops:
            if kind == "outcome":
                hset.push_outcome(arg)
            elif kind == "path":
                hset.push_path(arg)
            elif kind == "snap":
                snaps.append(hset.snapshot())
            elif snaps:
                hset.restore(snaps[arg % len(snaps)])
            state = hset.state()
            ref_idx, ref_tag = self._reference_folds(hset, idx_pairs, tag_pairs)
            assert state.branch == hset.branch.value()
            assert state.path == hset.path.value()
            assert state.idx_folds == ref_idx
            assert state.tag_folds == ref_tag

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=_pairs,
        outcomes=st.lists(st.booleans(), max_size=80),
        targets=st.lists(st.integers(0, 0xFFFF), max_size=40),
        key=st.integers(0, 0xFFFF_FFFF),
    )
    def test_tagged_hashes_agree_with_plain_history(
        self, pairs, outcomes, targets, key
    ):
        """``tagged_index``/``tagged_tag`` produce the same hash whether fed
        a FoldedHistoryState (fast path) or a plain HistoryState (fallback)."""
        hset = FoldedHistorySet(640, 64, pairs, pairs)
        for taken in outcomes:
            hset.push_outcome(taken)
        for target in targets:
            hset.push_path(target)
        fast = hset.state()
        slow = HistoryState(branch=fast.branch, path=fast.path)
        for length, width in pairs:
            assert tagged_index(key, fast, length, width) == tagged_index(
                key, slow, length, width
            )
            assert tagged_tag(key, fast, length, width) == tagged_tag(
                key, slow, length, width
            )

    def test_state_cached_between_pushes(self):
        hset = FoldedHistorySet(64, 16, [(8, 4)], [(8, 4)])
        hset.push_outcome(True)
        s1 = hset.state()
        assert hset.state() is s1          # no push: same immutable snapshot
        hset.push_outcome(False)
        assert hset.state() is not s1      # push invalidates the cache

    def test_restore_invalidates_state(self):
        hset = FoldedHistorySet(64, 16, [(8, 4)], [])
        snap = hset.snapshot()
        hset.push_outcome(True)
        before = hset.state()
        hset.restore(snap)
        after = hset.state()
        assert after is not before
        assert after.idx_folds == {fold_key(8, 4): 0}

    def test_width_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FoldedHistorySet(64, 16, [(8, 0)], [])
        with pytest.raises(ValueError):
            FoldedHistorySet(64, 16, [], [(8, 128)])
