"""Tests for the observability layer (registry, trace, CPI stacks, merge)."""

import json
import re

import pytest

import repro.exec as rexec
import repro.obs as obs
from repro.obs import (
    CPI_COMPONENTS,
    CPIStack,
    CPIStackCollector,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    TraceBuffer,
    prometheus_name,
)
from repro.pipeline.stats import SimStats
from repro.eval.runner import (
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_instr_vp,
)

UOPS, WARMUP = 8_000, 2_000


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off."""
    obs.disable()
    rexec.reset()
    yield
    obs.disable()
    rexec.reset()


# ---------------------------------------------------------------------------
# Metrics registry.
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("a/b")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("a/b") == 5
        assert reg.counter("a/b") is c

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("occ")
        for v in (0, 1, 2, 5, 32):
            h.observe(v)
        assert h.count == 5
        assert h.min == 0 and h.max == 32
        assert h.mean == pytest.approx(8.0)
        snap = reg.snapshot()
        assert snap["occ/count"] == 5
        assert snap["occ/sum"] == 40
        assert snap["occ/bucket/le_2^0"] == 2     # 0 and 1
        assert snap["occ/bucket/le_2^1"] == 1     # 2
        assert snap["occ/bucket/le_2^3"] == 1     # 5
        assert snap["occ/bucket/le_2^5"] == 1     # 32

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("occ")
        assert reg.snapshot() == {"occ/count": 0}

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_disabled_registry_allocates_nothing(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_METRIC
        assert reg.gauge("b") is NULL_METRIC
        assert reg.histogram("c") is NULL_METRIC
        reg.counter("a").inc(100)
        reg.histogram("c").observe(5)
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == ["a", "z"]

    def test_tree(self):
        reg = MetricsRegistry()
        reg.counter("exec/cache/hits").inc(3)
        reg.counter("exec/job/count").inc(2)
        assert reg.tree() == {"exec": {"cache": {"hits": 3},
                                       "job": {"count": 2}}}

    def test_merge_sums_counters(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        reg.merge({"n": 10, "m": 2})
        reg.merge({"m": 3})
        assert reg.value("n") == 11
        assert reg.value("m") == 5

    def test_merge_extrema(self):
        reg = MetricsRegistry()
        reg.merge({"occ/min": 4, "occ/max": 9})
        reg.merge({"occ/min": 2, "occ/max": 7})
        assert reg.value("occ/min") == 2
        assert reg.value("occ/max") == 9

    def test_merge_first_extremum_overwrites_default(self):
        # A fresh Gauge holds 0.0; the first merged */min must not lose to it.
        reg = MetricsRegistry()
        reg.merge({"occ/min": 5})
        assert reg.value("occ/min") == 5

    def test_merge_order_independent_for_ints(self):
        snaps = [{"n": 3, "occ/min": 2}, {"n": 4, "occ/min": 7},
                 {"n": 1, "occ/min": 5}]
        a, b = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            a.merge(s)
        for s in reversed(snaps):
            b.merge(s)
        assert a.snapshot() == b.snapshot()

    def test_merge_into_disabled_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.merge({"n": 5})
        assert len(reg) == 0

    def test_merge_empty_registry_and_empty_snapshot(self):
        # Both degenerate directions: an empty snapshot into a populated
        # registry is a no-op, and any snapshot into a fresh registry
        # reproduces it exactly.
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.merge({})
        assert reg.snapshot() == {"n": 3}
        fresh = MetricsRegistry()
        fresh.merge(reg.snapshot())
        assert fresh.snapshot() == reg.snapshot()

    def test_merge_bucket_boundary_mismatch_raises(self):
        # A worker built with different histogram bucketing must be
        # rejected, not silently summed into the wrong buckets.
        reg = MetricsRegistry()
        for bad in ("occ/bucket/le_10", "occ/bucket/le_2^x",
                    "occ/bucket/2^3", "occ/bucket/le_2^3.5"):
            with pytest.raises(ValueError, match="bucket boundary mismatch"):
                reg.merge({bad: 1})
        # The power-of-two key scheme itself still merges (summing).
        reg.merge({"occ/bucket/le_2^3": 2, "occ/count": 2, "occ/sum": 10})
        reg.merge({"occ/bucket/le_2^3": 1, "occ/count": 1, "occ/sum": 5})
        assert reg.value("occ/bucket/le_2^3") == 3
        assert reg.value("occ/count") == 3
        assert reg.value("occ/sum") == 15

    def test_merge_kind_collision_across_registries_raises(self):
        # merge() routes ``*/min``/``*/max`` keys through Gauge extremum
        # semantics and everything else through Counter summing; a name
        # already registered as the other kind must hit the registry's
        # kind guard, not silently corrupt the metric.
        reg = MetricsRegistry()
        reg.counter("lat/min").inc(1)
        with pytest.raises(TypeError, match="already registered"):
            reg.merge({"lat/min": 4})
        reg = MetricsRegistry()
        reg.gauge("jobs").set(2)
        with pytest.raises(TypeError, match="already registered"):
            reg.merge({"jobs": 4})

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.reset()
        assert reg.snapshot() == {}


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------

#: One sample line of the text exposition format v0.0.4 (as this registry
#: emits it: no labels except the histogram ``le``, no timestamps).
_PROM_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{le="[^"]+"\})? '
    r'(?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf|NaN))$'
)


def _check_exposition(text):
    """Validate every line; returns the set of family names."""
    families = set()
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _PROM_SAMPLE.match(line), f"bad exposition line: {line!r}"
        families.add(line.split("{")[0].split(" ")[0])
    return families


class TestPrometheusExposition:
    def test_name_sanitization(self):
        assert prometheus_name("exec/cache/hits") == "repro_exec_cache_hits"
        assert prometheus_name("a-b.c d", prefix="x_") == "x_a_b_c_d"

    def test_counter_gauge_and_histogram_families(self):
        reg = MetricsRegistry()
        reg.counter("serve/requests").inc(7)
        reg.gauge("pool/depth").set(3)
        h = reg.histogram("lat_ms")
        for v in (0.5, 1, 2, 5, 32):
            h.observe(v)
        text = reg.to_prometheus()
        families = _check_exposition(text)
        assert "repro_serve_requests" in families
        assert "repro_pool_depth" in families
        assert {"repro_lat_ms_bucket", "repro_lat_ms_sum",
                "repro_lat_ms_count", "repro_lat_ms_min",
                "repro_lat_ms_max"} <= families
        # One HELP/TYPE pair per family, no duplicates.
        types = [l for l in text.splitlines() if l.startswith("# TYPE ")]
        assert len(types) == len(set(types))
        assert "# TYPE repro_lat_ms histogram" in types

    def test_histogram_buckets_cumulative_to_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("occ")
        for v in (0, 1, 2, 5, 32):
            h.observe(v)
        lines = reg.to_prometheus().splitlines()
        buckets = [l for l in lines if '_bucket{le="' in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1].startswith('repro_occ_bucket{le="+Inf"}')
        assert counts[-1] == 5
        assert "repro_occ_count 5" in lines
        assert "repro_occ_sum 40" in lines

    def test_exclude_skips_raw_names(self):
        reg = MetricsRegistry()
        reg.counter("serve/requests").inc(1)
        reg.counter("obs/other").inc(2)
        text = reg.to_prometheus(exclude=frozenset({"serve/requests"}))
        families = _check_exposition(text)
        assert "repro_serve_requests" not in families
        assert "repro_obs_other" in families

    def test_sanitize_collision_first_wins(self):
        reg = MetricsRegistry()
        reg.counter("a/b").inc(1)
        reg.counter("a.b").inc(9)
        text = reg.to_prometheus()
        # "a.b" sorts before "a/b"; exactly one family may survive.
        assert text.count("# TYPE repro_a_b counter") == 1
        assert "repro_a_b 9" in text.splitlines()

    def test_empty_registry_is_empty_exposition(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_non_finite_values(self):
        reg = MetricsRegistry()
        reg.gauge("weird").set(float("inf"))
        text = reg.to_prometheus()
        assert "repro_weird +Inf" in text.splitlines()
        _check_exposition(text)


# ---------------------------------------------------------------------------
# Trace buffer.
# ---------------------------------------------------------------------------

class TestTraceBuffer:
    def test_emit_and_filter(self):
        buf = TraceBuffer(capacity=8)
        buf.emit("a", x=1)
        buf.emit("b")
        buf.emit("a", x=2)
        assert len(buf) == 3
        assert [e["x"] for e in buf.events("a")] == [1, 2]
        assert all("ts" in e for e in buf.events())

    def test_ring_bound_and_dropped(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.emit("e", i=i)
        assert len(buf) == 4
        assert buf.dropped == 6
        assert [e["i"] for e in buf.events()] == [6, 7, 8, 9]

    def test_span_records_duration_and_fields(self):
        clock_values = iter([1.0, 3.5, 3.5])  # t0, span end, event ts
        buf = TraceBuffer(clock=lambda: next(clock_values))
        with buf.span("work", label="x") as span:
            span["items"] = 7
        (event,) = buf.events("span")
        assert event["name"] == "work"
        assert event["seconds"] == pytest.approx(2.5)
        assert event["label"] == "x" and event["items"] == 7

    def test_disabled_buffer_records_nothing(self):
        buf = TraceBuffer(enabled=False)
        buf.emit("a")
        with buf.span("s"):
            pass
        assert len(buf) == 0

    def test_jsonl_roundtrip(self, tmp_path):
        buf = TraceBuffer()
        buf.emit("a", n=1)
        buf.emit("b", n=2)
        lines = buf.to_jsonl().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["a", "b"]
        path = tmp_path / "trace.jsonl"
        written = buf.export_jsonl(path, header={"kind": "metrics", "m": 3})
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert written == 3
        assert records[0] == {"kind": "metrics", "m": 3}
        assert records[1]["n"] == 1

    def test_overflow_evicts_oldest_first_exactly(self):
        """The ring keeps the newest ``capacity`` events in emit order; the
        eviction front never reorders survivors."""
        buf = TraceBuffer(capacity=3)
        for i in range(7):
            buf.emit("e", i=i)
            kept = [e["i"] for e in buf.events()]
            assert kept == list(range(max(0, i - 2), i + 1))
        assert buf.dropped == 4
        assert buf.emitted == 7

    def test_dropped_counter_survives_further_reads(self):
        buf = TraceBuffer(capacity=2)
        for i in range(5):
            buf.emit("e", i=i)
        assert buf.dropped == 3
        buf.events()       # reading must not consume or reset anything
        assert buf.dropped == 3
        buf.clear()
        assert buf.dropped == 0 and buf.emitted == 0

    def test_export_after_overflow_writes_survivors_plus_header(self, tmp_path):
        """Header round-trip under overflow: the file holds the header plus
        exactly the surviving (newest) events, oldest first."""
        buf = TraceBuffer(capacity=4)
        for i in range(9):
            buf.emit("e", i=i)
        path = tmp_path / "overflow.jsonl"
        header = {"kind": "metrics", "dropped": buf.dropped}
        written = buf.export_jsonl(path, header=header)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert written == len(records) == 5
        assert records[0] == {"kind": "metrics", "dropped": 5}
        assert [r["i"] for r in records[1:]] == [5, 6, 7, 8]

    def test_export_without_header_has_no_header_record(self, tmp_path):
        buf = TraceBuffer(capacity=4)
        buf.emit("a", i=0)
        path = tmp_path / "plain.jsonl"
        assert buf.export_jsonl(path) == 1
        (record,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert record["kind"] == "a"


# ---------------------------------------------------------------------------
# Module-level current registry/trace + scoping.
# ---------------------------------------------------------------------------

class TestObsModule:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.counter("x") is NULL_METRIC

    def test_enable_disable(self):
        obs.enable()
        assert obs.enabled()
        obs.counter("x").inc()
        assert obs.registry().value("x") == 1
        obs.trace().emit("e")
        assert len(obs.trace()) == 1
        obs.disable()
        assert not obs.enabled()
        assert obs.counter("x") is NULL_METRIC

    def test_enable_starts_clean(self):
        obs.enable()
        obs.counter("x").inc()
        obs.enable()
        assert obs.registry().snapshot() == {}

    def test_scoped_registry(self):
        obs.enable()
        obs.counter("outer").inc()
        with obs.scoped_registry() as inner:
            obs.counter("inner").inc()
            assert obs.registry() is inner
        assert "inner" not in obs.registry()
        assert obs.registry().value("outer") == 1


# ---------------------------------------------------------------------------
# CPI stacks.
# ---------------------------------------------------------------------------

def _stack_for(workload: str, config: str) -> tuple[CPIStack, SimStats]:
    trace = get_trace(workload, UOPS)
    collector = CPIStackCollector()
    if config == "baseline":
        stats = run_baseline(trace, WARMUP, cpi=collector)
    elif config == "instr_vp":
        stats = run_instr_vp(trace, make_instr_predictor("d-vtage"), WARMUP,
                             cpi=collector)
    else:  # bebop
        stats = run_bebop_eole(trace, make_bebop_engine(), WARMUP,
                               cpi=collector)
    return collector.stack, stats


class TestCPIStack:
    # One representative per workload behaviour class: FP/fu-bound (swim),
    # memory-bound (mcf), branch-misprediction-bound (gobmk), front-end /
    # mixed integer (gcc), loop-regular (libquantum), store-heavy (vortex).
    WORKLOADS = ("swim", "mcf", "gobmk", "gcc", "libquantum", "vortex")

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("config", ("baseline", "instr_vp", "bebop"))
    def test_stack_sums_exactly_to_cycles(self, workload, config):
        stack, stats = _stack_for(workload, config)
        assert stack.cycles == stats.cycles
        assert sum(stack.components.values()) == stats.cycles
        stack.check()  # must not raise
        assert set(stack.components) == set(CPI_COMPONENTS)
        assert all(v >= 0 for v in stack.components.values())

    def test_attribution_matches_workload_character(self):
        mcf, _ = _stack_for("mcf", "baseline")
        assert mcf.fraction("memory") > 0.5
        gobmk, _ = _stack_for("gobmk", "baseline")
        assert gobmk.fraction("branch_redirect") > 0.5
        swim, _ = _stack_for("swim", "baseline")
        assert swim.fraction("fu") > 0.5

    def test_collector_is_invisible_to_results(self):
        trace = get_trace("swim", UOPS)
        plain = run_baseline(trace, WARMUP)
        observed = run_baseline(trace, WARMUP, cpi=CPIStackCollector())
        assert plain == observed

    def test_obs_enabled_run_bit_identical(self):
        trace = get_trace("gcc", UOPS)
        plain = run_bebop_eole(trace, make_bebop_engine(), WARMUP)
        obs.enable()
        observed = run_bebop_eole(trace, make_bebop_engine(), WARMUP,
                                  cpi=CPIStackCollector())
        assert len(obs.registry()) > 0  # the engine really recorded metrics
        obs.disable()
        assert plain == observed

    def test_check_raises_on_mismatch(self):
        stack = CPIStack(cycles=10, insts=5)
        stack.components["base"] = 9
        with pytest.raises(AssertionError, match="sums to 9"):
            stack.check()

    def test_finish_pads_clamped_cycles_into_base(self):
        # A run whose measured window committed nothing still reports
        # cycles=1 (the max(1, .) clamp); the stack must absorb it.
        collector = CPIStackCollector()
        stack = collector.finish(SimStats(cycles=1, insts=0))
        assert stack.components["base"] == 1
        stack.check()

    def test_fractions_and_cpi(self):
        stack, stats = _stack_for("swim", "baseline")
        assert sum(stack.fraction(c) for c in CPI_COMPONENTS) == pytest.approx(1.0)
        assert stack.cpi == pytest.approx(stats.cycles / stats.insts)
        assert sum(stack.cpi_of(c) for c in CPI_COMPONENTS) == pytest.approx(stack.cpi)

    def test_as_dict_component_order(self):
        stack, _ = _stack_for("swim", "baseline")
        d = stack.as_dict()
        assert tuple(d["components"]) == CPI_COMPONENTS
        assert d["cycles"] == stack.cycles


# ---------------------------------------------------------------------------
# SimStats: metrics attachment.
# ---------------------------------------------------------------------------

class TestSimStatsMetrics:
    def test_attach_metrics_does_not_affect_equality(self):
        a, b = SimStats(cycles=10), SimStats(cycles=10)
        a.attach_metrics({"bebop/spec_window/uses": 5})
        assert a == b
        assert a.metrics == {"bebop/spec_window/uses": 5}
        assert b.metrics == {}


# ---------------------------------------------------------------------------
# Worker-process metric merge (scheduler integration).
# ---------------------------------------------------------------------------

def _sweep_specs():
    specs = [rexec.baseline_job(w, UOPS, WARMUP) for w in ("swim", "gcc")]
    specs.append(rexec.bebop_job("gobmk", uops=UOPS, warmup=WARMUP))
    specs.append(rexec.instr_vp_job("mcf", "d-vtage", UOPS, WARMUP))
    return specs


def _run_observed(jobs: int):
    obs.enable()
    rexec.configure(jobs=jobs)
    results = rexec.run_specs(_sweep_specs(), label=f"obs-{jobs}")
    snapshot = obs.registry().snapshot()
    kinds = [e["kind"] for e in obs.trace().events()]
    obs.disable()
    rexec.reset()
    return results, snapshot, kinds


class TestWorkerMetricMerge:
    def test_parallel_merge_matches_serial(self):
        r1, s1, k1 = _run_observed(jobs=1)
        r2, s2, k2 = _run_observed(jobs=2)
        # Results are bit-identical regardless of worker count...
        assert r1 == r2
        # ...and so is every integer-valued metric (float ones — wall-clock
        # seconds, histogram sums over floats — legitimately differ).
        ints1 = {k: v for k, v in s1.items() if isinstance(v, int)}
        ints2 = {k: v for k, v in s2.items() if isinstance(v, int)}
        assert ints1 == ints2
        assert ints1["exec/job/count"] == 4
        # The BeBoP cell's engine metrics made it back from the worker.
        assert ints1["bebop/spec_window/occupancy/count"] > 0
        # Both modes traced one event per job plus the batch span.
        assert k1.count("exec/job") == 4 and k2.count("exec/job") == 4
        assert k1.count("span") == 1 and k2.count("span") == 1

    def test_batch_span_counts_cache_hits(self, tmp_path):
        obs.enable()
        cache = rexec.ResultCache(root=tmp_path)
        rexec.configure(cache=cache)
        specs = [rexec.baseline_job("swim", UOPS, WARMUP)]
        rexec.run_specs(specs, label="cold")
        rexec.run_specs(specs, label="warm")
        spans = obs.trace().events("span")
        assert [s["computed"] for s in spans] == [1, 0]
        assert [s["cached"] for s in spans] == [0, 1]
        snap = obs.registry().snapshot()
        assert snap["exec/cache/misses"] == 1
        assert snap["exec/cache/hits"] == 1
        assert snap["exec/cache/stores"] == 1

    def test_experiment_meta_carries_metrics_snapshot(self):
        from repro.eval import experiments
        from repro.eval.runner import RunSpec
        tiny = RunSpec(uops=6_000, warmup=1_000, workloads=("swim",))
        obs.enable()
        r = experiments.table2_ipc(tiny)
        obs.disable()
        assert r.meta["metrics"]["exec/job/count"] == 1
        plain = experiments.table2_ipc(tiny)
        assert "metrics" not in plain.meta
        assert r == plain  # meta (including metrics) never affects equality

    def test_disabled_obs_adds_no_metrics(self, tmp_path):
        cache = rexec.ResultCache(root=tmp_path)
        rexec.configure(cache=cache)
        rexec.run_specs([rexec.baseline_job("swim", UOPS, WARMUP)])
        assert len(obs.registry()) == 0
        assert len(obs.trace()) == 0
        # The cache's own instance counters still work without obs.
        assert cache.misses == 1 and cache.stores == 1
