"""Predictor-level batched-step parity.

``batch_step`` runs one predict-then-train step for N variants over a
variant-stacked bank; these tests pin it bit-identical — predictions and
final table state — to N independently constructed scalar predictors fed
the same stream, on both storage backends.  The python stacked path is
the authoritative loop-of-banks transcription; the numpy path vectorizes
over the variant axis and must not be distinguishable from it.
"""

import pytest

from repro.bebop.predictor import BlockDVTAGE, BlockDVTAGEConfig
from repro.common.rng import XorShift64
from repro.common.tables import make_bank, numpy_available
from repro.predictors.base import HistoryState
from repro.predictors.confidence import FPCPolicy
from repro.predictors.last_value import (
    TABLE_FIELDS as LVP_FIELDS,
    LastValuePredictor,
)
from repro.predictors.stride import (
    TABLE_FIELDS as STRIDE_FIELDS,
    StridePredictor,
    TwoDeltaStridePredictor,
)

BACKENDS = [
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not numpy_available(), reason="numpy backend not installed")),
]

N = 4
ENTRIES = 256
HIST = HistoryState(0, 0)
U64 = (1 << 64) - 1


def _steps(n, seed=7):
    """A (pc, uop_index, actual) stream mixing repeats, strides and noise.

    Small tables + 24 PCs force tag conflicts and entry stealing; the
    value modes exercise last-value hits, stride chains, wild values and
    the top bit (unsigned-column masking).
    """
    rng = XorShift64(seed)
    pcs = [0x40_0000 + 4 * i for i in range(24)]
    last = {}
    out = []
    for _ in range(n):
        pc = pcs[rng.next_below(len(pcs))]
        uop = rng.next_below(4)
        key = (pc, uop)
        mode = rng.next_below(4)
        if mode == 0:
            actual = last.get(key, 0)
        elif mode == 1:
            actual = (last.get(key, 0) + 8) & U64
        elif mode == 2:
            actual = rng.next_u64()
        else:
            actual = (1 << 63) | rng.next_bits(8)
        last[key] = actual
        out.append((pc, uop, actual))
    return out


def _pkey(pred):
    return (
        None
        if pred is None
        else (pred.value, pred.confident, pred.provider, pred.conf)
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_last_value_batch_step_parity(backend):
    refs = [
        LastValuePredictor(
            entries=ENTRIES,
            fpc=FPCPolicy(seed=0xF9C + v),
            table_backend=backend,
        )
        for v in range(N)
    ]
    bank = make_bank(ENTRIES, LVP_FIELDS, backend=backend, variants=N)
    fpcs = [FPCPolicy(seed=0xF9C + v) for v in range(N)]
    for pc, uop, actual in _steps(3000):
        want = []
        for ref in refs:
            pred = ref.predict(pc, uop, HIST)
            ref.train(pc, uop, HIST, actual, pred)
            want.append(pred)
        got = LastValuePredictor.batch_step(bank, fpcs, pc, uop, actual)
        assert [_pkey(p) for p in got] == [_pkey(p) for p in want]
    assert bank.dump() == [ref._table.dump() for ref in refs]


@pytest.mark.parametrize("cls", [StridePredictor, TwoDeltaStridePredictor])
@pytest.mark.parametrize("backend", BACKENDS)
def test_stride_batch_step_parity(cls, backend):
    refs = [
        cls(
            entries=ENTRIES,
            fpc=FPCPolicy(seed=0xF9C + v),
            table_backend=backend,
        )
        for v in range(N)
    ]
    bank = make_bank(ENTRIES, STRIDE_FIELDS, backend=backend, variants=N)
    fpcs = [FPCPolicy(seed=0xF9C + v) for v in range(N)]
    for pc, uop, actual in _steps(3000):
        want = []
        for ref in refs:
            pred = ref.predict(pc, uop, HIST)
            ref.train(pc, uop, HIST, actual, pred)
            want.append(pred)
        got = cls.batch_step(bank, fpcs, pc, uop, actual)
        assert [_pkey(p) for p in got] == [_pkey(p) for p in want]
    assert bank.dump() == [ref._table.dump() for ref in refs]


def test_batch_step_requires_stacked_bank():
    bank = make_bank(ENTRIES, LVP_FIELDS, backend="python")
    with pytest.raises(ValueError, match="variant-stacked"):
        LastValuePredictor.batch_step(bank, [FPCPolicy()], 0x400, 0, 1)


# ---------------------------------------------------------------------------
# BlockDVTAGE: stacked views driving the scalar read/compose/update path
# ---------------------------------------------------------------------------

def _dvtage_stream(n, seed=11):
    """(block_pc, hist, retired) instances over a working set of blocks."""
    rng = XorShift64(seed)
    blocks = [0x40_0000 + 0x40 * i for i in range(12)]
    vals = {}
    out = []
    for _ in range(n):
        block = blocks[rng.next_below(len(blocks))]
        hist = HistoryState(rng.next_bits(24), rng.next_bits(12))
        retired = []
        used = set()
        for _ in range(rng.next_below(3) + 1):
            boundary = rng.next_below(16)
            if boundary in used:
                continue
            used.add(boundary)
            prev = vals.setdefault((block, boundary), rng.next_bits(16))
            vals[(block, boundary)] = (prev + 8) & U64
            retired.append((boundary, vals[(block, boundary)]))
        retired.sort()
        out.append((block, hist, retired))
    return out


@pytest.mark.parametrize("backend", BACKENDS)
def test_dvtage_batch_stack_parity(backend):
    configs = [
        BlockDVTAGEConfig(),
        BlockDVTAGEConfig(propagate_confidence=False),
        BlockDVTAGEConfig(monotonic_byte_tags=False),
        BlockDVTAGEConfig(max_history=32),
    ]
    refs = [BlockDVTAGE(config=c, table_backend=backend) for c in configs]
    batch, (lvt, vt0, tagged) = BlockDVTAGE.batch_stack(
        configs, table_backend=backend
    )
    assert lvt.variants == len(configs)
    for block, hist, retired in _dvtage_stream(600):
        want = []
        for ref in refs:
            readout = ref.read(block, hist)
            ref.compose(readout, readout.lvt_last)
            want.append((readout.values, ref.update(readout, retired)))
        got = BlockDVTAGE.batch_step(
            batch, block, [hist] * len(batch), retired
        )
        for v in range(len(refs)):
            assert got[v][0].values == want[v][0]
            assert got[v][1] == want[v][1]
    for v, ref in enumerate(refs):
        assert lvt.view(v).dump() == ref._lvt.dump()
        assert vt0.view(v).dump() == ref._vt0.dump()
        assert tagged.view(v).dump() == ref._tagged.dump()


def test_batch_stack_rejects_shape_mismatch():
    with pytest.raises(ValueError, match="bank shapes"):
        BlockDVTAGE.batch_stack(
            [BlockDVTAGEConfig(), BlockDVTAGEConfig(npred=4)]
        )
    with pytest.raises(ValueError, match="at least one"):
        BlockDVTAGE.batch_stack([])


def test_injected_banks_must_match_geometry():
    _preds, stacks = BlockDVTAGE.batch_stack([None, None])
    with pytest.raises(ValueError, match="geometry"):
        BlockDVTAGE(
            config=BlockDVTAGEConfig(base_entries=1024),
            banks=tuple(stack.view(0) for stack in stacks),
        )
