"""End-to-end bit-identity of simulation statistics against golden records.

``tests/data/golden_stats.json`` holds the full :class:`SimStats` of nine
representative configurations (baseline, instruction-based VP flavours, EOLE
and BeBoP/EOLE, over gcc and swim traces), captured from the tree *before*
the incremental-folded-history and bounded-machine-state optimisations
landed.  The optimisations are pure performance work: every statistic must
stay bit-for-bit identical.  Any intentional model change that legitimately
shifts these numbers must regenerate the golden file and say why in the
commit message.

The suite is parametrized over every available
:mod:`repro.common.tables` storage backend: the columnar python lists and
the numpy arrays must reproduce the same golden statistics bit for bit —
that equality is the contract that makes the backend a pure performance
knob (and lets the result cache ignore it).

Regenerate with::

    PYTHONPATH=src python examples/capture_golden_stats.py
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.eval.runner import (
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_eole_instr_vp,
    run_instr_vp,
)
from repro.common.tables import numpy_available, use_table_backend
from repro.predictors.perpath import PerPathStridePredictor

_GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"
_GOLDEN = json.loads(_GOLDEN_PATH.read_text())

BACKENDS = [
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not numpy_available(), reason="numpy backend not installed")),
]


def _run(key: str):
    workload, config = key.split("/")
    trace = get_trace(workload, _GOLDEN["uops"])
    warmup = _GOLDEN["warmup"]
    if config == "baseline":
        return run_baseline(trace, warmup)
    if config == "dvtage":
        return run_instr_vp(trace, make_instr_predictor("d-vtage"), warmup)
    if config == "vtage":
        return run_instr_vp(trace, make_instr_predictor("vtage"), warmup)
    if config == "hybrid":
        return run_instr_vp(trace, make_instr_predictor("vtage-2d-stride"), warmup)
    if config == "perpath":
        return run_instr_vp(trace, PerPathStridePredictor(), warmup)
    if config == "eole-dvtage":
        return run_eole_instr_vp(trace, make_instr_predictor("d-vtage"), warmup)
    if config == "eole-bebop":
        return run_bebop_eole(trace, make_bebop_engine(), warmup)
    raise ValueError(f"unknown golden config {config!r}")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("key", sorted(_GOLDEN["runs"]))
def test_stats_bit_identical_to_golden(key, backend):
    with use_table_backend(backend):
        got = dataclasses.asdict(_run(key))
    want = _GOLDEN["runs"][key]
    assert got == want, (
        f"{key} [{backend}]: simulation statistics diverged from the golden "
        "record — optimisations and table backends must be bit-identical"
    )
