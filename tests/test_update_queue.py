"""Unit tests for the FIFO update queue (paper §III-D-c)."""

import pytest

from repro.bebop.update_queue import FifoUpdateQueue, PendingBlock
from repro.predictors.base import HistoryState


def make_block(seq, block_pc=0x40_0040):
    return PendingBlock(seq, block_pc, HistoryState(), readout=None, values=[0] * 6)


class TestFifoUpdateQueue:
    def test_fifo_order(self):
        q = FifoUpdateQueue()
        a, b = make_block(1), make_block(2)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoUpdateQueue().pop()

    def test_head_tail(self):
        q = FifoUpdateQueue()
        assert q.head() is None and q.tail() is None
        a, b = make_block(1), make_block(2)
        q.push(a)
        q.push(b)
        assert q.head() is a and q.tail() is b

    def test_high_water_mark(self):
        q = FifoUpdateQueue()
        for i in range(5):
            q.push(make_block(i))
        q.pop()
        q.push(make_block(9))
        assert q.high_water_mark == 5
        assert q.pushes == 6

    def test_squash_drops_younger(self):
        q = FifoUpdateQueue()
        for seq in (1, 4, 8):
            q.push(make_block(seq))
        dropped = q.squash(flush_seq=4)
        assert dropped == 1
        assert [b.seq for b in q._queue] == [1, 4]

    def test_squash_drop_equal(self):
        q = FifoUpdateQueue()
        q.push(make_block(4))
        assert q.squash(flush_seq=4, drop_equal=True) == 1
        assert len(q) == 0

    def test_remove_by_identity(self):
        q = FifoUpdateQueue()
        a, b = make_block(1), make_block(2)
        q.push(a)
        q.push(b)
        assert q.remove(a)
        assert not q.remove(a)
        assert q.head() is b

    def test_retired_accumulation(self):
        block = make_block(1)
        block.retired.append((3, 100))
        block.retired.append((7, 200))
        assert block.retired == [(3, 100), (7, 200)]
        assert not block.use_masked
