"""Unit tests for the TAGE branch predictor, BTB and RAS."""

import pytest

from repro.branch import BranchTargetBuffer, ReturnAddressStack, TAGEBranchPredictor
from repro.predictors.base import HistoryState

PC = 0x40_0100


def drive_tage(pattern_fn, n=4000, pc=PC):
    """Feed a direction pattern; return accuracy over the second half."""
    tage = TAGEBranchPredictor()
    hist_bits = 0
    correct = total = 0
    for i in range(n):
        taken = pattern_fn(i, hist_bits)
        hist = HistoryState(hist_bits, 0)
        pred, meta = tage.predict(pc, hist)
        if i >= n // 2:
            total += 1
            correct += pred == taken
        tage.train(pc, hist, taken, meta)
        hist_bits = ((hist_bits << 1) | taken) & ((1 << 640) - 1)
    return correct / total


class TestTAGE:
    def test_always_taken(self):
        assert drive_tage(lambda i, h: True) > 0.99

    def test_always_not_taken(self):
        assert drive_tage(lambda i, h: False) > 0.99

    def test_short_period(self):
        assert drive_tage(lambda i, h: i % 2 == 0) > 0.95

    def test_longer_period(self):
        assert drive_tage(lambda i, h: i % 7 == 0) > 0.9

    def test_long_period_needs_history(self):
        # Period-32 patterns exceed bimodal but fit TAGE's histories.
        assert drive_tage(lambda i, h: i % 32 == 0) > 0.9

    def test_random_pattern_roughly_half(self):
        from repro.common.rng import XorShift64

        rng = XorShift64(5)
        outcomes = [bool(rng.next_bits(1)) for _ in range(4000)]
        acc = drive_tage(lambda i, h: outcomes[i])
        assert acc < 0.75  # cannot learn true randomness

    def test_history_lengths_geometric(self):
        tage = TAGEBranchPredictor(components=12, min_history=8, max_history=640)
        lengths = tage.history_lengths
        assert lengths[0] == 8
        assert lengths[-1] == 640
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    def test_storage_reasonable(self):
        tage = TAGEBranchPredictor()
        kb = tage.storage_bits() / 8 / 1000
        assert 10 < kb < 64  # paper's is ~32KB

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            TAGEBranchPredictor(bimodal_entries=1000)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        assert btb.lookup(PC) is None
        btb.install(PC, 0x1234)
        assert btb.lookup(PC) == 0x1234

    def test_update_existing(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.install(PC, 1)
        btb.install(PC, 2)
        assert btb.lookup(PC) == 2

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(entries=4, ways=2)  # 2 sets
        sets = btb.sets
        # Three PCs in the same set: the least recently used gets evicted.
        pcs = [PC + 4 * sets * i for i in range(3)]
        btb.install(pcs[0], 10)
        btb.install(pcs[1], 11)
        btb.lookup(pcs[0])          # touch 0 -> 1 becomes LRU
        btb.install(pcs[2], 12)     # evicts 1
        assert btb.lookup(pcs[0]) == 10
        assert btb.lookup(pcs[1]) is None

    def test_hit_miss_counters(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.lookup(PC)
        btb.install(PC, 5)
        btb.lookup(PC)
        assert btb.misses == 1 and btb.hits == 1

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=63, ways=2)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for v in (1, 2, 3):
            ras.push(v)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek(self):
        ras = ReturnAddressStack()
        assert ras.peek() is None
        ras.push(9)
        assert ras.peek() == 9
        assert len(ras) == 1

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)
