"""Unit and behavioural tests for the pipeline timing model."""

import pytest

from repro.isa import BasicBlock, Opcode, Program, StaticInst
from repro.pipeline import BASELINE_6_60, PipelineModel, baseline_vp_6_60, eole_4_60
from repro.pipeline.core import group_block_instances
from repro.pipeline.vp import InstructionVPAdapter
from repro.predictors import DVTAGEPredictor
from repro.workloads import generate_trace
from repro.workloads.kernels import (
    build_pointer_chase_kernel,
    build_random_kernel,
    build_strided_kernel,
)


def _li(rd, imm, length=4):
    return StaticInst(Opcode.LI, dests=(rd,), imm=imm, length=length)


def straightline_program(n_adds=20):
    b = BasicBlock("entry")
    b.add(_li(1, 1))
    for _ in range(n_adds):
        b.add(StaticInst(Opcode.ADDI, dests=(2,), srcs=(2,), imm=1, length=4))
    return Program([b])


def serial_chain_program(n=30, op=Opcode.FADD):
    b = BasicBlock("entry")
    b.add(_li(17, 1))
    b.add(_li(18, 2))
    for _ in range(n):
        b.add(StaticInst(op, dests=(17,), srcs=(17, 18), length=4))
    return Program([b])


class TestGrouping:
    def test_groups_cover_trace(self):
        kr = build_strided_kernel(seed=1, trip=8)
        trace = generate_trace(kr.program, 500, init_mem=kr.init_mem)
        groups = group_block_instances(trace.uops)
        assert groups[0][0] == 0
        assert groups[-1][1] == len(trace.uops)
        for (s1, e1), (s2, e2) in zip(groups, groups[1:]):
            assert e1 == s2

    def test_groups_share_block_pc(self):
        kr = build_strided_kernel(seed=1, trip=8)
        trace = generate_trace(kr.program, 500, init_mem=kr.init_mem)
        for s, e in group_block_instances(trace.uops):
            pcs = {u.block_pc for u in trace.uops[s:e]}
            assert len(pcs) == 1

    def test_taken_branch_ends_group(self):
        kr = build_strided_kernel(seed=1, trip=8)
        trace = generate_trace(kr.program, 500, init_mem=kr.init_mem)
        for s, e in group_block_instances(trace.uops):
            for u in trace.uops[s:e - 1]:
                assert not (u.is_branch and u.branch_taken)


class TestTimingBasics:
    def test_empty_trace(self):
        trace = generate_trace(straightline_program(), 0)
        trace.uops = []
        stats = PipelineModel(BASELINE_6_60).run(trace)
        assert stats.cycles == 0

    def test_serial_fp_chain_rate(self):
        """A serial FADD chain must run at ~3 cycles per op."""
        trace = generate_trace(serial_chain_program(40, Opcode.FADD), 1000)
        tl = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=tl)
        completes = [t[3] for t in tl[2:]]  # skip the LIs
        deltas = [b - a for a, b in zip(completes, completes[1:])]
        assert all(d == 3 for d in deltas)

    def test_independent_ops_overlap(self):
        """Independent 1-cycle ops must commit several per cycle in steady
        state (measured via the timeline, past the cold-start I-cache miss)."""
        b = BasicBlock("entry")
        for i in range(512):
            b.add(_li(1 + (i % 8), i))
        trace = generate_trace(Program([b]), 1000)
        tl = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=tl)
        from collections import Counter
        per_cycle = Counter(t[4] for t in tl[256:])
        assert max(per_cycle.values()) >= 4

    def test_issue_width_bounds_throughput(self):
        narrow = BASELINE_6_60.with_(name="narrow", issue_width=1)
        b = BasicBlock("entry")
        for i in range(128):
            b.add(StaticInst(Opcode.ADD, dests=(1 + i % 8,), srcs=(9, 10), length=4))
        trace = generate_trace(Program([b]), 1000)
        wide_stats = PipelineModel(BASELINE_6_60).run(trace)
        narrow_stats = PipelineModel(narrow).run(trace)
        assert narrow_stats.cycles > wide_stats.cycles

    def test_div_not_pipelined(self):
        b = BasicBlock("entry")
        b.add(_li(1, 100))
        b.add(_li(2, 3))
        for i in range(8):
            b.add(StaticInst(Opcode.DIV, dests=(3 + i % 4,), srcs=(1, 2), length=4))
        trace = generate_trace(Program([b]), 100)
        tl = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=tl)
        div_completes = sorted(t[3] for t in tl[2:])
        deltas = [b - a for a, b in zip(div_completes, div_completes[1:])]
        assert all(d >= 25 for d in deltas)

    def test_pointer_chase_serialises(self):
        kr = build_pointer_chase_kernel(seed=3, nodes=512, spread=4096,
                                        noise_period=1 << 20)
        trace = generate_trace(kr.program, 2000, init_mem=kr.init_mem)
        stats = PipelineModel(BASELINE_6_60).run(trace)
        # Each node costs a serialised memory access: IPC far below 1.
        assert stats.ipc < 0.5

    def test_branch_mispredicts_cost_cycles(self):
        kr = build_random_kernel(seed=4, branch_entropy_bits=1)
        trace = generate_trace(kr.program, 5000, init_mem=kr.init_mem)
        stats = PipelineModel(BASELINE_6_60).run(trace)
        assert stats.branch_mispredicts > 100
        assert stats.ipc < 2.0

    def test_commits_in_order(self):
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 2000, init_mem=kr.init_mem)
        tl = []
        PipelineModel(BASELINE_6_60).run(trace, timeline=tl)
        commits = [t[4] for t in tl]
        assert all(b >= a for a, b in zip(commits, commits[1:]))

    def test_commit_width_respected(self):
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 3000, init_mem=kr.init_mem)
        tl = []
        model = PipelineModel(BASELINE_6_60)
        model.run(trace, timeline=tl)
        from collections import Counter
        per_cycle = Counter(t[4] for t in tl)
        assert max(per_cycle.values()) <= BASELINE_6_60.commit_width

    def test_warmup_excluded(self):
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 4000, init_mem=kr.init_mem)
        full = PipelineModel(BASELINE_6_60).run(trace)
        warm = PipelineModel(BASELINE_6_60).run(trace, warmup_uops=2000)
        assert warm.uops < full.uops
        assert warm.cycles < full.cycles

    def test_deterministic(self):
        kr = build_strided_kernel(seed=1, trip=16)
        trace = generate_trace(kr.program, 3000, init_mem=kr.init_mem)
        a = PipelineModel(BASELINE_6_60).run(trace)
        b = PipelineModel(BASELINE_6_60).run(trace)
        assert a.cycles == b.cycles


class TestBoundedMachineState:
    def test_state_peak_independent_of_trace_length(self):
        """The per-run machine state (dispatch/issue/FU/commit occupancy maps,
        store-forwarding windows) is pruned behind the dispatch and commit
        fronts, so its peak size must not grow with the trace length."""
        kr = build_strided_kernel(seed=1, trip=16)

        def peak(n_uops, config=BASELINE_6_60, adapter=None):
            trace = generate_trace(kr.program, n_uops, init_mem=kr.init_mem)
            model = PipelineModel(config, adapter)
            model.run(trace)
            return model.debug_state_peak

        short = peak(12000)
        long = peak(72000)
        assert short > 0
        # 6x the µ-ops must not move the peak beyond prune-interval jitter
        # (unbounded state would grow it roughly 6x).
        assert long <= short * 1.1

    def test_state_peak_bounded_with_vp(self):
        kr = build_strided_kernel(seed=1, trip=16)

        def peak(n_uops):
            trace = generate_trace(kr.program, n_uops, init_mem=kr.init_mem)
            model = PipelineModel(
                baseline_vp_6_60(), InstructionVPAdapter(DVTAGEPredictor())
            )
            model.run(trace)
            return model.debug_state_peak

        assert peak(60000) <= peak(12000) * 1.1


class TestVPIntegration:
    def test_vp_requires_adapter(self):
        with pytest.raises(ValueError):
            PipelineModel(baseline_vp_6_60())

    def test_vp_speeds_up_strided(self):
        kr = build_strided_kernel(seed=1, trip=64, body_fp_ops=6, fp_chains=1)
        trace = generate_trace(kr.program, 60000, init_mem=kr.init_mem)
        base = PipelineModel(BASELINE_6_60).run(trace, warmup_uops=20000)
        vp = PipelineModel(
            baseline_vp_6_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=20000)
        assert vp.ipc > base.ipc * 1.1
        assert vp.vp_accuracy > 0.99

    def test_vp_accuracy_enforced_by_fpc(self):
        """Used predictions must be overwhelmingly correct (paper: >99.5%)."""
        kr = build_strided_kernel(seed=1, trip=64)
        trace = generate_trace(kr.program, 60000, init_mem=kr.init_mem)
        vp = PipelineModel(
            baseline_vp_6_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=20000)
        assert vp.vp_used > 0
        assert vp.vp_accuracy > 0.995

    def test_random_workload_never_predicted(self):
        kr = build_random_kernel(seed=4)
        trace = generate_trace(kr.program, 20000, init_mem=kr.init_mem)
        vp = PipelineModel(
            baseline_vp_6_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=5000)
        assert vp.vp_coverage < 0.05


class TestEOLE:
    def test_eole_reduced_issue_close_to_vp6(self):
        """Fig 5b: EOLE_4_60 must not lose much vs Baseline_VP_6_60."""
        kr = build_strided_kernel(seed=1, trip=64, body_fp_ops=6, fp_chains=2)
        trace = generate_trace(kr.program, 60000, init_mem=kr.init_mem)
        vp6 = PipelineModel(
            baseline_vp_6_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=20000)
        eole4 = PipelineModel(
            eole_4_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=20000)
        assert eole4.ipc > vp6.ipc * 0.9

    def test_eole_counts_early_and_late(self):
        kr = build_strided_kernel(seed=1, trip=64)
        trace = generate_trace(kr.program, 40000, init_mem=kr.init_mem)
        eole = PipelineModel(
            eole_4_60(), InstructionVPAdapter(DVTAGEPredictor())
        ).run(trace, warmup_uops=10000)
        assert eole.early_executed > 0
        assert eole.late_executed > 0

    def test_eole_without_vp_wouldnt_construct(self):
        config = eole_4_60()
        assert config.vp_enabled
        assert config.issue_width == 4
