"""Unit tests for program layout and trace generation."""

import pytest

from repro.isa import BasicBlock, Opcode, Program, StaticInst, int_reg
from repro.isa.program import CODE_BASE_ADDRESS
from repro.workloads.trace import FETCH_BLOCK_BYTES, TraceGenerator, generate_trace


def _li(rd, imm, length=4):
    return StaticInst(Opcode.LI, dests=(rd,), imm=imm, length=length)


def _addi(rd, rs, imm, length=4):
    return StaticInst(Opcode.ADDI, dests=(rd,), srcs=(rs,), imm=imm, length=length)


def _branch(op, a, b, target, length=2):
    return StaticInst(op, srcs=(a, b), target=target, length=length)


def make_counting_loop(trip=5):
    """entry: i=0, n=trip; loop: i+=1; blt i,n,loop  (then halts)."""
    entry = BasicBlock("entry")
    entry.add(_li(1, 0))
    entry.add(_li(2, trip))
    loop = BasicBlock("loop")
    loop.add(_addi(1, 1, 1))
    loop.add(_branch(Opcode.BLT, 1, 2, "loop"))
    return Program([entry, loop])


class TestProgramLayout:
    def test_pcs_sequential(self):
        p = make_counting_loop()
        pcs = [inst.pc for inst in p.insts]
        assert pcs[0] == CODE_BASE_ADDRESS
        for a, b, inst in zip(pcs, pcs[1:], p.insts):
            assert b == a + inst.length

    def test_blocks_rewritten_in_place(self):
        """The laid-out instructions must be visible through block.insts
        (regression: the interpreter once saw pc=-1 copies)."""
        p = make_counting_loop()
        for block in p.blocks:
            for inst in block.insts:
                assert inst.pc >= CODE_BASE_ADDRESS
                assert inst.static_id >= 0

    def test_target_resolution(self):
        p = make_counting_loop()
        branch = p.blocks[1].insts[-1]
        assert p.target_pc(branch) == p.block_start_pc["loop"]

    def test_unknown_target_raises(self):
        b = BasicBlock("b")
        b.add(_branch(Opcode.BEQ, 1, 2, "nowhere"))
        with pytest.raises(ValueError):
            Program([b])

    def test_duplicate_names_raise(self):
        b1, b2 = BasicBlock("x"), BasicBlock("x")
        b1.add(_li(1, 0))
        b2.add(_li(1, 0))
        with pytest.raises(ValueError):
            Program([b1, b2])

    def test_empty_block_raises(self):
        with pytest.raises(ValueError):
            Program([BasicBlock("empty")])

    def test_entry_defaults_to_first(self):
        p = make_counting_loop()
        assert p.entry == "entry"
        assert p.entry_pc == CODE_BASE_ADDRESS

    def test_code_bytes(self):
        p = make_counting_loop()
        assert p.code_bytes() == sum(i.length for i in p.insts)


class TestTraceGenerator:
    def test_loop_executes_trip_times(self):
        p = make_counting_loop(trip=5)
        trace = generate_trace(p, 1000)
        addis = [u for u in trace.uops if u.pc == p.blocks[1].insts[0].pc]
        assert len(addis) == 5
        assert [u.value for u in addis] == [1, 2, 3, 4, 5]

    def test_halts_at_program_end(self):
        p = make_counting_loop(trip=3)
        gen = TraceGenerator(p)
        uops = gen.run(1000)
        assert gen.halted
        assert len(uops) == 2 + 3 * 2  # entry LIs + 3 x (addi, blt)

    def test_branch_outcomes(self):
        p = make_counting_loop(trip=3)
        trace = generate_trace(p, 1000)
        branches = [u for u in trace.uops if u.is_branch]
        assert [b.branch_taken for b in branches] == [True, True, False]
        assert branches[0].branch_target == p.block_start_pc["loop"]

    def test_block_pc_and_boundary(self):
        p = make_counting_loop()
        trace = generate_trace(p, 100)
        for u in trace.uops:
            assert u.block_pc % FETCH_BLOCK_BYTES == 0
            assert 0 <= u.boundary < FETCH_BLOCK_BYTES
            assert u.block_pc + u.boundary == u.pc

    def test_sequence_numbers_monotonic(self):
        p = make_counting_loop()
        trace = generate_trace(p, 100)
        seqs = [u.seq for u in trace.uops]
        assert seqs == list(range(len(seqs)))

    def test_memory_roundtrip(self):
        entry = BasicBlock("entry")
        entry.add(_li(1, 0x2000))       # address
        entry.add(_li(2, 77))           # value
        entry.add(StaticInst(Opcode.STORE, srcs=(1, 2), length=4))
        entry.add(StaticInst(Opcode.LOAD, dests=(3,), srcs=(1,), length=4))
        trace = generate_trace(Program([entry]), 100)
        load = [u for u in trace.uops if u.is_load][0]
        assert load.value == 77
        assert load.mem_addr == 0x2000

    def test_untouched_memory_deterministic(self):
        entry = BasicBlock("entry")
        entry.add(_li(1, 0x3000))
        entry.add(StaticInst(Opcode.LOAD, dests=(2,), srcs=(1,), length=4))
        t1 = generate_trace(Program([entry]), 10)
        entry2 = BasicBlock("entry")
        entry2.add(_li(1, 0x3000))
        entry2.add(StaticInst(Opcode.LOAD, dests=(2,), srcs=(1,), length=4))
        t2 = generate_trace(Program([entry2]), 10)
        l1 = [u for u in t1.uops if u.is_load][0]
        l2 = [u for u in t2.uops if u.is_load][0]
        assert l1.value == l2.value

    def test_init_mem_respected(self):
        entry = BasicBlock("entry")
        entry.add(_li(1, 0x4000))
        entry.add(StaticInst(Opcode.LOAD, dests=(2,), srcs=(1,), length=4))
        trace = generate_trace(Program([entry]), 10, init_mem={0x4000: 123})
        assert [u for u in trace.uops if u.is_load][0].value == 123

    def test_rand_deterministic_per_seed(self):
        entry = BasicBlock("entry")
        entry.add(StaticInst(Opcode.RAND, dests=(1,), length=4))
        v1 = generate_trace(Program([entry]), 10, seed=9).uops[0].value
        entry2 = BasicBlock("entry")
        entry2.add(StaticInst(Opcode.RAND, dests=(1,), length=4))
        v2 = generate_trace(Program([entry2]), 10, seed=9).uops[0].value
        assert v1 == v2

    def test_divmod_values(self):
        entry = BasicBlock("entry")
        entry.add(_li(1, 17))
        entry.add(_li(2, 5))
        entry.add(StaticInst(Opcode.DIVMOD, dests=(3, 4), srcs=(1, 2), length=4))
        trace = generate_trace(Program([entry]), 10)
        divmod_uops = [u for u in trace.uops if u.pc == trace.program.insts[2].pc]
        assert [u.value for u in divmod_uops] == [3, 2]

    def test_division_by_zero_is_zero(self):
        entry = BasicBlock("entry")
        entry.add(_li(1, 17))
        entry.add(_li(2, 0))
        entry.add(StaticInst(Opcode.DIV, dests=(3,), srcs=(1, 2), length=4))
        trace = generate_trace(Program([entry]), 10)
        assert trace.uops[-1].value == 0

    def test_explicit_fallthrough(self):
        a = BasicBlock("a", fallthrough="c")
        a.add(_li(1, 1))
        b = BasicBlock("b")
        b.add(_li(2, 2))
        c = BasicBlock("c")
        c.add(_li(3, 3))
        trace = generate_trace(Program([a, b, c]), 10)
        # Block b must be skipped.
        dests = [u.dest for u in trace.uops]
        assert dests == [1, 3]
