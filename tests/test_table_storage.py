"""Tests for the struct-of-arrays table storage API (repro.common.tables).

Covers three layers:

* bank semantics — field validation, scalar/vector access, fill/reset
  keeping column identity (hot paths cache ``col()`` references);
* backend parity — a hypothesis property test drives random op sequences
  against the python and numpy backends and compares full state, which is
  the unit-level face of the golden-stats bit-identity contract;
* the ``table_backend`` knob — JobSpec carries it on the wire but
  *excludes* it from the digest, so cells computed on either backend
  serve cache hits for the other.

(The sibling ``tests/test_storage.py`` covers the Table III *bit-budget*
accounting; this file is about the storage *backend*.)
"""

import pytest

from repro.common.tables import (
    KNOWN_BACKENDS,
    Field,
    available_backends,
    get_table_backend,
    make_bank,
    numpy_available,
    set_table_backend,
    use_table_backend,
)
from repro.exec import ResultCache, baseline_job, bebop_job, instr_vp_job, run_job
from repro.exec.jobs import JobSpec

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

BACKENDS = [
    "python",
    pytest.param("numpy", marks=needs_numpy),
]

FIELDS = (
    Field("tag", default=-1),
    Field("value", unsigned=True),
    Field("conf"),
    Field("vec", width=3, unsigned=True),
)


# ---------------------------------------------------------------------------
# Field / bank validation.
# ---------------------------------------------------------------------------

class TestValidation:
    def test_positive_entries_required(self):
        with pytest.raises(ValueError, match="positive entry count"):
            make_bank(0, FIELDS)

    def test_at_least_one_field(self):
        with pytest.raises(ValueError, match="at least one field"):
            make_bank(4, ())

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate field"):
            make_bank(4, (Field("a"), Field("a")))

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            make_bank(4, (Field("a", width=0),))

    def test_default_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make_bank(4, (Field("a", default=-1, unsigned=True),))
        with pytest.raises(ValueError, match="out of range"):
            make_bank(4, (Field("a", default=1 << 63),))

    def test_unknown_field_name(self):
        bank = make_bank(4, FIELDS)
        with pytest.raises(ValueError, match="no field"):
            bank.col("nope")
        with pytest.raises(ValueError, match="no field"):
            bank.read("nope", 0)

    def test_scalar_vector_misuse(self):
        bank = make_bank(4, FIELDS)
        with pytest.raises(ValueError, match="vector"):
            bank.read("vec", 0)
        with pytest.raises(ValueError, match="vector"):
            bank.write("vec", 0, 1)
        with pytest.raises(ValueError, match="scalar"):
            bank.probe("vec", 0, 1)
        with pytest.raises(ValueError, match="width"):
            bank.write_vec("vec", 0, (1, 2))


# ---------------------------------------------------------------------------
# Bank semantics, identical across backends.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestBankOps:
    def test_defaults_and_scalar_rw(self, backend):
        bank = make_bank(4, FIELDS, backend=backend)
        assert bank.backend == backend
        assert bank.read("tag", 0) == -1
        assert bank.read("value", 3) == 0
        bank.write("tag", 2, 77)
        bank.write("value", 2, (1 << 64) - 1)
        assert bank.read("tag", 2) == 77
        assert bank.read("value", 2) == (1 << 64) - 1

    def test_reads_return_plain_ints(self, backend):
        """The bit-identity convention: numpy scalars never escape."""
        bank = make_bank(2, FIELDS, backend=backend)
        bank.write("value", 1, 5)
        assert type(bank.read("value", 1)) is int
        assert all(type(v) is int for v in bank.read_vec("vec", 0))
        assert all(
            type(v) is int for col in bank.dump().values() for v in col
        )

    def test_vector_rw_flat_addressing(self, backend):
        bank = make_bank(4, FIELDS, backend=backend)
        bank.write_vec("vec", 2, (10, 20, 30))
        assert bank.read_vec("vec", 2) == [10, 20, 30]
        col = bank.col("vec")
        assert int(col[2 * 3 + 1]) == 20   # entry * width + lane
        col[2 * 3 + 1] = 99
        assert bank.read_vec("vec", 2) == [10, 99, 30]

    def test_probe(self, backend):
        bank = make_bank(4, FIELDS, backend=backend)
        assert bank.probe("tag", 1, -1)
        bank.write("tag", 1, 5)
        assert bank.probe("tag", 1, 5)
        assert not bank.probe("tag", 1, -1)

    def test_fill_and_bulk_reset_keep_column_identity(self, backend):
        """Hot paths cache col() refs in __init__; resets mutate in place."""
        bank = make_bank(4, FIELDS, backend=backend)
        tag_col = bank.col("tag")
        vec_col = bank.col("vec")
        bank.write("tag", 0, 9)
        bank.write_vec("vec", 0, (1, 2, 3))
        bank.fill("tag", 4)
        assert bank.col("tag") is tag_col
        assert [int(v) for v in tag_col] == [4, 4, 4, 4]
        bank.bulk_reset()
        assert bank.col("tag") is tag_col
        assert bank.col("vec") is vec_col
        assert bank.read("tag", 0) == -1
        assert bank.read_vec("vec", 0) == [0, 0, 0]

    def test_dump_shape(self, backend):
        bank = make_bank(2, FIELDS, backend=backend)
        state = bank.dump()
        assert sorted(state) == ["conf", "tag", "value", "vec"]
        assert len(state["vec"]) == 2 * 3
        assert state["tag"] == [-1, -1]


# ---------------------------------------------------------------------------
# Boundary conditions: last entry, vector lanes, 64-bit extremes.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestBoundaryOps:
    def test_last_entry_scalar_and_probe(self, backend):
        bank = make_bank(4, FIELDS, backend=backend)
        last = bank.entries - 1
        assert bank.probe("tag", last, -1)
        bank.write("tag", last, 31)
        assert bank.read("tag", last) == 31
        assert bank.probe("tag", last, 31)
        assert not bank.probe("tag", last, -1)

    def test_last_entry_vector_lanes(self, backend):
        """The final lane of the final entry is the last flat slot —
        an off-by-one in ``entry * width + lane`` addressing lands out of
        bounds or in a neighbour."""
        bank = make_bank(4, FIELDS, backend=backend)
        last = bank.entries - 1
        bank.write_vec("vec", last, (7, 8, 9))
        assert bank.read_vec("vec", last) == [7, 8, 9]
        col = bank.col("vec")
        assert int(col[last * 3 + 2]) == 9
        # The neighbouring entry is untouched.
        assert bank.read_vec("vec", last - 1) == [0, 0, 0]
        assert len(bank.dump()["vec"]) == bank.entries * 3

    def test_unsigned_64bit_extremes_round_trip(self, backend):
        """Pre-masked unsigned values survive both backends bit-exactly
        at the top of the range (uint64 vs python-int storage)."""
        bank = make_bank(2, FIELDS, backend=backend)
        top = (1 << 64) - 1
        high = 1 << 63
        bank.write("value", 1, top)
        bank.write_vec("vec", 1, (top, high, 0))
        assert bank.read("value", 1) == top
        assert bank.read_vec("vec", 1) == [top, high, 0]
        assert bank.probe("value", 1, top)

    def test_signed_extremes_round_trip(self, backend):
        bank = make_bank(2, FIELDS, backend=backend)
        lo, hi = -(1 << 63), (1 << 63) - 1
        bank.write("conf", 0, lo)
        bank.write("conf", 1, hi)
        assert bank.read("conf", 0) == lo
        assert bank.read("conf", 1) == hi

    def test_stacked_views_isolate_variants_at_boundaries(self, backend):
        """Writes to one variant's last entry never alias a neighbour
        variant (the rows of the stacked column are independent)."""
        stack = make_bank(4, FIELDS, backend=backend, variants=3)
        last = stack.entries - 1
        top = (1 << 64) - 1
        stack.write_vec(2, "vec", last, (1, 2, 3))
        stack.write(0, "value", last, top)
        assert stack.read_vec(2, "vec", last) == [1, 2, 3]
        assert stack.read_vec(0, "vec", last) == [0, 0, 0]
        assert stack.read(0, "value", last) == top
        assert stack.read(1, "value", last) == 0
        assert stack.probe(2, "tag", last, -1)
        view = stack.view(2)
        view.write("tag", last, 9)
        assert stack.read(2, "tag", last) == 9
        assert stack.read(1, "tag", last) == -1


# ---------------------------------------------------------------------------
# dump() returns builtin ints in every width configuration (JSON safety).
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_dump_returns_builtin_ints_in_every_width_config(backend):
    """Regression: a numpy scalar inside a dump poisons JSON export
    (cache blobs, golden stats) and cross-backend comparison."""
    import json

    fields = (
        Field("tag", default=-1),
        Field("u1", unsigned=True),
        Field("w4", width=4),
        Field("uw3", width=3, unsigned=True),
    )
    bank = make_bank(3, fields, backend=backend)
    bank.write("u1", 2, (1 << 64) - 1)
    bank.write_vec("uw3", 2, (1 << 63, 5, 0))
    bank.write_vec("w4", 0, (-1, -(1 << 63), (1 << 63) - 1, 0))
    dumped = bank.dump()
    for name, col in dumped.items():
        assert all(type(v) is int for v in col), name
    json.dumps(dumped)   # raises TypeError on any numpy scalar

    stack = make_bank(3, fields, backend=backend, variants=2)
    stack.view(1).write("u1", 2, (1 << 64) - 1)
    stack.write_vec(0, "uw3", 1, ((1 << 64) - 1, 0, 1))
    per_variant = stack.dump()
    assert len(per_variant) == 2
    assert all(
        type(v) is int
        for state in per_variant
        for col in state.values()
        for v in col
    )
    json.dumps(per_variant)


# ---------------------------------------------------------------------------
# Backend registry and scoping.
# ---------------------------------------------------------------------------

class TestBackendRegistry:
    def test_known_and_available(self):
        assert KNOWN_BACKENDS == ("python", "numpy")
        avail = available_backends()
        assert "python" in avail
        assert set(avail) <= set(KNOWN_BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown table backend"):
            make_bank(4, FIELDS, backend="fortran")
        with pytest.raises(ValueError, match="unknown table backend"):
            set_table_backend("fortran")

    def test_use_table_backend_scopes_and_restores(self):
        before = get_table_backend()
        with use_table_backend("python") as name:
            assert name == "python"
            assert get_table_backend() == "python"
            assert make_bank(2, FIELDS).backend == "python"
        assert get_table_backend() == before

    @needs_numpy
    def test_numpy_backend_selectable(self):
        with use_table_backend("numpy"):
            assert make_bank(2, FIELDS).backend == "numpy"
        bank = make_bank(2, FIELDS, backend="numpy")
        assert bank.backend == "numpy"


# ---------------------------------------------------------------------------
# Property: python and numpy banks are state-equivalent under any op mix.
# ---------------------------------------------------------------------------

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    _HAVE_HYPOTHESIS = False

ENTRIES = 4

if _HAVE_HYPOTHESIS:
    _SIGNED = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
    _UNSIGNED = st.integers(min_value=0, max_value=(1 << 64) - 1)
    _BY_FIELD = {
        "tag": _SIGNED,
        "conf": _SIGNED,
        "value": _UNSIGNED,
        "vec": _UNSIGNED,
    }

    @st.composite
    def _op(draw):
        kind = draw(st.sampled_from(("write", "write", "write_vec", "fill",
                                     "bulk_reset")))
        if kind == "write":
            name = draw(st.sampled_from(("tag", "value", "conf")))
            index = draw(st.integers(0, ENTRIES - 1))
            return ("write", name, index, draw(_BY_FIELD[name]))
        if kind == "write_vec":
            index = draw(st.integers(0, ENTRIES - 1))
            values = draw(st.tuples(_UNSIGNED, _UNSIGNED, _UNSIGNED))
            return ("write_vec", "vec", index, values)
        if kind == "fill":
            name = draw(st.sampled_from(("tag", "value", "conf", "vec")))
            return ("fill", name, draw(_BY_FIELD[name]))
        return ("bulk_reset",)

    @needs_numpy
    @given(ops=st.lists(_op(), max_size=40))
    @settings(deadline=None, max_examples=150)
    def test_backends_state_equivalent_under_random_ops(ops):
        banks = [
            make_bank(ENTRIES, FIELDS, backend=name)
            for name in ("python", "numpy")
        ]
        for bank in banks:
            for op in ops:
                if op[0] == "write":
                    bank.write(op[1], op[2], op[3])
                elif op[0] == "write_vec":
                    bank.write_vec(op[1], op[2], op[3])
                elif op[0] == "fill":
                    bank.fill(op[1], op[2])
                else:
                    bank.bulk_reset()
        py, np_ = banks
        assert py.dump() == np_.dump()
        for name in ("tag", "value", "conf"):
            for i in range(ENTRIES):
                a, b = py.read(name, i), np_.read(name, i)
                assert a == b and type(a) is int and type(b) is int
        for i in range(ENTRIES):
            assert py.read_vec("vec", i) == np_.read_vec("vec", i)


# ---------------------------------------------------------------------------
# The table_backend knob on the exec/serve surface.
# ---------------------------------------------------------------------------

class TestBackendKnob:
    def test_spec_accepts_known_backends_only(self):
        assert JobSpec(workload="swim", table_backend="numpy").table_backend == "numpy"
        with pytest.raises(ValueError, match="unknown table backend"):
            JobSpec(workload="swim", table_backend="fortran")

    def test_digest_excludes_backend(self):
        """Backends are bit-identical, so the digest deliberately ignores
        the knob: a numpy-computed cell is a valid cache hit for python."""
        py = bebop_job("gcc", table_backend="python")
        np_ = bebop_job("gcc", table_backend="numpy")
        assert py != np_
        assert py.digest() == np_.digest()

    def test_backend_rides_the_wire(self):
        spec = instr_vp_job("swim", "d-vtage", table_backend="numpy")
        data = spec.as_dict()
        assert data["table_backend"] == "numpy"
        assert JobSpec.from_dict(data) == spec

    def test_from_dict_legacy_specs_default_to_python(self):
        data = baseline_job("swim").as_dict()
        del data["table_backend"]
        assert JobSpec.from_dict(data).table_backend == "python"

    def test_builders_resolve_global_default(self):
        with use_table_backend("python"):
            assert baseline_job("swim").table_backend == "python"
        assert instr_vp_job("swim", "lvp",
                            table_backend="numpy").table_backend == "numpy"

    def test_cross_backend_cache_hit(self, tmp_path):
        """A cell computed on one backend satisfies the other's lookup —
        safe precisely because both backends are bit-identical."""
        py = baseline_job("swim", 2000, 500, table_backend="python")
        np_ = baseline_job("swim", 2000, 500, table_backend="numpy")
        cache = ResultCache(root=tmp_path)
        stats = run_job(py)
        cache.put(py, stats)
        assert cache.get(np_) == stats
        assert cache.hits == 1

    @needs_numpy
    def test_run_job_same_stats_on_both_backends(self):
        specs = [
            instr_vp_job("swim", "d-vtage", 3000, 1000, table_backend=b)
            for b in ("python", "numpy")
        ]
        a, b = run_job(specs[0]), run_job(specs[1])
        assert a == b
