"""Tests for SimStats, speedup/gmean helpers and CoreConfig."""

import pytest

from repro.pipeline.config import (
    BASELINE_6_60,
    ConfigError,
    baseline_vp_6_60,
    eole_4_60,
)
from repro.pipeline.stats import SimStats, gmean, speedup


class TestSimStats:
    def test_ipc(self):
        s = SimStats(cycles=100, insts=150, uops=200)
        assert s.ipc == 1.5
        assert s.uops_per_cycle == 2.0

    def test_zero_cycles(self):
        s = SimStats()
        assert s.ipc == 0.0
        assert s.vp_accuracy == 0.0
        assert s.vp_coverage == 0.0
        assert s.branch_mpki == 0.0

    def test_vp_ratios(self):
        s = SimStats(vp_eligible=100, vp_used=40, vp_used_correct=39)
        assert s.vp_coverage == 0.4
        assert s.vp_accuracy == 0.975

    def test_mpki(self):
        s = SimStats(insts=10_000, branch_mispredicts=25)
        assert s.branch_mpki == 2.5

    def test_summary_contains_key_fields(self):
        s = SimStats(workload="swim", config="x", cycles=10, insts=20)
        text = s.summary()
        assert "swim" in text and "IPC" in text


class TestSpeedupHelpers:
    def test_speedup(self):
        a = SimStats(workload="w", cycles=100, insts=200)
        b = SimStats(workload="w", cycles=100, insts=100)
        assert speedup(a, b) == 2.0

    def test_speedup_workload_mismatch(self):
        a = SimStats(workload="w1", cycles=1, insts=1)
        b = SimStats(workload="w2", cycles=1, insts=1)
        with pytest.raises(ValueError):
            speedup(a, b)

    def test_speedup_zero_ipc(self):
        a = SimStats(workload="w", cycles=1, insts=0)
        b = SimStats(workload="w", cycles=1, insts=1)
        with pytest.raises(ValueError):
            speedup(a, b)

    def test_gmean(self):
        assert abs(gmean([2.0, 8.0]) - 4.0) < 1e-12
        assert gmean([1.0]) == 1.0

    def test_gmean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            gmean([])
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])


class TestCoreConfig:
    def test_baseline_is_table1(self):
        c = BASELINE_6_60
        assert (c.rob_size, c.iq_size, c.lq_size, c.sq_size) == (192, 60, 72, 48)
        assert c.issue_width == 6 and not c.vp_enabled

    def test_vp_variant(self):
        c = baseline_vp_6_60()
        assert c.vp_enabled and not c.eole and c.issue_width == 6

    def test_eole_variant(self):
        c = eole_4_60()
        assert c.vp_enabled and c.eole and c.issue_width == 4
        # Late Execution adds a stage (§V-A).
        assert c.back_end_depth == BASELINE_6_60.back_end_depth + 1

    def test_with_returns_copy(self):
        c = BASELINE_6_60.with_(issue_width=2)
        assert c.issue_width == 2
        assert BASELINE_6_60.issue_width == 6

    def test_frozen(self):
        with pytest.raises(Exception):
            BASELINE_6_60.issue_width = 1  # type: ignore[misc]


class TestCoreConfigValidation:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigError, match="issue_width must be positive"):
            BASELINE_6_60.with_(issue_width=0)

    def test_rejects_nonpositive_structure_sizes(self):
        for field in ("rob_size", "iq_size", "lq_size", "sq_size"):
            with pytest.raises(ConfigError, match=f"{field} must be positive"):
                BASELINE_6_60.with_(**{field: -1})

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError, match="power of two"):
            BASELINE_6_60.with_(fetch_block_bytes=12)

    def test_reports_every_violation_at_once(self):
        """One ConfigError listing ALL violations, not just the first."""
        with pytest.raises(ConfigError) as info:
            BASELINE_6_60.with_(rob_size=-1, issue_width=0,
                                fetch_block_bytes=12)
        err = info.value
        assert err.config_name == BASELINE_6_60.name
        assert len(err.violations) == 3
        text = str(err)
        assert "rob_size must be positive, got -1" in text
        assert "issue_width must be positive, got 0" in text
        assert "fetch_block_bytes must be a power of two, got 12" in text

    def test_is_a_value_error(self):
        """Callers that catch ValueError keep working."""
        with pytest.raises(ValueError):
            BASELINE_6_60.with_(decode_width=0)

    def test_nonpositive_power_of_two_reported_once(self):
        """A zero block size is one violation (positivity), not two."""
        with pytest.raises(ConfigError) as info:
            BASELINE_6_60.with_(fetch_block_bytes=0)
        assert len(info.value.violations) == 1


class TestExtraIsGone:
    def test_simstats_has_no_extra_view(self):
        """The deprecated ``SimStats.extra`` read-through view is deleted:
        ad-hoc counters belong in :mod:`repro.obs` namespaced metrics.
        Guard against reintroduction under the old name."""
        stats = SimStats()
        assert not hasattr(stats, "extra")
        assert not hasattr(stats, "_extra")

    def test_no_production_code_references_extra(self):
        """No module under ``src/repro`` may reference ``.extra`` at all
        (grep-style, so a reintroduction fails loudly)."""
        import re
        from pathlib import Path

        import repro

        src_root = Path(repro.__file__).resolve().parent
        pattern = re.compile(r"\.extra\b")
        offenders = []
        for path in sorted(src_root.rglob("*.py")):
            rel = path.relative_to(src_root).as_posix()
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if pattern.search(line):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "production code must not reference SimStats.extra:\n"
            + "\n".join(offenders)
        )
