"""Tests for the repro.exec subsystem (jobs, scheduler, cache, progress)."""

import io
import os
import time
from pathlib import Path

import pytest

import repro.exec
from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.eval import experiments, reporting
from repro.eval.runner import RunSpec, get_trace, run_baseline
from repro.exec import (
    JobError,
    JobSpec,
    JobTimeoutError,
    ProgressMeter,
    ResultCache,
    Scheduler,
    baseline_job,
    bebop_job,
    instr_vp_job,
    run_job,
    shard,
    stats_from_dict,
    stats_to_dict,
)
from repro.pipeline import SimStats

TINY = RunSpec(uops=4_000, warmup=1_000, workloads=("swim", "gobmk"))


@pytest.fixture(autouse=True)
def _reset_default_scheduler():
    """Experiments dispatch through the module default; leave it serial."""
    yield
    repro.exec.reset()


# ---------------------------------------------------------------------------
# Worker functions for the parallel paths: must be top-level to pickle.
# ---------------------------------------------------------------------------

def _fake_job(spec: JobSpec) -> SimStats:
    """Cheap stand-in cell: stats derived from the spec, no simulation."""
    return SimStats(workload=spec.workload, cycles=spec.uops, insts=2 * spec.uops)


def _hanging_job(spec: JobSpec) -> SimStats:
    time.sleep(300)
    return _fake_job(spec)


def _raising_job(spec: JobSpec) -> SimStats:
    raise RuntimeError(f"boom: {spec.workload}")


def _mcf_hangs_job(spec: JobSpec) -> SimStats:
    if spec.workload == "mcf":
        time.sleep(300)
    return _fake_job(spec)


def _crash_once_job(spec: JobSpec) -> SimStats:
    """Dies hard on the first execution per spec, then succeeds.

    Worker processes are forked per pool, so the only cross-attempt state
    available is the filesystem: a flag file under $REPRO_TEST_CRASH_DIR
    marks specs that already took their crash.
    """
    flag = os.path.join(os.environ["REPRO_TEST_CRASH_DIR"], spec.digest())
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(86)
    return _fake_job(spec)


def _crash_in_worker_job(spec: JobSpec) -> SimStats:
    """Always dies in a pool worker; succeeds only in the parent process."""
    if os.getpid() != int(os.environ["REPRO_TEST_PARENT_PID"]):
        os._exit(86)
    return _fake_job(spec)


class TestJobSpec:
    def test_digest_stable(self):
        a = baseline_job("swim", 4000, 1000)
        b = baseline_job("swim", 4000, 1000)
        assert a == b
        assert a.digest() == b.digest()

    def test_digest_changes_with_every_field(self):
        base = bebop_job("swim", BlockDVTAGEConfig(), 32,
                         RecoveryPolicy.DNRDNR, 4000, 1000)
        variants = [
            bebop_job("gobmk", BlockDVTAGEConfig(), 32,
                      RecoveryPolicy.DNRDNR, 4000, 1000),        # workload
            bebop_job("swim", BlockDVTAGEConfig(), 32,
                      RecoveryPolicy.DNRDNR, 8000, 1000),        # uops
            bebop_job("swim", BlockDVTAGEConfig(), 32,
                      RecoveryPolicy.DNRDNR, 4000, 2000),        # warmup
            bebop_job("swim", BlockDVTAGEConfig(npred=4), 32,
                      RecoveryPolicy.DNRDNR, 4000, 1000),        # engine config
            bebop_job("swim", BlockDVTAGEConfig(), 16,
                      RecoveryPolicy.DNRDNR, 4000, 1000),        # window
            bebop_job("swim", BlockDVTAGEConfig(), 32,
                      RecoveryPolicy.REPRED, 4000, 1000),        # policy
            instr_vp_job("swim", "d-vtage", 4000, 1000),         # engine kind
            baseline_job("swim", 4000, 1000),                    # pipeline
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 1 + len(variants)

    def test_dict_roundtrip(self):
        spec = bebop_job("swim", BlockDVTAGEConfig(stride_bits=16), None,
                         RecoveryPolicy.DNRR, 4000, 1000)
        again = JobSpec.from_dict(spec.as_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(workload="swim", pipeline="no_such_core")
        with pytest.raises(ValueError):
            JobSpec(workload="swim", engine=("quantum",))

    def test_run_job_matches_direct_baseline(self):
        spec = baseline_job("swim", 4000, 1000)
        direct = run_baseline(get_trace("swim", 4000), 1000)
        assert run_job(spec) == direct

    def test_stats_roundtrip_exact(self):
        stats = run_job(instr_vp_job("swim", "2d-stride", 4000, 1000))
        again = stats_from_dict(stats_to_dict(stats))
        assert again == stats
        assert again.ipc == stats.ipc


class TestShard:
    def test_round_robin(self):
        assert shard(list(range(5)), 2) == [[0, 2, 4], [1, 3]]

    def test_keeps_empty_shards(self):
        assert shard([1], 3) == [[1], [], []]

    def test_deterministic(self):
        items = list(range(17))
        assert shard(items, 4) == shard(items, 4)
        assert sorted(sum(shard(items, 4), [])) == items

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard([1], 0)


class TestScheduler:
    def test_parallel_identical_to_serial_fig5a(self):
        """The acceptance property: jobs=2+ output ≡ jobs=1 output."""
        repro.exec.configure(jobs=1)
        serial = experiments.fig5a(TINY)
        repro.exec.configure(jobs=2)
        parallel = experiments.fig5a(TINY)
        assert parallel == serial

    def test_results_in_spec_order(self):
        specs = [baseline_job(w, 1000 + 100 * k, 0)
                 for k, w in enumerate(("swim", "mcf", "gcc", "bzip2", "gobmk"))]
        out = Scheduler(jobs=2, job_fn=_fake_job).run(specs)
        assert [s.workload for s in out] == [s.workload for s in specs]
        assert [s.cycles for s in out] == [s.uops for s in specs]

    def test_cache_hit_skips_recompute(self, tmp_path):
        calls = []

        def counting_job(spec):
            calls.append(spec.workload)
            return _fake_job(spec)

        cache = ResultCache(root=tmp_path)
        specs = [baseline_job("swim", 2000, 500), baseline_job("mcf", 2000, 500)]
        sched = Scheduler(cache=cache, job_fn=counting_job)
        first = sched.run(specs)
        assert calls == ["swim", "mcf"]
        assert cache.stores == 2

        second = sched.run(specs)
        assert calls == ["swim", "mcf"]          # no recompute
        assert cache.hits == 2
        assert second == first                    # exact float round-trip

    def test_cache_version_salt_invalidates(self, tmp_path):
        spec = baseline_job("swim", 2000, 500)
        old = ResultCache(root=tmp_path, version="1")
        old.put(spec, _fake_job(spec))
        assert ResultCache(root=tmp_path, version="1").get(spec) is not None
        assert ResultCache(root=tmp_path, version="2").get(spec) is None

    def test_cache_corrupt_blob_is_a_miss(self, tmp_path):
        spec = baseline_job("swim", 2000, 500)
        cache = ResultCache(root=tmp_path)
        cache.put(spec, _fake_job(spec))
        cache._path(spec).write_text("{ not json")
        assert cache.get(spec) is None
        assert not cache._path(spec).exists()    # dropped, will recompute

    def test_cache_eviction(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_entries=3)
        specs = [baseline_job("swim", 1000 + i, 0) for i in range(5)]
        for spec in specs:
            cache.put(spec, _fake_job(spec))
        assert len(cache) == 3
        assert cache.evictions == 2

    def test_serial_retry_then_success(self):
        failures = iter([True, False])

        def flaky(spec):
            if next(failures):
                raise RuntimeError("transient")
            return _fake_job(spec)

        out = Scheduler(retries=1, job_fn=flaky).run([baseline_job("swim", 2000, 0)])
        assert out[0].workload == "swim"

    def test_serial_retries_exhausted(self):
        def always(spec):
            raise RuntimeError("permanent")

        with pytest.raises(JobError, match="permanent"):
            Scheduler(retries=1, job_fn=always).run([baseline_job("swim", 2000, 0)])

    def test_parallel_raising_job_exhausts_retries(self):
        specs = [baseline_job("swim", 2000, 0), baseline_job("mcf", 2000, 0)]
        with pytest.raises(JobError, match="boom"):
            Scheduler(jobs=2, retries=1, job_fn=_raising_job).run(specs)

    def test_parallel_timeout_kills_and_retries(self):
        """A hung worker trips the timeout, is retried, then fails for good."""
        specs = [baseline_job("swim", 2000, 0), baseline_job("mcf", 2000, 0)]
        sched = Scheduler(jobs=2, timeout=1.0, retries=1, job_fn=_hanging_job)
        t0 = time.monotonic()
        with pytest.raises(JobTimeoutError):
            sched.run(specs)
        # 1 attempt + 1 retry at ~1s each, nowhere near the job's sleep(300).
        assert time.monotonic() - t0 < 60

    def test_parallel_hang_does_not_lose_finished_sibling(self):
        """A hung worker poisons the pool, but a cell that already finished
        is harvested, not recomputed on the retry pass."""
        meter = ProgressMeter(stream=io.StringIO())
        specs = [baseline_job("swim", 2000, 0), baseline_job("mcf", 2000, 0)]
        sched = Scheduler(jobs=2, timeout=3.0, retries=1, progress=meter,
                          job_fn=_mcf_hangs_job)
        with pytest.raises(JobTimeoutError):
            sched.run(specs)
        assert meter.jobs_done == 1              # swim, exactly once

    def test_parallel_with_cache_end_to_end(self, tmp_path):
        """Real simulations through the pool, then a warm serial re-read."""
        cache = ResultCache(root=tmp_path)
        specs = [baseline_job("swim", 4000, 1000),
                 baseline_job("gobmk", 4000, 1000)]
        out = Scheduler(jobs=2, cache=cache).run(specs)
        assert [s.workload for s in out] == ["swim", "gobmk"]
        assert cache.stores == 2
        again = Scheduler(jobs=1, cache=cache).run(specs)
        assert again == out                      # exact JSON round-trip

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Scheduler(jobs=0)
        with pytest.raises(ValueError):
            Scheduler(retries=-1)


class TestSchedulerDegradedPaths:
    """A pool that dies must not take the sweep down with it."""

    def test_broken_pool_is_rebuilt_and_sweep_completes(self, tmp_path,
                                                        monkeypatch):
        """One-shot worker crashes break the pool; the rebuilt pool (with
        the crashes already taken) finishes with correct results."""
        monkeypatch.setenv("REPRO_TEST_CRASH_DIR", str(tmp_path))
        specs = [baseline_job(w, 2000, 0) for w in ("swim", "mcf")]
        expected = [_fake_job(s) for s in specs]
        out = Scheduler(jobs=2, job_fn=_crash_once_job).run(specs)
        assert out == expected

    def test_repeated_pool_death_falls_back_to_serial(self, monkeypatch):
        """Workers that always die exhaust MAX_POOL_FAILURES; the sweep
        finishes deterministically in the parent process."""
        monkeypatch.setenv("REPRO_TEST_PARENT_PID", str(os.getpid()))
        specs = [baseline_job(w, 2000, 0) for w in ("swim", "mcf", "gcc")]
        expected = [_fake_job(s) for s in specs]
        out = Scheduler(jobs=2, job_fn=_crash_in_worker_job).run(specs)
        assert out == expected

    def test_kill_pool_degrades_without_private_process_table(self):
        """_kill_pool leans on the executor's private _processes dict; a
        stdlib that drops it must still get a non-waiting shutdown."""
        from repro.exec.scheduler import _kill_pool

        calls = []

        class _StubPool:
            def shutdown(self, wait=True, cancel_futures=False):
                calls.append((wait, cancel_futures))

        _kill_pool(_StubPool())
        assert calls == [(False, True)]

    def test_kill_pool_terminates_workers_first(self):
        from repro.exec.scheduler import _kill_pool

        events = []

        class _StubProc:
            def terminate(self):
                events.append("terminate")

        class _StubPool:
            _processes = {0: _StubProc(), 1: _StubProc()}

            def shutdown(self, wait=True, cancel_futures=False):
                events.append(("shutdown", wait))

        _kill_pool(_StubPool())
        assert events == ["terminate", "terminate", ("shutdown", False)]


class TestCachePutRobustness:
    def test_failed_write_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        """Serialization dying mid-put must not litter the cache dir or
        leave a half-written blob (the bug: tmp files leaked forever)."""
        import repro.exec.cache as cache_mod

        cache = ResultCache(root=tmp_path)
        spec = baseline_job("swim", 2000, 500)

        def exploding_dump(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cache_mod.json, "dump", exploding_dump)
        with pytest.raises(OSError):
            cache.put(spec, _fake_job(spec))
        monkeypatch.undo()

        assert list(cache.dir.glob("*.tmp*")) == []
        assert cache.get(spec) is None           # no half-written blob
        cache.put(spec, _fake_job(spec))         # and the cache still works
        assert cache.get(spec) == _fake_job(spec)

    def test_stale_tmp_litter_is_swept_on_init(self, tmp_path):
        """Leftovers of a writer killed before the fix (or mid-rename) are
        removed the next time the cache is opened."""
        cache = ResultCache(root=tmp_path)
        spec = baseline_job("swim", 2000, 500)
        cache.put(spec, _fake_job(spec))
        stale = cache.dir / "deadbeef.tmp12345"
        stale.write_text("half a blob")

        again = ResultCache(root=tmp_path)
        assert not stale.exists()
        assert again.get(spec) == _fake_job(spec)  # real blobs untouched


class TestWarmCacheReport:
    def test_warm_rerun_is_fast_and_identical(self, tmp_path):
        """Acceptance: a warm re-run serves every cell from disk and renders
        a byte-identical report."""
        cache = ResultCache(root=tmp_path)
        repro.exec.configure(jobs=1, cache=cache)

        t0 = time.monotonic()
        cold = experiments.fig5a(TINY)
        cold_s = time.monotonic() - t0
        jobs_run = cache.stores
        assert jobs_run == len(TINY.names()) * (1 + len(experiments.FIG5A_PREDICTORS))

        t0 = time.monotonic()
        warm = experiments.fig5a(TINY)
        warm_s = time.monotonic() - t0

        assert warm == cold
        assert cache.hits == jobs_run            # every cell from disk
        assert cache.stores == jobs_run          # nothing recomputed
        assert warm_s < cold_s                   # trivially true: no simulation

        render = lambda r: reporting.render_per_workload(
            "Fig 5a", r, list(experiments.FIG5A_PREDICTORS))
        assert render(warm) == render(cold)


class TestProgressMeter:
    def test_counts_and_summary(self):
        out = io.StringIO()
        meter = ProgressMeter(stream=out)
        meter.start(3, "fig5a")
        meter.tick()
        meter.tick(cached=True)
        meter.tick()
        meter.finish()
        assert meter.jobs_done == 3 and meter.jobs_cached == 1
        assert "[3/3]" in out.getvalue()
        assert "fig5a" in out.getvalue()
        assert "3 jobs" in meter.summary()
        assert "1 from cache" in meter.summary()

    def test_disabled_writes_nothing(self):
        out = io.StringIO()
        meter = ProgressMeter(stream=out, enabled=False)
        meter.start(1)
        meter.tick()
        meter.finish()
        assert out.getvalue() == ""

    def test_scheduler_ticks_cached_jobs(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        meter = ProgressMeter(stream=io.StringIO())
        specs = [baseline_job("swim", 2000, 0), baseline_job("mcf", 2000, 0)]
        Scheduler(cache=cache, job_fn=_fake_job).run(specs)
        Scheduler(cache=cache, progress=meter, job_fn=_fake_job).run(specs)
        assert meter.jobs_done == 2 and meter.jobs_cached == 2


class _VanishedOnUnlink(type(Path())):
    """A path whose file exists at scan time but vanishes on unlink —
    what a concurrent deleter on a shared cache root looks like."""

    def unlink(self, missing_ok=False):
        raise FileNotFoundError(self)


class TestCacheSharding:
    def test_blobs_live_in_two_hex_shards(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = baseline_job("swim", 2000, 500)
        cache.put(spec, _fake_job(spec))
        digest = spec.digest()
        path = cache.dir / digest[:2] / f"{digest}.json"
        assert path.is_file()
        assert list(cache.dir.glob("*.json")) == []   # nothing flat
        assert len(cache) == 1

    def test_legacy_flat_blobs_migrate_on_open(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = [baseline_job(w, 2000, 500) for w in ("swim", "mcf", "gcc")]
        for spec in specs:
            cache.put(spec, _fake_job(spec))
        # Recreate the pre-sharding layout: blobs flat in the version dir.
        for path in list(cache._blobs()):
            os.replace(path, cache.dir / path.name)
        assert len(list(cache.dir.glob("*.json"))) == 3

        again = ResultCache(root=tmp_path)
        assert list(again.dir.glob("*.json")) == []   # all migrated
        assert len(again) == 3
        for spec in specs:                            # and still served
            assert again.get(spec) == _fake_job(spec)
        assert again.hits == 3

    def test_prune_spans_shards_and_len_counts_them(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = [baseline_job("swim", 1000 + i, 0) for i in range(6)]
        for spec in specs:
            cache.put(spec, _fake_job(spec))
        shards = {p.parent.name for p in cache._blobs()}
        assert len(shards) > 1                        # actually sharded
        assert len(cache) == 6
        assert cache.prune(2) == 4
        assert len(cache) == 2

    def test_clear_spans_shards(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for i in range(4):
            spec = baseline_job("swim", 1000 + i, 0)
            cache.put(spec, _fake_job(spec))
        assert cache.clear() == 4
        assert len(cache) == 0

    def test_prune_tolerates_concurrent_deleters(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        for i in range(4):
            spec = baseline_job("swim", 1000 + i, 0)
            cache.put(spec, _fake_job(spec))
        real = sorted(cache._blobs())
        gone = cache.dir / "00" / ("0" * 64 + ".json")  # never existed
        racy = _VanishedOnUnlink(real[0])               # vanishes on unlink
        monkeypatch.setattr(
            cache, "_blobs", lambda: [gone, racy] + real[1:])
        # 5 scanned: 1 fails stat, 1 fails unlink — prune keeps going and
        # counts only what it actually removed.
        assert cache.prune(0) == 3
        assert cache.evictions == 3

    def test_clear_tolerates_concurrent_deleters(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        for i in range(3):
            spec = baseline_job("swim", 1000 + i, 0)
            cache.put(spec, _fake_job(spec))
        real = sorted(cache._blobs())
        racy = _VanishedOnUnlink(real[0])
        monkeypatch.setattr(cache, "_blobs", lambda: [racy] + real[1:])
        assert cache.clear() == 2                     # the two still there

    def test_get_blob_is_the_digest_keyed_twin_of_get(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = baseline_job("swim", 2000, 500)
        assert cache.get_blob(spec.digest()) is None
        assert cache.misses == 1
        cache.put(spec, _fake_job(spec))
        blob = cache.get_blob(spec.digest())
        assert cache.hits == 1
        assert JobSpec.from_dict(blob["spec"]) == spec
        assert stats_from_dict(blob["stats"]) == _fake_job(spec)
        assert blob["sha256"]                          # verified checksum


class TestCacheRootPrecedence:
    def test_env_precedence_and_fallback(self, tmp_path, monkeypatch):
        from repro.exec.cache import default_cache_root

        monkeypatch.setenv("REPRO_BEBOP_CACHE", str(tmp_path / "specific"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
        assert default_cache_root() == tmp_path / "specific"

        monkeypatch.delenv("REPRO_BEBOP_CACHE")
        assert default_cache_root() == tmp_path / "shared"

        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_root() == Path.home() / ".cache" / "repro-bebop"

    def test_result_cache_honours_shared_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BEBOP_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
        cache = ResultCache()
        assert cache.root == tmp_path / "shared"
        spec = baseline_job("swim", 2000, 500)
        cache.put(spec, _fake_job(spec))
        assert ResultCache().get(spec) == _fake_job(spec)
