"""Deterministic fault injection for the execution layer.

The paper's engine is built around recovering from misspeculation; this
module gives the *infrastructure* the same discipline.  A :class:`FaultPlan`
decides — deterministically, from a seed — which jobs of a sweep are hit by
which failure mode:

* ``crash``     — the worker process dies hard (``os._exit``), breaking the
  whole process pool mid-flight;
* ``hang``      — the worker sleeps past the scheduler's job timeout;
* ``exception`` — a transient :class:`InjectedFault` is raised in place of
  the result;
* cache-blob corruption — a just-written result blob is bit-flipped,
  truncated, or replaced with foreign JSON (:meth:`FaultPlan.corrupt_blob`).

Decisions are pure functions of ``(seed, job digest, per-job fault
ordinal)``: they do not depend on pool completion order, worker count, or
wall clock, so the *same* faults fire on every run of the same sweep with
the same seed — a chaos test is exactly as reproducible as the simulation
it perturbs.  The plan itself lives in the scheduler's (parent) process;
workers receive only the picklable :class:`FaultAction` verdict, which
keeps injection trivially consistent across process boundaries.

Every injection increments an ``exec/fault/<kind>`` counter and every job
that completes despite at least one injected fault increments
``exec/fault/recovered``, so observability snapshots account for each
fault and each recovery.  The whole layer follows the ``rec is None``
zero-overhead convention: a scheduler or cache holding ``chaos=None`` pays
one attribute check and nothing else.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, fields

import repro.obs as obs
from repro.common.rng import XorShift64

#: Job-level fault kinds, in the fixed order the plan draws them.
JOB_FAULT_KINDS = ("crash", "hang", "exception")

#: Cache-blob corruption modes :meth:`FaultPlan.corrupt_blob` picks from.
CORRUPT_MODES = ("bitflip", "truncate", "foreign")

#: The foreign blob mode writes valid-but-alien JSON: it parses fine and
#: must be rejected by the cache's payload checksum, not the JSON decoder.
FOREIGN_BLOB = b'{"kind": "chaos-foreign-blob", "stats": {"cycles": 1}}'


class InjectedFault(RuntimeError):
    """A transient failure injected by a :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultAction:
    """One fault verdict, shipped (picklably) to wherever it must fire."""

    kind: str                 # one of JOB_FAULT_KINDS
    seconds: float = 0.0      # hang duration, for kind == "hang"


@dataclass(frozen=True)
class ChaosConfig:
    """Rates and knobs of a fault plan.

    Rates are independent per-draw probabilities in ``[0, 1]``; at most one
    job fault fires per draw (drawn in ``crash``, ``hang``, ``exception``
    order) and at most :attr:`max_faults_per_job` per job, so a sweep run
    with ``retries >= max_faults_per_job`` is guaranteed to complete.
    """

    seed: int = 0xC4A05
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    hang_seconds: float = 300.0
    max_faults_per_job: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "exception_rate",
                     "cache_corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds <= 0:
            raise ValueError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )
        if self.max_faults_per_job < 0:
            raise ValueError(
                f"max_faults_per_job must be >= 0, "
                f"got {self.max_faults_per_job}"
            )


#: CLI shorthand aliases accepted by :func:`parse_chaos_spec`.
_SPEC_ALIASES = {
    "crash": "crash_rate",
    "hang": "hang_rate",
    "exception": "exception_rate",
    "corrupt": "cache_corrupt_rate",
    "max_faults": "max_faults_per_job",
}


def parse_chaos_spec(spec: str) -> ChaosConfig:
    """Parse ``"exception=0.2,crash=0.05,seed=7"`` into a :class:`ChaosConfig`.

    Keys are :class:`ChaosConfig` field names or the short aliases
    ``crash`` / ``hang`` / ``exception`` / ``corrupt`` / ``max_faults``.
    """
    known = {f.name for f in fields(ChaosConfig)}
    kwargs: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed chaos spec item {part!r} (want k=v)")
        field = _SPEC_ALIASES.get(key, key)
        if field not in known:
            raise ValueError(
                f"unknown chaos spec key {key!r}; known: "
                f"{', '.join(sorted(known) + sorted(_SPEC_ALIASES))}"
            )
        kwargs[field] = (int(value, 0) if field in ("seed", "max_faults_per_job")
                         else float(value))
    return ChaosConfig(**kwargs)  # type: ignore[arg-type]


class FaultPlan:
    """Seeded, stateful fault oracle for one sweep (or driver run).

    The per-decision randomness is an own :class:`XorShift64` stream seeded
    from ``sha256(seed / scope / digest / ordinal)`` — independent of every
    simulator RNG and of call order, so two plans built from the same
    :class:`ChaosConfig` return identical verdicts for identical jobs.
    State (how many faults each job has absorbed) lives in the parent
    process only; it is what bounds injection so sweeps still complete.
    """

    def __init__(self, config: ChaosConfig | None = None) -> None:
        self.config = config if config is not None else ChaosConfig()
        self._job_faults: dict[str, int] = {}     # digest -> injected so far
        self._cache_faults: dict[str, int] = {}
        self.injected: dict[str, int] = {}        # kind -> total injected
        self.recovered = 0

    # -- the deterministic core -------------------------------------------

    def _stream(self, scope: str, digest: str, ordinal: int) -> XorShift64:
        key = f"{self.config.seed}/{scope}/{digest}/{ordinal}"
        raw = hashlib.sha256(key.encode("utf-8")).digest()
        return XorShift64(int.from_bytes(raw[:8], "big") | 1)

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        obs.counter(f"exec/fault/{kind}").inc()

    # -- job faults --------------------------------------------------------

    def job_fault(self, digest: str, serial: bool = False) -> FaultAction | None:
        """The fault (if any) to inject into this execution of ``digest``.

        ``serial`` marks the in-process path, which cannot survive a real
        ``os._exit`` or an unbounded sleep: ``crash`` and ``hang`` verdicts
        are downgraded to transient exceptions there, keeping the injection
        *count* per job identical between serial and parallel runs.
        """
        config = self.config
        ordinal = self._job_faults.get(digest, 0)
        if ordinal >= config.max_faults_per_job:
            return None
        rng = self._stream("job", digest, ordinal)
        kind = None
        for candidate, rate in (("crash", config.crash_rate),
                                ("hang", config.hang_rate),
                                ("exception", config.exception_rate)):
            if rng.chance(rate) and kind is None:
                kind = candidate
        if kind is None:
            return None
        if serial and kind in ("crash", "hang"):
            kind = "exception"
        self._job_faults[digest] = ordinal + 1
        self._count(kind)
        if kind == "hang":
            return FaultAction("hang", seconds=config.hang_seconds)
        return FaultAction(kind)

    def faults_for(self, digest: str) -> int:
        """How many faults this plan has injected into job ``digest``."""
        return self._job_faults.get(digest, 0)

    def note_outcome(self, digest: str) -> None:
        """A job completed; if it absorbed any fault, count the recovery."""
        if self._job_faults.get(digest, 0):
            self.recovered += 1
            obs.counter("exec/fault/recovered").inc()

    # -- cache corruption --------------------------------------------------

    def corrupt_verdict(self, digest: str) -> str | None:
        """Decide (and account) whether this job's cache blob is corrupted.

        The decision half of :meth:`corrupt_blob`, split out so a
        *coordinator* process can draw the verdict and ship the mode to a
        remote worker as plain data (the worker applies it with
        :func:`corrupt_file` after writing its blob).  Deterministic in
        ``(seed, digest, ordinal)`` like every other verdict.
        """
        config = self.config
        ordinal = self._cache_faults.get(digest, 0)
        if ordinal >= config.max_faults_per_job:
            return None
        rng = self._stream("cache", digest, ordinal)
        if not rng.chance(config.cache_corrupt_rate):
            return None
        mode = CORRUPT_MODES[rng.next_below(len(CORRUPT_MODES))]
        self._cache_faults[digest] = ordinal + 1
        self._count("cache_corrupt")
        return mode

    def corrupt_blob(self, path: os.PathLike | str, digest: str) -> str | None:
        """Maybe corrupt the just-written blob at ``path``; returns the mode.

        Corruption is applied in place (bit flip in the middle byte, hard
        truncation, or replacement with well-formed foreign JSON) so the
        cache's integrity checking — not the filesystem — has to catch it.
        """
        mode = self.corrupt_verdict(digest)
        if mode is not None:
            corrupt_file(path, mode)
        return mode

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        total = sum(self.injected.values())
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
        return (f"chaos seed {self.config.seed:#x}: {total} fault(s) injected"
                + (f" ({kinds})" if kinds else "")
                + f", {self.recovered} job(s) recovered")


def corrupt_file(path: os.PathLike | str, mode: str) -> None:
    """Damage ``path`` in place according to ``mode``."""
    with open(path, "rb") as f:
        raw = f.read()
    if mode == "bitflip" and raw:
        mid = len(raw) // 2
        raw = raw[:mid] + bytes([raw[mid] ^ 0x01]) + raw[mid + 1:]
    elif mode == "truncate":
        raw = raw[: len(raw) // 2]
    else:  # foreign
        raw = FOREIGN_BLOB
    with open(path, "wb") as f:
        f.write(raw)


# ---------------------------------------------------------------------------
# Worker-side execution of a verdict.  Top-level and picklable, like
# repro.exec.jobs.run_job, so ProcessPoolExecutor can ship them.
# ---------------------------------------------------------------------------

def apply_fault(action: FaultAction) -> None:
    """Fire one fault verdict in the current process.

    ``crash`` never returns; ``hang`` sleeps for the action's duration and
    then raises (so an un-timed-out hang still resolves as a transient
    failure rather than a wrong result); ``exception`` raises immediately.
    """
    if action.kind == "crash":
        os._exit(86)
    if action.kind == "hang":
        time.sleep(action.seconds)
        raise InjectedFault(f"injected hang outlived {action.seconds}s")
    raise InjectedFault("injected transient fault")


def run_faulted(action: FaultAction | None, fn, *args):
    """Fire ``action`` (if any) before running the real payload ``fn``.

    With a live verdict the payload is never reached — the faulted
    execution dies, hangs or raises, and the *retry* (submitted without a
    verdict once the job's fault budget is spent) computes the result.
    """
    if action is not None:
        apply_fault(action)
    return fn(*args)
