"""Crash-safe sweep checkpointing: the per-run JSONL job journal.

A :class:`RunJournal` records one JSON line per finished job — digest,
spec, stats, and a sha256 payload checksum — flushed and fsynced as it is
appended, so the journal on disk is always a consistent prefix of the
sweep no matter how the process dies (OOM kill, ``kill -9``, power loss).
Re-attaching the same journal path resumes the sweep: finished jobs are
answered from the journal (their JSON round-trip is exact, so resumed
results are bit-identical to uninterrupted ones) and only unfinished jobs
are re-queued.  Records carry the :data:`repro.exec.cache.CODE_VERSION`
salt; a journal written by a semantically different simulator build is
ignored rather than trusted.

:func:`resume_guard` is the interactive half: it traps SIGINT/SIGTERM
around a journaled sweep so a Ctrl-C (or a polite ``kill``) flushes the
journal and prints the ``--resume`` hint before the process exits.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import repro.obs as obs

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.exec.jobs import JobSpec
    from repro.pipeline import SimStats

#: Journal record layout version (independent of the cache CODE_VERSION).
JOURNAL_SCHEMA = 1


def _exec_jobs():
    """Deferred import: :mod:`repro.exec.jobs` imports the eval runner,
    which would cycle back through this package at import time."""
    import repro.exec.jobs as jobs
    return jobs


def _code_version() -> str:
    from repro.exec.cache import CODE_VERSION
    return CODE_VERSION


def default_journal_path(name: str = "sweep") -> Path:
    """``<cache root>/journals/<name>.jsonl`` — journals live under the
    cache directory so one ``rm -rf`` clears all derived state."""
    from repro.exec.cache import default_cache_root
    return default_cache_root() / "journals" / f"{name}.jsonl"


def read_journal(path: str | os.PathLike, version: str | None = None
                 ) -> tuple[dict[str, tuple[dict, "SimStats"]], int, int]:
    """Read one journal file into ``{digest: (spec_dict, stats)}``.

    Returns ``(records, skipped, duplicates)``.  The validity rules are
    exactly :class:`RunJournal`'s: torn/foreign/other-version lines and
    checksum mismatches are skipped and counted, and only the *first*
    record per digest within one file counts (an append-only journal
    cannot legitimately complete one digest twice).
    """
    from repro.exec.cache import payload_checksum
    jobs = _exec_jobs()
    if version is None:
        version = _code_version()
    records: dict[str, tuple[dict, "SimStats"]] = {}
    skipped = 0
    duplicates = 0
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                if rec.get("version") != version:
                    skipped += 1
                    continue
                digest = rec["digest"]
                payload = {"spec": rec["spec"], "stats": rec["stats"]}
                if rec.get("sha256") != payload_checksum(payload):
                    skipped += 1
                    continue
                stats = jobs.stats_from_dict(rec["stats"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
                continue
            if digest in records:
                duplicates += 1
                continue
            records[digest] = (rec["spec"], stats)
    return records, skipped, duplicates


class RunJournal:
    """Append-only JSONL record of per-job outcomes, keyed by spec digest.

    Opening an existing path loads every valid record (torn trailing
    lines — the signature of a mid-append crash — are skipped and
    counted, as are records from other code versions or with checksum
    mismatches); :meth:`record` appends exactly one line per digest, so a
    resumed sweep can never journal a duplicate completion.
    """

    def __init__(self, path: str | os.PathLike, version: str | None = None) -> None:
        self.path = Path(path)
        self.version = version if version is not None else _code_version()
        self._done: dict[str, "SimStats"] = {}
        self._fh = None
        self.loaded = 0          # valid records recovered from disk at open
        self.appended = 0        # records written by this instance
        self.hits = 0            # jobs answered from the journal
        self.skipped_lines = 0   # torn/foreign/checksum-failed lines
        self.duplicates = 0      # same-digest lines beyond the first
        if self.path.exists():
            self._load()

    # -- reading -----------------------------------------------------------

    def _load(self) -> None:
        records, self.skipped_lines, self.duplicates = read_journal(
            self.path, self.version
        )
        self._done = {digest: stats for digest, (_, stats) in records.items()}
        self.loaded = len(self._done)

    def get(self, spec: "JobSpec") -> "SimStats | None":
        """The journaled result of ``spec``, or ``None`` if unfinished."""
        stats = self._done.get(spec.digest())
        if stats is not None:
            self.hits += 1
            obs.counter("exec/journal/resumed").inc()
        return stats

    def __contains__(self, spec: "JobSpec") -> bool:
        return spec.digest() in self._done

    def __len__(self) -> int:
        return len(self._done)

    # -- writing -----------------------------------------------------------

    def record(self, spec: "JobSpec", stats: "SimStats") -> bool:
        """Append one finished job; returns ``False`` if already journaled.

        The line is flushed *and* fsynced before this returns: once a job
        is reported complete, no crash can un-complete it.
        """
        from repro.exec.cache import payload_checksum
        jobs = _exec_jobs()
        digest = spec.digest()
        if digest in self._done:
            return False
        payload = {"spec": spec.as_dict(), "stats": jobs.stats_to_dict(stats)}
        rec = {
            "schema": JOURNAL_SCHEMA,
            "version": self.version,
            "digest": digest,
            "sha256": payload_checksum(payload),
            **payload,
        }
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line)
        self.flush()
        self._done[digest] = stats
        self.appended += 1
        obs.counter("exec/journal/records").inc()
        return True

    def flush(self) -> None:
        """Push appended records to stable storage."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        text = (f"journal {self.path}: {self.loaded} resumed, "
                f"{self.appended} recorded")
        if self.skipped_lines:
            text += f", {self.skipped_lines} invalid line(s) skipped"
        return text

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MergedJournal:
    """Read-only resume view folded from several per-worker journals.

    Duck-types :class:`RunJournal`'s read half (:meth:`get`,
    ``in``, ``len``) so resume logic can consume either.  It owns no file
    handle and refuses :meth:`record` — pass ``into=`` to
    :func:`merge_journals` when the merged state must also be persisted.
    """

    def __init__(self, done: dict, sources: int, skipped_lines: int,
                 duplicates: int) -> None:
        self._done = done
        self.sources = sources
        self.loaded = len(done)
        self.skipped_lines = skipped_lines
        self.duplicates = duplicates
        self.hits = 0

    def get(self, spec: "JobSpec") -> "SimStats | None":
        stats = self._done.get(spec.digest())
        if stats is not None:
            self.hits += 1
            obs.counter("exec/journal/resumed").inc()
        return stats

    def __contains__(self, spec: "JobSpec") -> bool:
        return spec.digest() in self._done

    def __len__(self) -> int:
        return len(self._done)

    def record(self, spec, stats) -> bool:
        raise TypeError(
            "MergedJournal is read-only; merge into a RunJournal "
            "(merge_journals(paths, into=journal)) to record new jobs"
        )

    def summary(self) -> str:
        text = (f"merged journal ({self.sources} source(s)): "
                f"{self.loaded} finished job(s)")
        if self.skipped_lines:
            text += f", {self.skipped_lines} invalid line(s) skipped"
        return text


def merge_journals(paths, into: RunJournal | None = None):
    """Fold multiple per-worker journals into one resume view.

    A distributed sweep writes one journal per worker; on ``--resume`` all
    of them (plus the driver's own) must count as finished work.  Records
    are folded **last-writer-wins on digest** across ``paths`` (in the
    order given — sort paths for a stable fold), and each journal's
    torn/foreign/tampered lines are skipped per file exactly as
    :class:`RunJournal` would.  Results are deterministic per digest, so
    which journal wins never changes the stats — last-writer-wins is
    about surviving duplicated completions, not choosing between answers.

    Without ``into`` the fold is returned as a read-only
    :class:`MergedJournal`.  With ``into`` (a writable
    :class:`RunJournal`), every digest the fold has and ``into`` lacks is
    **appended to it** — the primary journal becomes the consolidated
    resume state, so a later resume needs only that one file — and
    ``into`` is returned.  Paths that do not exist are skipped (a worker
    that never completed a job has no journal); unreadable ones raise.
    """
    folded: dict[str, tuple[dict, "SimStats"]] = {}
    sources = 0
    skipped = 0
    duplicates = 0
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        records, file_skipped, file_duplicates = read_journal(path)
        sources += 1
        skipped += file_skipped
        duplicates += file_duplicates
        for digest, rec in records.items():
            if digest in folded:
                duplicates += 1
            folded[digest] = rec          # last writer (later path) wins
    if into is None:
        return MergedJournal(
            {digest: stats for digest, (_, stats) in folded.items()},
            sources, skipped, duplicates,
        )
    jobs = _exec_jobs()
    for digest, (spec_dict, stats) in folded.items():
        if digest not in into._done:
            into.record(jobs.JobSpec.from_dict(spec_dict), stats)
    return into


@contextmanager
def resume_guard(journal: RunJournal, stream=None) -> Iterator[None]:
    """Trap SIGINT/SIGTERM around a journaled sweep.

    Both signals are converted to :class:`KeyboardInterrupt` so ``finally``
    blocks (pool shutdown, file handles) run; on the way out of *any*
    abnormal exit the journal is flushed and a resume hint naming the
    journal path is printed.  Signal handlers can only be installed from
    the main thread — elsewhere the guard degrades to flush-and-hint only.
    """
    out = stream if stream is not None else sys.stderr

    def _to_interrupt(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    previous: dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _to_interrupt)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
    try:
        yield
    except BaseException:
        journal.flush()
        print(
            f"\n[exec] sweep interrupted — {len(journal)} finished job(s) "
            f"journaled to {journal.path}\n"
            f"[exec] resume with: --resume {journal.path}",
            file=out,
        )
        raise
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
