"""Resilience engineering for the execution layer: chaos + recovery.

The BeBoP paper's core concern is recovering gracefully from value
misspeculation; this package applies the same discipline to the sweep
infrastructure itself, in three coupled layers:

* **Deterministic fault injection** — :class:`FaultPlan` /
  :class:`ChaosConfig` (:mod:`repro.chaos.plan`): seeded, reproducible
  worker crashes, hangs, transient exceptions and cache-blob corruption,
  threaded into :class:`repro.exec.Scheduler` and
  :class:`repro.exec.ResultCache` through explicit ``chaos=`` hooks with a
  zero-overhead ``None`` path.
* **Crash-safe checkpoint/resume** — :class:`RunJournal`
  (:mod:`repro.chaos.journal`): an append-only, fsynced JSONL record of
  per-job outcomes keyed by spec digest + code-version salt; attaching it
  to the scheduler (``journal=``) makes any sweep resumable after a kill,
  re-running only unfinished jobs with bit-identical results.
* **Cache integrity** — sha256 payload checksums on every cache blob,
  verified on read; corrupt blobs are quarantined to a ``corrupt/``
  subdirectory, never silently trusted or deleted
  (:mod:`repro.exec.cache`).

Observability: injections surface as ``exec/fault/*`` counters,
recoveries as ``exec/fault/recovered``, detected corruption as
``exec/cache/corrupt``, and journal activity as ``exec/journal/*``.
"""

from repro.chaos.journal import (
    JOURNAL_SCHEMA,
    MergedJournal,
    RunJournal,
    default_journal_path,
    merge_journals,
    read_journal,
    resume_guard,
)
from repro.chaos.plan import (
    CORRUPT_MODES,
    JOB_FAULT_KINDS,
    ChaosConfig,
    FaultAction,
    FaultPlan,
    InjectedFault,
    apply_fault,
    corrupt_file,
    parse_chaos_spec,
    run_faulted,
)

__all__ = [
    "CORRUPT_MODES",
    "ChaosConfig",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "JOB_FAULT_KINDS",
    "JOURNAL_SCHEMA",
    "MergedJournal",
    "RunJournal",
    "apply_fault",
    "corrupt_file",
    "default_journal_path",
    "merge_journals",
    "parse_chaos_spec",
    "read_journal",
    "resume_guard",
    "run_faulted",
]
