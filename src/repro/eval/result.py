"""Typed experiment results.

Every entry point in :mod:`repro.eval.experiments` used to return a bare
dict; callers had no way to recover *how* the numbers were produced (which
:class:`~repro.eval.runner.RunSpec`, how long it took, how much came out
of the result cache).  :class:`ExperimentResult` carries that provenance
alongside the rows while remaining a drop-in replacement: it implements
the full read-only :class:`~collections.abc.Mapping` protocol over its
rows and compares equal to the plain dict it would have been, so seed-era
code like ``fig5a(spec)["mcf"]["d-vtage"]`` and tests asserting
``result == {...}`` keep working unchanged.

Equality deliberately ignores :attr:`meta` — two runs of the same
experiment at the same spec are *the same result* even though one was
served from cache in milliseconds and the other simulated for minutes.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterator, Sequence


class ExperimentResult(Mapping):
    """Rows of one experiment plus the provenance that produced them.

    Parameters
    ----------
    experiment:
        The :data:`~repro.eval.experiments.KNOWN_EXPERIMENTS` id.
    rows:
        The legacy payload — exactly the dict the entry point used to
        return (workload- or config-keyed; values are floats, dicts or
        :class:`~repro.obs.CPIStack` objects depending on the experiment).
    columns:
        Inner-key presentation order for per-workload tables, or ``None``
        when the rows have no tabular inner structure.
    spec:
        The :class:`~repro.eval.runner.RunSpec` the sweep ran at
        (``None`` for pure-computation experiments like ``table3``).
    meta:
        Execution metadata: ``elapsed_seconds``, ``jobs``, and — when a
        result cache was attached — ``cache_hits`` / ``cache_misses``
        deltas for this sweep.  Excluded from equality.
    """

    __slots__ = ("experiment", "rows", "columns", "spec", "meta")

    def __init__(
        self,
        experiment: str,
        rows: Mapping,
        columns: Sequence[str] | None = None,
        spec: Any = None,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        self.experiment = experiment
        self.rows = dict(rows)
        self.columns = tuple(columns) if columns is not None else None
        self.spec = spec
        self.meta = dict(meta) if meta is not None else {}

    # -- Mapping protocol (delegates to rows) -----------------------------

    def __getitem__(self, key):
        return self.rows[key]

    def __iter__(self) -> Iterator:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    # Mapping provides keys/values/items/get/__contains__/__eq__; equality
    # is overridden because Mapping's compares only the item view and we
    # additionally want same-experiment/columns for typed comparisons.

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExperimentResult):
            return (
                self.experiment == other.experiment
                and self.columns == other.columns
                and self.rows == other.rows
            )
        if isinstance(other, Mapping):
            # Plain-dict comparison: the legacy contract.
            return self.rows == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable rows

    def __repr__(self) -> str:
        return (
            f"ExperimentResult({self.experiment!r}, rows={len(self.rows)}, "
            f"columns={self.columns!r}, meta={self.meta!r})"
        )

    def as_dict(self) -> dict:
        """The plain rows dict (a copy), shedding all provenance."""
        return dict(self.rows)
