"""Text rendering of experiment results.

The paper reports either per-benchmark bars (Fig 5, Fig 8) or
gmean-plus-[min, max] box summaries (Fig 6, Fig 7); these helpers produce
the matching text tables for EXPERIMENTS.md and the benches' console output.
"""

from __future__ import annotations

from repro.obs import CPI_COMPONENTS
from repro.eval.experiments import aggregate


def render_per_workload(
    title: str, rows: dict[str, dict[str, float]], column_order: list[str] | None = None
) -> str:
    """Per-benchmark table: one row per workload, one column per config.

    ``rows`` may be a plain dict or an
    :class:`~repro.eval.result.ExperimentResult`.  When ``column_order``
    is ``None``, the result's own ``columns`` attribute wins; failing
    that, columns appear in first-seen insertion order — the order the
    experiment produced them — never alphabetically resorted.
    """
    workloads = list(rows)
    columns = column_order
    if columns is None:
        columns = getattr(rows, "columns", None)
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows.values():
            for c in row:
                seen.setdefault(c)
        columns = list(seen)
    lines = [title, ""]
    header = f"{'workload':14s}" + "".join(f"{c:>18s}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for name in workloads:
        line = f"{name:14s}"
        for c in columns:
            value = rows[name].get(c)
            line += f"{value:18.3f}" if value is not None else f"{'-':>18s}"
        lines.append(line)
    # Aggregate row.
    line = f"{'gmean':14s}"
    for c in columns:
        values = {w: rows[w][c] for w in workloads if c in rows[w]}
        line += f"{aggregate(values)['gmean']:18.3f}" if values else f"{'-':>18s}"
    lines.append(line)
    return "\n".join(lines)


def render_box_summary(title: str, sweeps: dict[str, dict[str, float]]) -> str:
    """Box-plot style summary: one row per swept configuration.

    ``sweeps`` may be a plain dict or an
    :class:`~repro.eval.result.ExperimentResult` (any mapping of
    ``{config label: {workload: speedup}}``).
    """
    lines = [title, ""]
    header = f"{'config':22s}{'gmean':>10s}{'min':>10s}{'max':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for label, speedups in sweeps.items():
        agg = aggregate(speedups)
        lines.append(
            f"{label:22s}{agg['gmean']:10.3f}{agg['min']:10.3f}{agg['max']:10.3f}"
        )
    return "\n".join(lines)


def render_table2(results: dict[str, dict[str, float]]) -> str:
    """Table II: measured vs published baseline IPC."""
    lines = ["Table II — baseline IPC (ours vs paper)", ""]
    header = f"{'workload':14s}{'IPC (model)':>14s}{'IPC (paper)':>14s}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in results.items():
        lines.append(f"{name:14s}{row['ipc']:14.3f}{row['paper_ipc']:14.3f}")
    return "\n".join(lines)


def render_table3(results: dict[str, dict[str, float]]) -> str:
    """Table III: computed vs published storage (KB = 1000 bytes)."""
    lines = ["Table III — storage budgets", ""]
    header = (
        f"{'config':12s}{'computed KB':>13s}{'paper KB':>11s}"
        f"{'LVT':>9s}{'VT0':>9s}{'tagged':>9s}{'window':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in results.items():
        lines.append(
            f"{name:12s}{row['computed_kb']:13.2f}{row['paper_kb']:11.2f}"
            f"{row['lvt_kb']:9.2f}{row['vt0_kb']:9.2f}"
            f"{row['tagged_kb']:9.2f}{row['window_kb']:9.2f}"
        )
    return "\n".join(lines)


def render_cpi_stack(results) -> str:
    """CPI-stack table: one row per (workload × config), one column per
    attribution component, values as fractions of total cycles.

    ``results`` is the :func:`repro.eval.experiments.cpi_stack` result
    (any mapping of ``{workload: {config: CPIStack}}``).  Each stack is
    re-:meth:`~repro.obs.CPIStack.check`-ed before rendering so a table
    can never show a breakdown that does not sum to the run's cycles.
    """
    lines = ["CPI stacks — fraction of cycles by cause", ""]
    header = f"{'workload':12s}{'config':18s}{'CPI':>7s}" + "".join(
        f"{c:>16s}" for c in CPI_COMPONENTS
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, stacks in results.items():
        for config, stack in stacks.items():
            stack.check()
            line = f"{workload:12s}{config:18s}{stack.cpi:7.3f}"
            line += "".join(
                f"{stack.fraction(c):16.3f}" for c in CPI_COMPONENTS
            )
            lines.append(line)
    return "\n".join(lines)


def render_provenance(results) -> str:
    """Prediction-provenance tables: per-component share/accuracy, the
    speculative-window anchor breakdown, attribution outcomes, and one
    squash-cost row per recovery policy.

    ``results`` is the :func:`repro.eval.experiments.provenance` result
    (any mapping of ``{workload: {components, window, attribution,
    predictions, squash_cost}}``).
    """
    lines = ["Prediction provenance (BeBoP on EOLE_4_60, DnRDnR)", ""]
    header = (
        f"{'workload':12s}{'provider':>10s}{'preds':>9s}{'used':>9s}"
        f"{'share':>8s}{'accuracy':>10s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, row in results.items():
        components = row["components"]
        first = True
        for provider in sorted(components):
            c = components[provider]
            name_col = workload if first else ""
            first = False
            lines.append(
                f"{name_col:12s}{provider:>10s}{c['predictions']:9d}"
                f"{c['used']:9d}{c['share']:8.3f}{c['accuracy']:10.3f}"
            )
        if first:
            lines.append(f"{workload:12s}{'-':>10s}")
    lines.append("")
    lines.append("Prediction anchors (spec window vs LVT vs cold) "
                 "and attribution")
    header = (
        f"{'workload':12s}{'spec_window':>12s}{'lvt':>9s}{'cold':>9s}"
        f"{'reuse':>9s}{'attr miss':>11s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, row in results.items():
        window = row["window"]
        attribution = row["attribution"]
        lines.append(
            f"{workload:12s}{window.get('spec_window', 0):12d}"
            f"{window.get('lvt', 0):9d}{window.get('cold', 0):9d}"
            f"{window.get('reuse', 0):9d}{attribution['misses']:11d}"
        )
    lines.append("")
    lines.append("Squash cost per recovery policy (cycles from result to "
                 "refetch barrier)")
    header = (
        f"{'workload':12s}{'policy':>9s}{'count':>8s}{'mean':>8s}{'max':>7s}"
        f"  histogram"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, row in results.items():
        first = True
        for policy, cost in row["squash_cost"].items():
            name_col = workload if first else ""
            first = False
            hist = " ".join(
                f"{k}:{v}" for k, v in cost["histogram"].items()
            )
            lines.append(
                f"{name_col:12s}{policy:>9s}{cost['count']:8d}"
                f"{cost['mean']:8.2f}{cost['max']:7d}  {hist}"
            )
    return "\n".join(lines)


def render_h2p(results, top: int = 10) -> str:
    """Hard-to-predict PC tables: the worst-``top`` PCs per workload, and
    what fraction of the ``vp_squash + branch_redirect`` CPI-stack cycles
    the top 1/5/10 PCs own per workload and per workload class.

    ``results`` is the :func:`repro.eval.experiments.h2p` result (any
    mapping of ``{workload: {category, stack, attribution}}``).  Class
    shares are cycle-weighted: each workload contributes its own top-k
    share weighted by its attributed cycles, so the class row reads as
    "of this class's recovery cycles, the fraction owned by each
    workload's k costliest PCs".
    """
    lines = ["H2P attribution (BeBoP on EOLE_4_60, DnRDnR) — recovery "
             "cycles by static PC", ""]
    header = (
        f"{'workload':12s}{'pc':>10s}{'kind':>8s}{'cycles':>9s}"
        f"{'share':>8s}{'vp_sq':>7s}{'br_mp':>7s}{'attempts':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, row in results.items():
        attribution = row["attribution"]
        attributed = attribution["attributed_cycles"]
        first = True
        for rec in attribution["pcs"][:top]:
            name_col = workload if first else ""
            first = False
            share = rec["cycles"] / attributed if attributed else 0.0
            lines.append(
                f"{name_col:12s}{rec['pc']:>#10x}{rec['kind']:>8s}"
                f"{rec['cycles']:9d}{share:8.3f}{rec['vp_squashes']:7d}"
                f"{rec['branch_mispredicts']:7d}"
                f"{rec['vp_attempts'] + rec['branches']:9d}"
            )
        if first:
            lines.append(f"{workload:12s}{'-':>10s}")
    lines.append("")
    lines.append("Top-k PC share of vp_squash + branch_redirect cycles")
    header = (
        f"{'workload':12s}{'class':>7s}{'attributed':>12s}{'of cycles':>11s}"
        f"{'top1':>8s}{'top5':>8s}{'top10':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    by_class: dict[str, dict[int, float]] = {}
    class_cycles: dict[str, int] = {}
    for workload, row in results.items():
        attribution = row["attribution"]
        stack = row["stack"]
        category = row["category"]
        attributed = attribution["attributed_cycles"]
        shares = attribution["shares"]
        of_cycles = attributed / stack.cycles if stack.cycles else 0.0
        lines.append(
            f"{workload:12s}{category:>7s}{attributed:12d}{of_cycles:11.3f}"
            + "".join(f"{shares[n]:8.3f}" for n in (1, 5, 10))
        )
        class_cycles[category] = class_cycles.get(category, 0) + attributed
        acc = by_class.setdefault(category, dict.fromkeys((1, 5, 10), 0.0))
        for n in (1, 5, 10):
            acc[n] += shares[n] * attributed
    lines.append("")
    lines.append("Per workload class (cycle-weighted)")
    header = (
        f"{'class':12s}{'attributed':>12s}"
        f"{'top1':>8s}{'top5':>8s}{'top10':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for category in sorted(by_class):
        total = class_cycles[category]
        lines.append(
            f"{category:12s}{total:12d}"
            + "".join(
                f"{(by_class[category][n] / total if total else 0.0):8.3f}"
                for n in (1, 5, 10)
            )
        )
    return "\n".join(lines)


def render_partial_strides(results: dict[int, dict[str, object]]) -> str:
    """§VI-B(a): stride width vs performance vs storage."""
    lines = ["Partial strides (§VI-B-a)", ""]
    header = f"{'stride bits':>12s}{'gmean':>10s}{'min':>10s}{'storage KB':>12s}"
    lines.append(header)
    lines.append("-" * len(header))
    for bits, row in results.items():
        agg = row["aggregate"]
        lines.append(
            f"{bits:12d}{agg['gmean']:10.3f}{agg['min']:10.3f}"  # type: ignore[index]
            f"{row['storage_kb']:12.1f}"
        )
    return "\n".join(lines)
