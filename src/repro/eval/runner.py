"""Shared machinery for running experiment configurations.

The paper simulates 50M warmup + 100M measured instructions per Simpoint
slice; at Python speed we default to 120K µ-ops with a 40K warmup, which is
where predictor confidence (FPC needs a couple hundred correct predictions
per entry) has visibly converged for every workload class.  All experiment
entry points accept ``uops``/``warmup`` overrides so the benches can run
smaller and EXPERIMENTS.md runs larger.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.bebop import (
    BeBoPEngine,
    BlockDVTAGE,
    BlockDVTAGEConfig,
    RecoveryPolicy,
    SpeculativeWindow,
)
from repro.pipeline import (
    BASELINE_6_60,
    PipelineModel,
    SimStats,
    baseline_vp_6_60,
    eole_4_60,
)
from repro.pipeline.vp import InstructionVPAdapter
from repro.predictors import (
    DVTAGEPredictor,
    LastValuePredictor,
    TwoDeltaStridePredictor,
    ValuePredictor,
    VTAGE2DStrideHybrid,
    VTAGEPredictor,
)
from repro.workloads import Trace, build_workload, generate_trace
from repro.workloads.suite import all_workload_names

DEFAULT_TRACE_UOPS = 120_000
DEFAULT_WARMUP_UOPS = 40_000

#: Trace cache keyed by (workload, uop count) — traces are deterministic, so
#: recomputing an evicted one is pure wall-clock, never a correctness issue.
#: LRU-bounded: one full-suite pass at a single scale fits, but a multi-scale
#: run (36 workloads × several uop counts) no longer grows without limit.
_TRACE_CACHE: OrderedDict[tuple[str, int], Trace] = OrderedDict()
_TRACE_CACHE_LIMIT = 48


@dataclass(frozen=True)
class RunSpec:
    """Common knobs of one experiment run."""

    uops: int = DEFAULT_TRACE_UOPS
    warmup: int = DEFAULT_WARMUP_UOPS
    workloads: tuple[str, ...] | None = None   # None = the full suite

    def names(self) -> tuple[str, ...]:
        return self.workloads if self.workloads is not None else all_workload_names()


def get_trace(name: str, uops: int = DEFAULT_TRACE_UOPS) -> Trace:
    """Build (or fetch from the LRU cache) the dynamic trace of a workload."""
    key = (name, uops)
    if key in _TRACE_CACHE:
        _TRACE_CACHE.move_to_end(key)
        return _TRACE_CACHE[key]
    kernel = build_workload(name)
    trace = generate_trace(kernel.program, uops, name=name, init_mem=kernel.init_mem)
    _TRACE_CACHE[key] = trace
    while len(_TRACE_CACHE) > _TRACE_CACHE_LIMIT:
        _TRACE_CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


def set_trace_cache_limit(limit: int) -> None:
    """Change the LRU bound (evicting immediately if now over it)."""
    global _TRACE_CACHE_LIMIT
    if limit < 1:
        raise ValueError(f"trace cache limit must be >= 1, got {limit}")
    _TRACE_CACHE_LIMIT = limit
    while len(_TRACE_CACHE) > _TRACE_CACHE_LIMIT:
        _TRACE_CACHE.popitem(last=False)


def make_instr_predictor(
    kind: str, table_backend: str | None = None, **overrides: object
) -> ValuePredictor:
    """Instruction-based predictor by Fig 5a name.

    ``table_backend`` selects the :mod:`repro.common.tables` storage
    backend (``None`` = the process-global default).
    """
    factories = {
        "lvp": LastValuePredictor,
        "2d-stride": TwoDeltaStridePredictor,
        "vtage": VTAGEPredictor,
        "vtage-2d-stride": VTAGE2DStrideHybrid,
        "d-vtage": DVTAGEPredictor,
    }
    try:
        factory = factories[kind]
    except KeyError:
        raise ValueError(
            f"unknown predictor kind {kind!r}; known: {', '.join(factories)}"
        ) from None
    overrides.setdefault("table_backend", table_backend)
    return factory(**overrides)  # type: ignore[arg-type]


def make_bebop_engine(
    config: BlockDVTAGEConfig | None = None,
    window: int | None = 32,
    policy: RecoveryPolicy = RecoveryPolicy.DNRDNR,
    table_backend: str | None = None,
) -> BeBoPEngine:
    """A BeBoP engine: block D-VTAGE + speculative window + policy.

    ``window`` follows Fig 7b's convention: ``None`` = infinite, ``0`` = no
    speculative window at all.  ``table_backend`` selects the
    :mod:`repro.common.tables` storage backend (``None`` = global default).
    """
    predictor = BlockDVTAGE(
        config if config is not None else BlockDVTAGEConfig(),
        table_backend=table_backend,
    )
    return BeBoPEngine(predictor, SpeculativeWindow(window), policy)


def run_baseline(
    trace: Trace,
    warmup: int = DEFAULT_WARMUP_UOPS,
    cpi=None,
    recorder=None,
    attrib=None,
    banks=None,
) -> SimStats:
    """Baseline_6_60: no value prediction.

    ``cpi`` (here and in the other runners) is an optional
    :class:`~repro.obs.CPIStackCollector` that receives the run's cycle
    attribution, ``recorder`` an optional
    :class:`~repro.obs.TimelineRecorder` capturing per-µop stage timelines
    and prediction provenance, ``attrib`` an optional
    :class:`~repro.obs.PCAttribution` charging squash/redirect recovery
    cycles to static PCs, and ``banks`` an optional
    :class:`~repro.obs.BankTelemetry` sampling predictor-table occupancy;
    ``None`` (the default for all) keeps the model on its uninstrumented
    fast path.
    """
    return PipelineModel(BASELINE_6_60).run(
        trace, warmup_uops=warmup, cpi=cpi, recorder=recorder,
        attrib=attrib, banks=banks,
    )


def run_instr_vp(
    trace: Trace,
    predictor: ValuePredictor,
    warmup: int = DEFAULT_WARMUP_UOPS,
    cpi=None,
    recorder=None,
    attrib=None,
    banks=None,
) -> SimStats:
    """Baseline_VP_6_60 with an instruction-based predictor."""
    model = PipelineModel(baseline_vp_6_60(), InstructionVPAdapter(predictor))
    return model.run(
        trace, warmup_uops=warmup, cpi=cpi, recorder=recorder,
        attrib=attrib, banks=banks,
    )


def run_eole_instr_vp(
    trace: Trace,
    predictor: ValuePredictor,
    warmup: int = DEFAULT_WARMUP_UOPS,
    cpi=None,
    recorder=None,
    attrib=None,
    banks=None,
) -> SimStats:
    """EOLE_4_60 with an instruction-based predictor (Fig 5b)."""
    model = PipelineModel(eole_4_60(), InstructionVPAdapter(predictor))
    return model.run(
        trace, warmup_uops=warmup, cpi=cpi, recorder=recorder,
        attrib=attrib, banks=banks,
    )


def run_bebop_eole(
    trace: Trace,
    engine: BeBoPEngine,
    warmup: int = DEFAULT_WARMUP_UOPS,
    cpi=None,
    recorder=None,
    attrib=None,
    banks=None,
) -> SimStats:
    """EOLE_4_60 with block-based (BeBoP) value prediction."""
    model = PipelineModel(eole_4_60(), engine)
    return model.run(
        trace, warmup_uops=warmup, cpi=cpi, recorder=recorder,
        attrib=attrib, banks=banks,
    )
