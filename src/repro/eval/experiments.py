"""One entry point per table/figure of the paper's Section VI.

Every function returns plain data structures (dicts keyed by workload /
configuration) so tests can assert on shapes and the reporting module can
render them.  Speedups are IPC ratios on identical traces; aggregates use
the geometric mean like the paper.

Execution is delegated to :mod:`repro.exec`: each sweep is decomposed into
a flat list of :class:`~repro.exec.JobSpec` cells and fanned out through
:func:`repro.exec.run_specs`, so one ``repro.exec.configure(...)`` call
switches the whole module between serial, parallel and cached execution
without changing any result (results are collected in spec order and each
cell is a pure function of its spec).
"""

from __future__ import annotations

from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.pipeline.stats import gmean
from repro.storage import TABLE_III, TableIIIConfig, breakdown
from repro.eval.runner import RunSpec


def _exec():
    """The :mod:`repro.exec` API, imported lazily.

    ``repro.exec.jobs`` imports :mod:`repro.eval.runner`; importing
    ``repro.exec`` at this module's load time would therefore cycle
    through ``repro.eval.__init__`` when ``repro.exec`` is imported
    first.  Deferring to call time breaks the cycle in both directions.
    """
    import repro.exec as exec_api
    return exec_api

#: Experiment ids the driver can run/skip, in report order.
KNOWN_EXPERIMENTS = (
    "table2",
    "table3",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "partial_strides",
    "fig7a",
    "fig7b",
    "fig8",
)

#: Fig 5a predictor line-up, in the paper's legend order.
FIG5A_PREDICTORS = ("2d-stride", "vtage", "vtage-2d-stride", "d-vtage")

#: Fig 6a entry geometries: (npred, base entries, tagged entries).
FIG6A_GEOMETRIES = (
    (4, 1024, 128),
    (6, 1024, 128),
    (8, 1024, 128),
    (4, 2048, 256),
    (6, 2048, 256),
    (8, 2048, 256),
)

#: Fig 6b geometries at npred=6: (base entries, tagged entries).
FIG6B_GEOMETRIES = (
    (512, 128),
    (1024, 128),
    (2048, 128),
    (512, 256),
    (1024, 256),
    (2048, 256),
)

#: §VI-B(a) partial stride widths.
PARTIAL_STRIDE_BITS = (64, 32, 16, 8)

#: Fig 7b speculative window sizes (None = infinite, 0 = no window).
FIG7B_WINDOW_SIZES = (None, 64, 56, 48, 32, 16, 0)

#: Table III / Fig 8 final configurations.
FIG8_CONFIGS = {
    "Small_4p": (BlockDVTAGEConfig(npred=4, base_entries=256, tagged_entries=128,
                                   stride_bits=8), 32),
    "Small_6p": (BlockDVTAGEConfig(npred=6, base_entries=128, tagged_entries=128,
                                   stride_bits=8), 32),
    "Medium": (BlockDVTAGEConfig(npred=6, base_entries=256, tagged_entries=256,
                                 stride_bits=8), 32),
    "Large": (BlockDVTAGEConfig(npred=6, base_entries=512, tagged_entries=256,
                                stride_bits=16), 56),
}


def validate_experiment_ids(ids) -> None:
    """Reject unknown experiment ids (typos would silently run everything)."""
    unknown = sorted(set(ids) - set(KNOWN_EXPERIMENTS))
    if unknown:
        raise ValueError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"known: {', '.join(KNOWN_EXPERIMENTS)}"
        )


def _ipcs(jobs, label: str = "") -> list[float]:
    """Fan a flat job list out through the scheduler; IPCs in job order."""
    return [stats.ipc for stats in _exec().run_specs(jobs, label=label)]


def _baselines(spec: RunSpec) -> dict[str, float]:
    """Baseline_6_60 IPC per workload."""
    names = spec.names()
    jobs = [_exec().baseline_job(n, spec.uops, spec.warmup) for n in names]
    return dict(zip(names, _ipcs(jobs, "baselines")))


def aggregate(speedups: dict[str, float]) -> dict[str, float]:
    """The paper's box-plot summary: gmean plus min and max."""
    values = list(speedups.values())
    return {"gmean": gmean(values), "min": min(values), "max": max(values)}


# ---------------------------------------------------------------------------
# Table II — baseline IPC per benchmark.
# ---------------------------------------------------------------------------

def table2_ipc(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Per-workload baseline IPC next to the paper's Table II IPC."""
    from repro.workloads.suite import get_spec

    names = spec.names()
    ipcs = _baselines(spec)
    return {
        name: {"ipc": ipcs[name], "paper_ipc": get_spec(name).paper_ipc}
        for name in names
    }


# ---------------------------------------------------------------------------
# Fig 5a — instruction-based predictors over Baseline_6_60.
# ---------------------------------------------------------------------------

def fig5a(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Speedup of each predictor over Baseline_6_60, per workload."""
    names = spec.names()
    base = _baselines(spec)
    jobs = [
        _exec().instr_vp_job(name, kind, spec.uops, spec.warmup)
        for kind in FIG5A_PREDICTORS
        for name in names
    ]
    ipcs = iter(_ipcs(jobs, "fig5a"))
    out: dict[str, dict[str, float]] = {name: {} for name in names}
    for kind in FIG5A_PREDICTORS:
        for name in names:
            out[name][kind] = next(ipcs) / base[name]
    return out


# ---------------------------------------------------------------------------
# Fig 5b — EOLE_4_60 over Baseline_VP_6_60 (both with instr D-VTAGE).
# ---------------------------------------------------------------------------

def fig5b(spec: RunSpec = RunSpec()) -> dict[str, float]:
    """EOLE at issue-4 should preserve Baseline_VP_6_60 performance."""
    names = spec.names()
    jobs = [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup)
            for n in names]
    jobs += [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup, eole=True)
             for n in names]
    ipcs = _ipcs(jobs, "fig5b")
    vp6, eole4 = ipcs[: len(names)], ipcs[len(names):]
    return {name: eole4[i] / vp6[i] for i, name in enumerate(names)}


# ---------------------------------------------------------------------------
# Fig 6 — BeBoP geometry sweeps (speedup over EOLE_4_60 without... the paper
# normalises to the idealistic EOLE_4_60 with instruction-based D-VTAGE).
# ---------------------------------------------------------------------------

def _eole_reference(spec: RunSpec) -> dict[str, float]:
    """EOLE_4_60 with idealistic instruction-based D-VTAGE (the Fig 6/7
    normalisation baseline)."""
    names = spec.names()
    jobs = [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup, eole=True)
            for n in names]
    return dict(zip(names, _ipcs(jobs, "eole-reference")))


def _bebop_sweep(
    spec: RunSpec,
    cells: list[tuple[str, BlockDVTAGEConfig, int | None, RecoveryPolicy]],
    label: str,
) -> dict[str, dict[str, float]]:
    """Shared Fig 6/7 shape: {config label: {workload: speedup over EOLE}}.

    ``cells`` is one (label, config, window, policy) per swept configuration;
    the whole (configuration × workload) grid goes out as a single batch.
    """
    names = spec.names()
    reference = _eole_reference(spec)
    jobs = [
        _exec().bebop_job(name, config, window, policy, spec.uops, spec.warmup)
        for _, config, window, policy in cells
        for name in names
    ]
    ipcs = iter(_ipcs(jobs, label))
    out: dict[str, dict[str, float]] = {}
    for row_label, *_ in cells:
        out[row_label] = {name: next(ipcs) / reference[name] for name in names}
    return out


def fig6a(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Npred / table-size sweep: {config label: {workload: speedup}}."""
    cells = []
    for npred, base_entries, tagged_entries in FIG6A_GEOMETRIES:
        label = f"{npred}p {base_entries // 1024}K+6x{tagged_entries}"
        config = BlockDVTAGEConfig(
            npred=npred, base_entries=base_entries, tagged_entries=tagged_entries
        )
        cells.append((label, config, None, RecoveryPolicy.DNRDNR))
    return _bebop_sweep(spec, cells, "fig6a")


def fig6b(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Base-size vs tagged-size sweep at 6 predictions per entry."""
    cells = []
    for base_entries, tagged_entries in FIG6B_GEOMETRIES:
        base_label = f"{base_entries // 1024}K" if base_entries >= 1024 else str(base_entries)
        label = f"{base_label}+6x{tagged_entries}"
        config = BlockDVTAGEConfig(
            npred=6, base_entries=base_entries, tagged_entries=tagged_entries
        )
        cells.append((label, config, None, RecoveryPolicy.DNRDNR))
    return _bebop_sweep(spec, cells, "fig6b")


# ---------------------------------------------------------------------------
# §VI-B(a) — partial strides.
# ---------------------------------------------------------------------------

def partial_strides(spec: RunSpec = RunSpec()) -> dict[int, dict[str, object]]:
    """Stride width sweep: speedup over the EOLE reference + storage."""
    cells = [
        (str(bits), BlockDVTAGEConfig(stride_bits=bits), None,
         RecoveryPolicy.DNRDNR)
        for bits in PARTIAL_STRIDE_BITS
    ]
    sweeps = _bebop_sweep(spec, cells, "partial-strides")
    out: dict[int, dict[str, object]] = {}
    for bits in PARTIAL_STRIDE_BITS:
        speedups = sweeps[str(bits)]
        storage = breakdown(
            TableIIIConfig(
                name=f"stride{bits}",
                base_entries=2048,
                tagged_entries=256,
                components=6,
                spec_window_entries=0,
                stride_bits=bits,
                npred=6,
                paper_kb=0.0,
            )
        )
        out[bits] = {
            "speedups": speedups,
            "aggregate": aggregate(speedups),
            "storage_kb": storage.total_kb,
        }
    return out


# ---------------------------------------------------------------------------
# Fig 7a — recovery policies; Fig 7b — window sizes.
# ---------------------------------------------------------------------------

def fig7a(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Recovery-policy sweep with an infinite speculative window."""
    cells = [
        (policy.value, BlockDVTAGEConfig(), None, policy)
        for policy in (RecoveryPolicy.IDEAL, RecoveryPolicy.REPRED,
                       RecoveryPolicy.DNRDNR, RecoveryPolicy.DNRR)
    ]
    return _bebop_sweep(spec, cells, "fig7a")


def fig7b(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Speculative-window size sweep under the DnRDnR policy."""
    cells = []
    for size in FIG7B_WINDOW_SIZES:
        label = "inf" if size is None else ("none" if size == 0 else str(size))
        cells.append((label, BlockDVTAGEConfig(), size, RecoveryPolicy.DNRDNR))
    return _bebop_sweep(spec, cells, "fig7b")


# ---------------------------------------------------------------------------
# Table III — storage budgets; Fig 8 — final configurations.
# ---------------------------------------------------------------------------

def table3_storage() -> dict[str, dict[str, float]]:
    """Computed vs published storage of the four final configurations."""
    out = {}
    for config in TABLE_III:
        b = breakdown(config)
        out[config.name] = {
            "computed_kb": b.total_kb,
            "paper_kb": config.paper_kb,
            "lvt_kb": b.lvt_bits / 8 / 1000,
            "vt0_kb": b.vt0_bits / 8 / 1000,
            "tagged_kb": b.tagged_bits / 8 / 1000,
            "window_kb": b.window_bits / 8 / 1000,
        }
    return out


def fig8(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Final configurations over Baseline_6_60, plus the two references.

    Returns {config label: {workload: speedup over Baseline_6_60}} for
    Baseline_VP_6_60, EOLE_4_60 (both idealistic instruction-based D-VTAGE)
    and the four Table III block-based configurations.
    """
    names = spec.names()
    base = _baselines(spec)

    jobs = [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup)
            for n in names]
    jobs += [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup, eole=True)
             for n in names]
    for config, window in FIG8_CONFIGS.values():
        jobs += [
            _exec().bebop_job(n, config, window, RecoveryPolicy.DNRDNR,
                              spec.uops, spec.warmup)
            for n in names
        ]
    ipcs = iter(_ipcs(jobs, "fig8"))

    out: dict[str, dict[str, float]] = {}
    for label in ("Baseline_VP_6_60", "EOLE_4_60", *FIG8_CONFIGS):
        out[label] = {name: next(ipcs) / base[name] for name in names}
    return out
