"""One entry point per table/figure of the paper's Section VI.

Every function returns plain data structures (dicts keyed by workload /
configuration) so tests can assert on shapes and the reporting module can
render them.  Speedups are IPC ratios on identical traces; aggregates use
the geometric mean like the paper.
"""

from __future__ import annotations

from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.pipeline.stats import gmean
from repro.storage import TABLE_III, TableIIIConfig, breakdown
from repro.eval.runner import (
    RunSpec,
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_eole_instr_vp,
    run_instr_vp,
)

#: Fig 5a predictor line-up, in the paper's legend order.
FIG5A_PREDICTORS = ("2d-stride", "vtage", "vtage-2d-stride", "d-vtage")

#: Fig 6a entry geometries: (npred, base entries, tagged entries).
FIG6A_GEOMETRIES = (
    (4, 1024, 128),
    (6, 1024, 128),
    (8, 1024, 128),
    (4, 2048, 256),
    (6, 2048, 256),
    (8, 2048, 256),
)

#: Fig 6b geometries at npred=6: (base entries, tagged entries).
FIG6B_GEOMETRIES = (
    (512, 128),
    (1024, 128),
    (2048, 128),
    (512, 256),
    (1024, 256),
    (2048, 256),
)

#: §VI-B(a) partial stride widths.
PARTIAL_STRIDE_BITS = (64, 32, 16, 8)

#: Fig 7b speculative window sizes (None = infinite, 0 = no window).
FIG7B_WINDOW_SIZES = (None, 64, 56, 48, 32, 16, 0)

#: Table III / Fig 8 final configurations.
FIG8_CONFIGS = {
    "Small_4p": (BlockDVTAGEConfig(npred=4, base_entries=256, tagged_entries=128,
                                   stride_bits=8), 32),
    "Small_6p": (BlockDVTAGEConfig(npred=6, base_entries=128, tagged_entries=128,
                                   stride_bits=8), 32),
    "Medium": (BlockDVTAGEConfig(npred=6, base_entries=256, tagged_entries=256,
                                 stride_bits=8), 32),
    "Large": (BlockDVTAGEConfig(npred=6, base_entries=512, tagged_entries=256,
                                stride_bits=16), 56),
}


def _baselines(spec: RunSpec) -> dict[str, float]:
    """Baseline_6_60 IPC per workload."""
    out = {}
    for name in spec.names():
        out[name] = run_baseline(get_trace(name, spec.uops), spec.warmup).ipc
    return out


def aggregate(speedups: dict[str, float]) -> dict[str, float]:
    """The paper's box-plot summary: gmean plus min and max."""
    values = list(speedups.values())
    return {"gmean": gmean(values), "min": min(values), "max": max(values)}


# ---------------------------------------------------------------------------
# Table II — baseline IPC per benchmark.
# ---------------------------------------------------------------------------

def table2_ipc(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Per-workload baseline IPC next to the paper's Table II IPC."""
    from repro.workloads.suite import get_spec

    out: dict[str, dict[str, float]] = {}
    for name in spec.names():
        stats = run_baseline(get_trace(name, spec.uops), spec.warmup)
        out[name] = {"ipc": stats.ipc, "paper_ipc": get_spec(name).paper_ipc}
    return out


# ---------------------------------------------------------------------------
# Fig 5a — instruction-based predictors over Baseline_6_60.
# ---------------------------------------------------------------------------

def fig5a(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Speedup of each predictor over Baseline_6_60, per workload."""
    base = _baselines(spec)
    out: dict[str, dict[str, float]] = {name: {} for name in spec.names()}
    for kind in FIG5A_PREDICTORS:
        for name in spec.names():
            stats = run_instr_vp(
                get_trace(name, spec.uops), make_instr_predictor(kind), spec.warmup
            )
            out[name][kind] = stats.ipc / base[name]
    return out


# ---------------------------------------------------------------------------
# Fig 5b — EOLE_4_60 over Baseline_VP_6_60 (both with instr D-VTAGE).
# ---------------------------------------------------------------------------

def fig5b(spec: RunSpec = RunSpec()) -> dict[str, float]:
    """EOLE at issue-4 should preserve Baseline_VP_6_60 performance."""
    out: dict[str, float] = {}
    for name in spec.names():
        trace = get_trace(name, spec.uops)
        vp6 = run_instr_vp(trace, make_instr_predictor("d-vtage"), spec.warmup)
        eole4 = run_eole_instr_vp(trace, make_instr_predictor("d-vtage"), spec.warmup)
        out[name] = eole4.ipc / vp6.ipc
    return out


# ---------------------------------------------------------------------------
# Fig 6 — BeBoP geometry sweeps (speedup over EOLE_4_60 without... the paper
# normalises to the idealistic EOLE_4_60 with instruction-based D-VTAGE).
# ---------------------------------------------------------------------------

def _eole_reference(spec: RunSpec) -> dict[str, float]:
    """EOLE_4_60 with idealistic instruction-based D-VTAGE (the Fig 6/7
    normalisation baseline)."""
    out = {}
    for name in spec.names():
        out[name] = run_eole_instr_vp(
            get_trace(name, spec.uops), make_instr_predictor("d-vtage"), spec.warmup
        ).ipc
    return out


def fig6a(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Npred / table-size sweep: {config label: {workload: speedup}}."""
    reference = _eole_reference(spec)
    out: dict[str, dict[str, float]] = {}
    for npred, base_entries, tagged_entries in FIG6A_GEOMETRIES:
        label = f"{npred}p {base_entries // 1024}K+6x{tagged_entries}"
        config = BlockDVTAGEConfig(
            npred=npred, base_entries=base_entries, tagged_entries=tagged_entries
        )
        row = {}
        for name in spec.names():
            engine = make_bebop_engine(config, window=None)
            stats = run_bebop_eole(get_trace(name, spec.uops), engine, spec.warmup)
            row[name] = stats.ipc / reference[name]
        out[label] = row
    return out


def fig6b(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Base-size vs tagged-size sweep at 6 predictions per entry."""
    reference = _eole_reference(spec)
    out: dict[str, dict[str, float]] = {}
    for base_entries, tagged_entries in FIG6B_GEOMETRIES:
        base_label = f"{base_entries // 1024}K" if base_entries >= 1024 else str(base_entries)
        label = f"{base_label}+6x{tagged_entries}"
        config = BlockDVTAGEConfig(
            npred=6, base_entries=base_entries, tagged_entries=tagged_entries
        )
        row = {}
        for name in spec.names():
            engine = make_bebop_engine(config, window=None)
            stats = run_bebop_eole(get_trace(name, spec.uops), engine, spec.warmup)
            row[name] = stats.ipc / reference[name]
        out[label] = row
    return out


# ---------------------------------------------------------------------------
# §VI-B(a) — partial strides.
# ---------------------------------------------------------------------------

def partial_strides(spec: RunSpec = RunSpec()) -> dict[int, dict[str, object]]:
    """Stride width sweep: speedup over the EOLE reference + storage."""
    reference = _eole_reference(spec)
    out: dict[int, dict[str, object]] = {}
    for bits in PARTIAL_STRIDE_BITS:
        config = BlockDVTAGEConfig(stride_bits=bits)
        speedups = {}
        for name in spec.names():
            engine = make_bebop_engine(config, window=None)
            stats = run_bebop_eole(get_trace(name, spec.uops), engine, spec.warmup)
            speedups[name] = stats.ipc / reference[name]
        storage = breakdown(
            TableIIIConfig(
                name=f"stride{bits}",
                base_entries=2048,
                tagged_entries=256,
                components=6,
                spec_window_entries=0,
                stride_bits=bits,
                npred=6,
                paper_kb=0.0,
            )
        )
        out[bits] = {
            "speedups": speedups,
            "aggregate": aggregate(speedups),
            "storage_kb": storage.total_kb,
        }
    return out


# ---------------------------------------------------------------------------
# Fig 7a — recovery policies; Fig 7b — window sizes.
# ---------------------------------------------------------------------------

def fig7a(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Recovery-policy sweep with an infinite speculative window."""
    reference = _eole_reference(spec)
    out: dict[str, dict[str, float]] = {}
    for policy in (RecoveryPolicy.IDEAL, RecoveryPolicy.REPRED,
                   RecoveryPolicy.DNRDNR, RecoveryPolicy.DNRR):
        row = {}
        for name in spec.names():
            engine = make_bebop_engine(window=None, policy=policy)
            stats = run_bebop_eole(get_trace(name, spec.uops), engine, spec.warmup)
            row[name] = stats.ipc / reference[name]
        out[policy.value] = row
    return out


def fig7b(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Speculative-window size sweep under the DnRDnR policy."""
    reference = _eole_reference(spec)
    out: dict[str, dict[str, float]] = {}
    for size in FIG7B_WINDOW_SIZES:
        label = "inf" if size is None else ("none" if size == 0 else str(size))
        row = {}
        for name in spec.names():
            engine = make_bebop_engine(window=size, policy=RecoveryPolicy.DNRDNR)
            stats = run_bebop_eole(get_trace(name, spec.uops), engine, spec.warmup)
            row[name] = stats.ipc / reference[name]
        out[label] = row
    return out


# ---------------------------------------------------------------------------
# Table III — storage budgets; Fig 8 — final configurations.
# ---------------------------------------------------------------------------

def table3_storage() -> dict[str, dict[str, float]]:
    """Computed vs published storage of the four final configurations."""
    out = {}
    for config in TABLE_III:
        b = breakdown(config)
        out[config.name] = {
            "computed_kb": b.total_kb,
            "paper_kb": config.paper_kb,
            "lvt_kb": b.lvt_bits / 8 / 1000,
            "vt0_kb": b.vt0_bits / 8 / 1000,
            "tagged_kb": b.tagged_bits / 8 / 1000,
            "window_kb": b.window_bits / 8 / 1000,
        }
    return out


def fig8(spec: RunSpec = RunSpec()) -> dict[str, dict[str, float]]:
    """Final configurations over Baseline_6_60, plus the two references.

    Returns {config label: {workload: speedup over Baseline_6_60}} for
    Baseline_VP_6_60, EOLE_4_60 (both idealistic instruction-based D-VTAGE)
    and the four Table III block-based configurations.
    """
    base = _baselines(spec)
    out: dict[str, dict[str, float]] = {}

    row = {}
    for name in spec.names():
        stats = run_instr_vp(
            get_trace(name, spec.uops), make_instr_predictor("d-vtage"), spec.warmup
        )
        row[name] = stats.ipc / base[name]
    out["Baseline_VP_6_60"] = row

    row = {}
    for name in spec.names():
        stats = run_eole_instr_vp(
            get_trace(name, spec.uops), make_instr_predictor("d-vtage"), spec.warmup
        )
        row[name] = stats.ipc / base[name]
    out["EOLE_4_60"] = row

    for label, (config, window) in FIG8_CONFIGS.items():
        row = {}
        for name in spec.names():
            engine = make_bebop_engine(config, window=window,
                                       policy=RecoveryPolicy.DNRDNR)
            stats = run_bebop_eole(get_trace(name, spec.uops), engine, spec.warmup)
            row[name] = stats.ipc / base[name]
        out[label] = row
    return out
