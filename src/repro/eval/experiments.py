"""One entry point per table/figure of the paper's Section VI.

Every function returns an :class:`~repro.eval.result.ExperimentResult` —
the rows (dicts keyed by workload / configuration, exactly what these
functions returned before the typed API) plus the :class:`RunSpec`
provenance, a column presentation order, and execution metadata (elapsed
time, cache hit/miss deltas).  ``ExperimentResult`` implements the full
read-only mapping protocol over its rows and compares equal to the plain
dict, so existing subscripting and assertions keep working.  Speedups are
IPC ratios on identical traces; aggregates use the geometric mean like
the paper.

Execution is delegated to :mod:`repro.exec`: each sweep is decomposed into
a flat list of :class:`~repro.exec.JobSpec` cells and fanned out through
:func:`repro.exec.run_specs`, so one ``repro.exec.configure(...)`` call
switches the whole module between serial, parallel and cached execution
without changing any result (results are collected in spec order and each
cell is a pure function of its spec).
"""

from __future__ import annotations

import time

from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.obs import CPIStackCollector
from repro.pipeline.stats import gmean
from repro.storage import TABLE_III, TableIIIConfig, breakdown
from repro.eval.result import ExperimentResult
from repro.eval.runner import RunSpec


def _exec():
    """The :mod:`repro.exec` API, imported lazily.

    ``repro.exec.jobs`` imports :mod:`repro.eval.runner`; importing
    ``repro.exec`` at this module's load time would therefore cycle
    through ``repro.eval.__init__`` when ``repro.exec`` is imported
    first.  Deferring to call time breaks the cycle in both directions.
    """
    import repro.exec as exec_api
    return exec_api

#: Experiment ids the driver can run/skip, in report order.
KNOWN_EXPERIMENTS = (
    "table2",
    "table3",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "partial_strides",
    "fig7a",
    "fig7b",
    "fig8",
    "cpi_stack",
    "provenance",
    "h2p",
)

#: Fig 5a predictor line-up, in the paper's legend order.
FIG5A_PREDICTORS = ("2d-stride", "vtage", "vtage-2d-stride", "d-vtage")

#: Fig 6a entry geometries: (npred, base entries, tagged entries).
FIG6A_GEOMETRIES = (
    (4, 1024, 128),
    (6, 1024, 128),
    (8, 1024, 128),
    (4, 2048, 256),
    (6, 2048, 256),
    (8, 2048, 256),
)

#: Fig 6b geometries at npred=6: (base entries, tagged entries).
FIG6B_GEOMETRIES = (
    (512, 128),
    (1024, 128),
    (2048, 128),
    (512, 256),
    (1024, 256),
    (2048, 256),
)

#: §VI-B(a) partial stride widths.
PARTIAL_STRIDE_BITS = (64, 32, 16, 8)

#: Fig 7b speculative window sizes (None = infinite, 0 = no window).
FIG7B_WINDOW_SIZES = (None, 64, 56, 48, 32, 16, 0)

#: Table III / Fig 8 final configurations.
FIG8_CONFIGS = {
    "Small_4p": (BlockDVTAGEConfig(npred=4, base_entries=256, tagged_entries=128,
                                   stride_bits=8), 32),
    "Small_6p": (BlockDVTAGEConfig(npred=6, base_entries=128, tagged_entries=128,
                                   stride_bits=8), 32),
    "Medium": (BlockDVTAGEConfig(npred=6, base_entries=256, tagged_entries=256,
                                 stride_bits=8), 32),
    "Large": (BlockDVTAGEConfig(npred=6, base_entries=512, tagged_entries=256,
                                stride_bits=16), 56),
}


def validate_experiment_ids(ids) -> None:
    """Reject unknown experiment ids (typos would silently run everything)."""
    unknown = sorted(set(ids) - set(KNOWN_EXPERIMENTS))
    if unknown:
        raise ValueError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"known: {', '.join(KNOWN_EXPERIMENTS)}"
        )


def _ipcs(jobs, label: str = "") -> list[float]:
    """Fan a flat job list out through the scheduler; IPCs in job order."""
    return [stats.ipc for stats in _exec().run_specs(jobs, label=label)]


def _meta_start() -> dict:
    """Baseline readings for :func:`_meta_finish`'s deltas."""
    sched = _exec().current_scheduler()
    cache = sched.cache
    journal = sched.journal
    return {
        "t0": time.perf_counter(),
        "hits": cache.hits if cache is not None else 0,
        "misses": cache.misses if cache is not None else 0,
        "journal_hits": journal.hits if journal is not None else 0,
        "journal_records": journal.appended if journal is not None else 0,
    }


def _meta_finish(start: dict) -> dict:
    """Execution metadata for an :class:`ExperimentResult`: wall-clock,
    worker count, — when a result cache is attached — how much of this
    sweep was answered from disk, — when a run journal is attached (the
    crash-safe resume mode of :mod:`repro.chaos`) — how much was resumed
    from a previous interrupted run vs freshly checkpointed, and — when
    observability is on — the registry snapshot as of this experiment's
    completion.  Meta never participates in result equality."""
    import repro.obs as obs

    sched = _exec().current_scheduler()
    meta = {
        "elapsed_seconds": time.perf_counter() - start["t0"],
        "jobs": sched.jobs,
    }
    if sched.cache is not None:
        meta["cache_hits"] = sched.cache.hits - start["hits"]
        meta["cache_misses"] = sched.cache.misses - start["misses"]
    if sched.journal is not None:
        meta["journal_resumed"] = sched.journal.hits - start["journal_hits"]
        meta["journal_recorded"] = (
            sched.journal.appended - start["journal_records"]
        )
    if obs.enabled():
        meta["metrics"] = obs.registry().snapshot()
    return meta


def _baselines(spec: RunSpec) -> dict[str, float]:
    """Baseline_6_60 IPC per workload."""
    names = spec.names()
    jobs = [_exec().baseline_job(n, spec.uops, spec.warmup) for n in names]
    return dict(zip(names, _ipcs(jobs, "baselines")))


def aggregate(speedups: dict[str, float]) -> dict[str, float]:
    """The paper's box-plot summary: gmean plus min and max."""
    values = list(speedups.values())
    return {"gmean": gmean(values), "min": min(values), "max": max(values)}


# ---------------------------------------------------------------------------
# Table II — baseline IPC per benchmark.
# ---------------------------------------------------------------------------

def table2_ipc(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Per-workload baseline IPC next to the paper's Table II IPC."""
    from repro.workloads.suite import get_spec

    start = _meta_start()
    names = spec.names()
    ipcs = _baselines(spec)
    rows = {
        name: {"ipc": ipcs[name], "paper_ipc": get_spec(name).paper_ipc}
        for name in names
    }
    return ExperimentResult("table2", rows, columns=("ipc", "paper_ipc"),
                            spec=spec, meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# Fig 5a — instruction-based predictors over Baseline_6_60.
# ---------------------------------------------------------------------------

def fig5a(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Speedup of each predictor over Baseline_6_60, per workload."""
    start = _meta_start()
    names = spec.names()
    base = _baselines(spec)
    jobs = [
        _exec().instr_vp_job(name, kind, spec.uops, spec.warmup)
        for kind in FIG5A_PREDICTORS
        for name in names
    ]
    ipcs = iter(_ipcs(jobs, "fig5a"))
    out: dict[str, dict[str, float]] = {name: {} for name in names}
    for kind in FIG5A_PREDICTORS:
        for name in names:
            out[name][kind] = next(ipcs) / base[name]
    return ExperimentResult("fig5a", out, columns=FIG5A_PREDICTORS,
                            spec=spec, meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# Fig 5b — EOLE_4_60 over Baseline_VP_6_60 (both with instr D-VTAGE).
# ---------------------------------------------------------------------------

def fig5b(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """EOLE at issue-4 should preserve Baseline_VP_6_60 performance."""
    start = _meta_start()
    names = spec.names()
    jobs = [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup)
            for n in names]
    jobs += [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup, eole=True)
             for n in names]
    ipcs = _ipcs(jobs, "fig5b")
    vp6, eole4 = ipcs[: len(names)], ipcs[len(names):]
    rows = {name: eole4[i] / vp6[i] for i, name in enumerate(names)}
    return ExperimentResult("fig5b", rows, spec=spec,
                            meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# Fig 6 — BeBoP geometry sweeps (speedup over EOLE_4_60 without... the paper
# normalises to the idealistic EOLE_4_60 with instruction-based D-VTAGE).
# ---------------------------------------------------------------------------

def _eole_reference(spec: RunSpec) -> dict[str, float]:
    """EOLE_4_60 with idealistic instruction-based D-VTAGE (the Fig 6/7
    normalisation baseline)."""
    names = spec.names()
    jobs = [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup, eole=True)
            for n in names]
    return dict(zip(names, _ipcs(jobs, "eole-reference")))


def _bebop_sweep(
    spec: RunSpec,
    cells: list[tuple[str, BlockDVTAGEConfig, int | None, RecoveryPolicy]],
    label: str,
) -> dict[str, dict[str, float]]:
    """Shared Fig 6/7 shape: {config label: {workload: speedup over EOLE}}.

    ``cells`` is one (label, config, window, policy) per swept configuration;
    the whole (configuration × workload) grid goes out as a single batch.
    """
    names = spec.names()
    reference = _eole_reference(spec)
    jobs = [
        _exec().bebop_job(name, config, window, policy, spec.uops, spec.warmup)
        for _, config, window, policy in cells
        for name in names
    ]
    ipcs = iter(_ipcs(jobs, label))
    out: dict[str, dict[str, float]] = {}
    for row_label, *_ in cells:
        out[row_label] = {name: next(ipcs) / reference[name] for name in names}
    return out


def fig6a(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Npred / table-size sweep: {config label: {workload: speedup}}."""
    start = _meta_start()
    cells = []
    for npred, base_entries, tagged_entries in FIG6A_GEOMETRIES:
        label = f"{npred}p {base_entries // 1024}K+6x{tagged_entries}"
        config = BlockDVTAGEConfig(
            npred=npred, base_entries=base_entries, tagged_entries=tagged_entries
        )
        cells.append((label, config, None, RecoveryPolicy.DNRDNR))
    rows = _bebop_sweep(spec, cells, "fig6a")
    return ExperimentResult("fig6a", rows, columns=spec.names(),
                            spec=spec, meta=_meta_finish(start))


def fig6b(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Base-size vs tagged-size sweep at 6 predictions per entry."""
    start = _meta_start()
    cells = []
    for base_entries, tagged_entries in FIG6B_GEOMETRIES:
        base_label = f"{base_entries // 1024}K" if base_entries >= 1024 else str(base_entries)
        label = f"{base_label}+6x{tagged_entries}"
        config = BlockDVTAGEConfig(
            npred=6, base_entries=base_entries, tagged_entries=tagged_entries
        )
        cells.append((label, config, None, RecoveryPolicy.DNRDNR))
    rows = _bebop_sweep(spec, cells, "fig6b")
    return ExperimentResult("fig6b", rows, columns=spec.names(),
                            spec=spec, meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# §VI-B(a) — partial strides.
# ---------------------------------------------------------------------------

def partial_strides(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Stride width sweep: speedup over the EOLE reference + storage."""
    start = _meta_start()
    cells = [
        (str(bits), BlockDVTAGEConfig(stride_bits=bits), None,
         RecoveryPolicy.DNRDNR)
        for bits in PARTIAL_STRIDE_BITS
    ]
    sweeps = _bebop_sweep(spec, cells, "partial-strides")
    out: dict[int, dict[str, object]] = {}
    for bits in PARTIAL_STRIDE_BITS:
        speedups = sweeps[str(bits)]
        storage = breakdown(
            TableIIIConfig(
                name=f"stride{bits}",
                base_entries=2048,
                tagged_entries=256,
                components=6,
                spec_window_entries=0,
                stride_bits=bits,
                npred=6,
                paper_kb=0.0,
            )
        )
        out[bits] = {
            "speedups": speedups,
            "aggregate": aggregate(speedups),
            "storage_kb": storage.total_kb,
        }
    return ExperimentResult("partial_strides", out, spec=spec,
                            meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# Fig 7a — recovery policies; Fig 7b — window sizes.
# ---------------------------------------------------------------------------

def fig7a(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Recovery-policy sweep with an infinite speculative window."""
    start = _meta_start()
    cells = [
        (policy.value, BlockDVTAGEConfig(), None, policy)
        for policy in (RecoveryPolicy.IDEAL, RecoveryPolicy.REPRED,
                       RecoveryPolicy.DNRDNR, RecoveryPolicy.DNRR)
    ]
    rows = _bebop_sweep(spec, cells, "fig7a")
    return ExperimentResult("fig7a", rows, columns=spec.names(),
                            spec=spec, meta=_meta_finish(start))


def fig7b(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Speculative-window size sweep under the DnRDnR policy."""
    start = _meta_start()
    cells = []
    for size in FIG7B_WINDOW_SIZES:
        label = "inf" if size is None else ("none" if size == 0 else str(size))
        cells.append((label, BlockDVTAGEConfig(), size, RecoveryPolicy.DNRDNR))
    rows = _bebop_sweep(spec, cells, "fig7b")
    return ExperimentResult("fig7b", rows, columns=spec.names(),
                            spec=spec, meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# Table III — storage budgets; Fig 8 — final configurations.
# ---------------------------------------------------------------------------

def table3_storage() -> ExperimentResult:
    """Computed vs published storage of the four final configurations."""
    start = _meta_start()
    out = {}
    for config in TABLE_III:
        b = breakdown(config)
        out[config.name] = {
            "computed_kb": b.total_kb,
            "paper_kb": config.paper_kb,
            "lvt_kb": b.lvt_bits / 8 / 1000,
            "vt0_kb": b.vt0_bits / 8 / 1000,
            "tagged_kb": b.tagged_bits / 8 / 1000,
            "window_kb": b.window_bits / 8 / 1000,
        }
    return ExperimentResult(
        "table3", out,
        columns=("computed_kb", "paper_kb", "lvt_kb", "vt0_kb",
                 "tagged_kb", "window_kb"),
        meta=_meta_finish(start),
    )


def fig8(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Final configurations over Baseline_6_60, plus the two references.

    Rows are {config label: {workload: speedup over Baseline_6_60}} for
    Baseline_VP_6_60, EOLE_4_60 (both idealistic instruction-based D-VTAGE)
    and the four Table III block-based configurations.
    """
    start = _meta_start()
    names = spec.names()
    base = _baselines(spec)

    jobs = [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup)
            for n in names]
    jobs += [_exec().instr_vp_job(n, "d-vtage", spec.uops, spec.warmup, eole=True)
             for n in names]
    for config, window in FIG8_CONFIGS.values():
        jobs += [
            _exec().bebop_job(n, config, window, RecoveryPolicy.DNRDNR,
                              spec.uops, spec.warmup)
            for n in names
        ]
    ipcs = iter(_ipcs(jobs, "fig8"))

    out: dict[str, dict[str, float]] = {}
    for label in ("Baseline_VP_6_60", "EOLE_4_60", *FIG8_CONFIGS):
        out[label] = {name: next(ipcs) / base[name] for name in names}
    return ExperimentResult(
        "fig8", out,
        columns=("Baseline_VP_6_60", "EOLE_4_60", *FIG8_CONFIGS),
        spec=spec, meta=_meta_finish(start),
    )


# ---------------------------------------------------------------------------
# CPI stacks — where do the cycles go (repro.obs observability layer)?
# ---------------------------------------------------------------------------

#: Pipeline configurations the CPI-stack experiment breaks down.
CPI_STACK_CONFIGS = ("Baseline_6_60", "EOLE_4_60_BeBoP")


def cpi_stack(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Cycle attribution per (workload × configuration).

    Rows are ``{workload: {config: CPIStack}}`` for the no-VP baseline and
    the BeBoP default configuration on EOLE_4_60.  Runs in-process (not
    through :mod:`repro.exec`): the collector rides along with the
    simulation and is not part of the cacheable :class:`SimStats` result.
    Every stack's components sum exactly to the run's ``cycles`` —
    :meth:`CPIStack.check` raises otherwise.
    """
    from repro.eval.runner import (
        get_trace,
        make_bebop_engine,
        run_baseline,
        run_bebop_eole,
    )

    start = _meta_start()
    rows: dict[str, dict[str, object]] = {}
    for name in spec.names():
        trace = get_trace(name, spec.uops)
        stacks: dict[str, object] = {}

        collector = CPIStackCollector()
        run_baseline(trace, spec.warmup, cpi=collector)
        collector.stack.config = "Baseline_6_60"
        stacks["Baseline_6_60"] = collector.stack

        collector = CPIStackCollector()
        run_bebop_eole(trace, make_bebop_engine(), spec.warmup, cpi=collector)
        collector.stack.config = "EOLE_4_60_BeBoP"
        stacks["EOLE_4_60_BeBoP"] = collector.stack

        rows[name] = stacks
    return ExperimentResult("cpi_stack", rows, columns=CPI_STACK_CONFIGS,
                            spec=spec, meta=_meta_finish(start))


# ---------------------------------------------------------------------------
# Prediction provenance — which component predicted, from what last value,
# and what each recovery policy's squashes cost (repro.obs.timeline).
# ---------------------------------------------------------------------------

#: Recovery policies whose squash costs the provenance experiment compares.
PROVENANCE_POLICIES = (RecoveryPolicy.IDEAL, RecoveryPolicy.REPRED,
                       RecoveryPolicy.DNRDNR, RecoveryPolicy.DNRR)


def provenance(spec: RunSpec = RunSpec()) -> ExperimentResult:
    """Prediction-provenance analytics per workload (BeBoP on EOLE_4_60).

    Rows are ``{workload: {components, window, attribution, predictions,
    squash_cost}}``: per-D-VTAGE-component prediction share and accuracy,
    the speculative-window hit / LVT / cold breakdown of prediction
    anchors, byte-tag attribution outcomes (all under the paper's default
    DnRDnR policy), plus one squash-cost summary (count / mean / max and a
    power-of-two histogram) per §IV-A recovery policy.  Like ``cpi_stack``
    this runs in-process: the :class:`~repro.obs.TimelineRecorder` rides
    along with the simulation and cannot cross the executor's process
    boundary.
    """
    from repro.eval.runner import get_trace, make_bebop_engine, run_bebop_eole
    from repro.obs import TimelineRecorder

    start = _meta_start()
    rows: dict[str, dict[str, object]] = {}
    for name in spec.names():
        trace = get_trace(name, spec.uops)
        squash_cost: dict[str, dict] = {}
        summary: dict = {}
        for policy in PROVENANCE_POLICIES:
            rec = TimelineRecorder()
            run_bebop_eole(
                trace, make_bebop_engine(policy=policy), spec.warmup,
                recorder=rec,
            )
            squash_cost[policy.value] = rec.squash_cost_summary()
            if policy is RecoveryPolicy.DNRDNR:
                summary = rec.provenance_summary()
        row: dict[str, object] = dict(summary)
        row["squash_cost"] = squash_cost
        rows[name] = row
    return ExperimentResult(
        "provenance", rows,
        columns=("components", "window", "attribution", "predictions",
                 "squash_cost"),
        spec=spec, meta=_meta_finish(start),
    )


# ---------------------------------------------------------------------------
# H2P attribution — which static PCs own the recovery cycles
# (repro.obs.attrib / repro.obs.banks observability layer)?
# ---------------------------------------------------------------------------

#: Top-k cut-offs the h2p experiment/report states per-PC shares for.
H2P_SHARES = (1, 5, 10)


def h2p(spec: RunSpec = RunSpec(), top_k: int = 32,
        bank_interval: int | None = None) -> ExperimentResult:
    """Hard-to-predict PC attribution (BeBoP on EOLE_4_60, DnRDnR).

    Charges every ``vp_squash`` / ``branch_redirect`` recovery cycle of
    the CPI stack to the static PC of the mispredicting µ-op and ranks
    the worst offenders.  Rows are ``{workload: {category, stack,
    attribution[, banks]}}``: the workload's suite category (workload
    class), the run's :class:`~repro.obs.CPIStack` (so reports can state
    what fraction of those components the top PCs own — per-PC cycles
    sum exactly to ``vp_squash + branch_redirect``), the
    :meth:`~repro.obs.PCAttribution.summary` roll-up, and — when
    ``bank_interval`` is given — :class:`~repro.obs.BankTelemetry`
    occupancy/utility snapshots on that µ-op cadence.  The H2P
    concentration kernel ``h2p_hard`` is appended when the spec does not
    already name it.  Like ``cpi_stack`` this runs in-process: the
    collectors ride along with the simulation and are not part of the
    cacheable :class:`SimStats` result.
    """
    from repro.eval.runner import get_trace, make_bebop_engine, run_bebop_eole
    from repro.obs import BankTelemetry, PCAttribution
    from repro.workloads.suite import get_spec

    start = _meta_start()
    names = spec.names()
    if "h2p_hard" not in names:
        names = (*names, "h2p_hard")
    rows: dict[str, dict[str, object]] = {}
    for name in names:
        trace = get_trace(name, spec.uops)
        collector = CPIStackCollector()
        attrib = PCAttribution(top_k=top_k)
        banks = (BankTelemetry(interval=bank_interval)
                 if bank_interval is not None else None)
        run_bebop_eole(trace, make_bebop_engine(), spec.warmup,
                       cpi=collector, attrib=attrib, banks=banks)
        collector.stack.config = "EOLE_4_60_BeBoP"
        collector.stack.check()
        row: dict[str, object] = {
            "category": get_spec(name).category,
            "stack": collector.stack,
            "attribution": attrib.summary(top=top_k, shares=H2P_SHARES),
        }
        if banks is not None:
            row["banks"] = banks.summary()
        rows[name] = row
    return ExperimentResult(
        "h2p", rows, columns=("category", "stack", "attribution", "banks"),
        spec=spec, meta=_meta_finish(start),
    )
