"""Experiment harness: regenerate every table and figure of Section VI.

* :mod:`repro.eval.runner` — builders for traces, predictors and pipeline
  configurations, with a bounded (LRU) per-process trace cache;
* :mod:`repro.eval.experiments` — one entry point per paper artefact
  (``fig5a`` ... ``fig8``, ``table2_ipc``, ``table3_storage``,
  ``partial_strides``);
* :mod:`repro.eval.reporting` — text rendering of the result structures
  (per-benchmark rows, gmean / min / max aggregates like the paper's box
  plots).

Execution itself — process fan-out, per-job timeout/retry and the on-disk
result cache — lives in :mod:`repro.exec`; ``repro.exec.configure(...)``
switches every sweep in :mod:`repro.eval.experiments` between serial,
parallel and cached execution.
"""

from repro.eval.result import ExperimentResult
from repro.eval.runner import (
    DEFAULT_TRACE_UOPS,
    DEFAULT_WARMUP_UOPS,
    RunSpec,
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_eole_instr_vp,
    run_instr_vp,
    set_trace_cache_limit,
)
from repro.eval import experiments, reporting

__all__ = [
    "DEFAULT_TRACE_UOPS",
    "DEFAULT_WARMUP_UOPS",
    "ExperimentResult",
    "RunSpec",
    "get_trace",
    "make_instr_predictor",
    "make_bebop_engine",
    "run_baseline",
    "run_instr_vp",
    "run_eole_instr_vp",
    "run_bebop_eole",
    "set_trace_cache_limit",
    "experiments",
    "reporting",
]
