"""Event-trace ring buffer with scoped spans and JSONL export.

A :class:`TraceBuffer` records structured events — plain dicts with a
monotonic timestamp, a ``kind`` tag and arbitrary JSON-able fields — into a
bounded ring: the newest ``capacity`` events win and everything older is
dropped (counted in :attr:`TraceBuffer.dropped`).  :meth:`TraceBuffer.span`
wraps a code region and emits one event carrying its wall-clock duration,
which is how :mod:`repro.exec` stamps batch and per-job timing.

Events are deliberately cheap (one dict append when enabled, one attribute
check when disabled) and are exported as JSON Lines — one event per line —
so reports and external tools can stream them without a schema.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator


class TraceBuffer:
    """Bounded ring of structured events (newest ``capacity`` kept)."""

    def __init__(
        self,
        capacity: int = 4096,
        enabled: bool = True,
        clock=time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.clock = clock
        self._events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Append one event; silently drops the oldest when full."""
        if not self.enabled:
            return
        event = {"ts": self.clock(), "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.emitted += 1

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[dict]:
        """Scope a region: emits one ``span`` event with its duration.

        The yielded dict can be mutated inside the ``with`` body to attach
        result fields (cache hits, retry counts, ...) to the span event.
        """
        if not self.enabled:
            yield {}
            return
        extra: dict = {}
        t0 = self.clock()
        try:
            yield extra
        finally:
            fields.update(extra)
            self.emit("span", name=name, seconds=self.clock() - t0, **fields)

    # -- reading -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered events oldest-first, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e["kind"] == kind]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The buffer as JSON Lines (one event per line, oldest first)."""
        return "\n".join(
            json.dumps(e, sort_keys=True, default=str) for e in self._events
        )

    def export_jsonl(self, path, header: dict | None = None) -> int:
        """Write events (plus an optional leading header record) to ``path``
        as JSONL; returns the number of records written."""
        records = 0
        with open(path, "w") as f:
            if header is not None:
                f.write(json.dumps(header, sort_keys=True, default=str) + "\n")
                records += 1
            for event in self._events:
                f.write(json.dumps(event, sort_keys=True, default=str) + "\n")
                records += 1
        return records
