"""Hierarchical metrics registry with a zero-overhead disabled path.

Metrics are named with ``/``-separated namespaces (``exec/cache/hits``,
``bebop/spec_window/occupancy``) and come in three kinds:

* :class:`Counter` — monotonically accumulated totals (``inc``);
* :class:`Gauge` — last-write-wins level samples (``set``, plus ``track``
  to keep min/max of everything ever set);
* :class:`Histogram` — count/sum/min/max plus power-of-two bucket counts,
  enough to read tail behaviour without storing samples.

The registry deliberately has **no** locking and **no** background thread:
simulation is single-threaded per process, and cross-process aggregation
happens by merging :meth:`MetricsRegistry.snapshot` dictionaries (see
:meth:`MetricsRegistry.merge`), which is how :mod:`repro.exec` folds
worker-process metrics back into the parent.

Disabled path
-------------
A disabled registry hands out shared null metric singletons whose mutators
are no-ops and allocates nothing, so instrumented code can call
``registry.counter(name).inc()`` unconditionally; hot loops should instead
hoist the metric object (or check :attr:`MetricsRegistry.enabled`) once.
"""

from __future__ import annotations

import math
import re
from typing import Iterator


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, float]:
        return {self.name: self.value}


class Gauge:
    """A level: last value written wins."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, float]:
        return {self.name: self.value}


class Histogram:
    """Count / sum / min / max plus power-of-two buckets.

    Bucket ``i`` counts observations ``v`` with ``2**(i-1) < v <= 2**i``
    (bucket 0 counts ``v <= 1``), which is plenty to read occupancy and
    latency tails without keeping samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        b = 0 if value <= 1 else max(0, math.ceil(math.log2(value)))
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        if not self.count:
            return {f"{self.name}/count": 0}
        out = {
            f"{self.name}/count": self.count,
            f"{self.name}/sum": self.total,
            f"{self.name}/min": self.min,
            f"{self.name}/max": self.max,
        }
        for b in sorted(self.buckets):
            out[f"{self.name}/bucket/le_2^{b}"] = self.buckets[b]
        return out


class _NullMetric:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    kind = "null"
    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    def snapshot(self) -> dict[str, float]:
        return {}


NULL_METRIC = _NullMetric()

#: Suffixes a histogram snapshot expands into; merge needs to treat
#: ``*/min`` and ``*/max`` with min/max semantics instead of summation.
_MIN_SUFFIX = "/min"
_MAX_SUFFIX = "/max"

#: Histogram bucket keys in a snapshot look like ``name/bucket/le_2^7``.
#: Merge validates the boundary spelling: this registry only ever emits
#: power-of-two boundaries, so any other boundary in an incoming snapshot
#: comes from an incompatible bucketing scheme and summing it into ours
#: would silently mis-merge.
_BUCKET_MARK = "/bucket/"
_BUCKET_RE = re.compile(r"le_2\^\d+\Z")

#: Characters Prometheus forbids in metric names (text exposition format
#: v0.0.4 allows ``[a-zA-Z_:][a-zA-Z0-9_:]*``).
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Registry name → valid Prometheus metric name (``/`` and ``^``
    become ``_``; the prefix keeps the first character legal)."""
    return prefix + _PROM_BAD.sub("_", name)


def _prom_value(value: int | float) -> str:
    """Prometheus sample-value spelling (Go ParseFloat syntax)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    f = float(value)
    if f.is_integer() and abs(f) < 2**63:
        return str(int(f))
    return repr(f)


class MetricsRegistry:
    """Flat name → metric store with hierarchical (``/``) names."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        # Extremum keys (histogram */min, */max) already merged at least
        # once — the first merge must overwrite the 0.0 a fresh Gauge holds.
        self._seen_extrema: set[str] = set()

    # -- creation ----------------------------------------------------------

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter) if self.enabled else NULL_METRIC

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge) if self.enabled else NULL_METRIC

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram) if self.enabled else NULL_METRIC

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def get(self, name: str):
        """The live metric object, or ``None`` if never created."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    def snapshot(self) -> dict[str, float]:
        """Flat ``{name: value}`` view (histograms expand to sub-keys),
        sorted by name so two equal registries snapshot identically."""
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            out.update(self._metrics[name].snapshot())
        return out

    def tree(self) -> dict:
        """Nested-dict view of :meth:`snapshot`, splitting on ``/``."""
        root: dict = {}
        for name, value in self.snapshot().items():
            node = root
            *parts, leaf = name.split("/")
            for part in parts:
                node = node.setdefault(part, {})
            node[leaf] = value
        return root

    def to_prometheus(self, prefix: str = "repro_",
                      exclude: frozenset[str] | set[str] = frozenset()
                      ) -> str:
        """Prometheus text exposition (format v0.0.4) of every metric.

        Counters and gauges emit one sample each; histograms emit
        cumulative ``_bucket{le="..."}`` samples (upper bounds are this
        registry's power-of-two boundaries) plus ``_sum``/``_count`` and
        min/max companion gauges.  ``exclude`` skips raw registry names
        (the serve endpoint uses it to avoid double-exposing counters it
        reports authoritatively).  If two raw names sanitize to the same
        Prometheus name, the first (in sorted raw-name order) wins — a
        duplicate family would make the exposition invalid.
        """
        lines: list[str] = []
        emitted: set[str] = set()

        def family(pname: str, kind: str) -> bool:
            if pname in emitted:
                return False
            emitted.add(pname)
            lines.append(f"# HELP {pname} repro metric {name!r}")
            lines.append(f"# TYPE {pname} {kind}")
            return True

        for name in sorted(self._metrics):
            if name in exclude:
                continue
            metric = self._metrics[name]
            pname = prometheus_name(name, prefix)
            if metric.kind in ("counter", "gauge"):
                if family(pname, metric.kind):
                    lines.append(f"{pname} {_prom_value(metric.value)}")
            else:  # histogram
                if not family(pname, "histogram"):
                    continue
                cumulative = 0
                for b in sorted(metric.buckets):
                    cumulative += metric.buckets[b]
                    bound = _prom_value(float(2 ** b))
                    lines.append(
                        f'{pname}_bucket{{le="{bound}"}} {cumulative}'
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{pname}_sum {_prom_value(metric.total)}")
                lines.append(f"{pname}_count {metric.count}")
                if metric.count:
                    for suffix, value in (("min", metric.min),
                                          ("max", metric.max)):
                        sub = f"{pname}_{suffix}"
                        if sub not in emitted:
                            emitted.add(sub)
                            lines.append(f"# HELP {sub} repro metric "
                                         f"{name!r} {suffix}")
                            lines.append(f"# TYPE {sub} gauge")
                            lines.append(f"{sub} {_prom_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- aggregation -------------------------------------------------------

    def merge(self, snapshot: dict[str, float]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counter-like values add; ``*/min`` / ``*/max`` histogram keys keep
        the extremum.  Merging is done on plain snapshot dicts (not metric
        objects) because that is what crosses the process boundary.  The
        result is order-independent for integer-valued metrics, which is
        what makes parallel sweeps' metrics deterministic.
        """
        if not self.enabled or not snapshot:
            return
        for name, value in snapshot.items():
            mark = name.rfind(_BUCKET_MARK)
            if mark >= 0 and not _BUCKET_RE.match(
                    name[mark + len(_BUCKET_MARK):]):
                raise ValueError(
                    f"histogram bucket boundary mismatch: {name!r} is not a "
                    f"power-of-two bucket key (expected .../bucket/le_2^N); "
                    f"refusing to mis-merge incompatible bucketing schemes"
                )
            if name.endswith(_MIN_SUFFIX) or name.endswith(_MAX_SUFFIX):
                g = self._get(name, Gauge)
                if name not in self._seen_extrema:
                    self._seen_extrema.add(name)
                    g.value = value
                elif name.endswith(_MIN_SUFFIX):
                    g.value = min(g.value, value)
                else:
                    g.value = max(g.value, value)
            else:
                self._get(name, Counter).inc(value)

    def reset(self) -> None:
        """Drop every metric (tests and per-run scoping)."""
        self._metrics.clear()
        self._seen_extrema.clear()
