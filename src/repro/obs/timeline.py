"""Per-µop pipeline timeline tracing with prediction provenance.

A :class:`TimelineRecorder` rides along one :class:`~repro.pipeline.core.
PipelineModel` run (the ``recorder`` argument) and captures, for every
processed µ-op, the cycle of each pipeline event — ``fetch``, ``decode``
(block arrival / BeBoP attribution), ``dispatch``, ``issue``, ``execute``
completion and ``commit`` — plus, for value-predicted µ-ops, a
:class:`Provenance` record describing *where the prediction came from*:

* which D-VTAGE component provided the stride (VT0 base vs. tagged
  component index),
* the provider's confidence level at predict time,
* whether the last value was read from the speculative window (and from
  which in-flight instance), from the LVT, or was cold,
* the BeBoP byte-tag attribution outcome (match vs. miss), and
* the final commit verdict (correct / squash, with the recovery policy
  that was armed).

Like the :class:`~repro.obs.cpi.CPIStackCollector`, the recorder is
passive: it only copies cycles the timing model already computed, so a
traced run's :class:`~repro.pipeline.stats.SimStats` are bit-identical to
an untraced run's, and ``recorder=None`` costs one ``is None`` check per
instrumentation site.

Two export formats are supported:

* **Chrome** ``trace_event`` JSON (:meth:`TimelineRecorder.export_chrome`)
  — loadable in ``chrome://tracing`` or https://ui.perfetto.dev; one track
  per pipeline stage, cycle numbers as microsecond timestamps, squashes as
  instant events, provenance attached to the commit-stage slice;
* **Konata/Kanata** logs (:meth:`TimelineRecorder.export_konata`) — for
  the Konata pipeline visualizer (`Kanata 0004` format).

This module is dependency-free like the rest of :mod:`repro.obs`: the
pipeline and the BeBoP engine import it, never the other way around.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass

#: Pipeline stages in track order (Chrome trace thread ids follow it).
TIMELINE_STAGES = ("fetch", "decode", "dispatch", "issue", "execute", "commit")

#: Export formats understood by the CLI (`--timeline-format`).
TIMELINE_FORMATS = ("chrome", "konata")

#: Konata stage mnemonics, parallel to the event cycles we emit.
_KONATA_STAGES = (("F", "fetch"), ("Dc", "decode"), ("Ds", "dispatch"),
                  ("Is", "issue"), ("Cm", "complete"))


def provider_label(provider: int) -> str:
    """Human name of a D-VTAGE provider id (0 = VT0 base, i+1 = tagged i)."""
    return "vt0" if provider <= 0 else f"t{provider - 1}"


@dataclass(slots=True)
class Provenance:
    """Where one µ-op's value prediction came from, and how it ended.

    ``verdict`` values: ``correct`` / ``squash`` (used predictions),
    ``correct_unused`` / ``incorrect_unused`` (prediction existed but the
    FPC gate withheld it), ``no_prediction`` (BeBoP byte-tag attribution
    miss: the µ-op matched no prediction slot), ``unknown`` (the µ-op
    produced no comparable value).
    """

    provider: int = 0            # 0 = VT0/LVT base, i+1 = tagged component i
    conf: int = 0                # provider confidence level at predict time
    source: str = "lvt"          # spec_window | lvt | cold | reuse | inst
    spec_seq: int | None = None  # providing window instance (spec_window only)
    tag_match: bool = True       # BeBoP byte-tag attribution outcome
    slot: int = -1               # prediction slot inside the block entry
    value: int | None = None     # the predicted value
    confident: bool = False      # FPC allowed the pipeline to use it
    policy: str = ""             # recovery policy armed for this block
    used: bool = False           # actually written to the PRF (set at commit)
    verdict: str = "unresolved"

    def provider_name(self) -> str:
        return provider_label(self.provider)

    def as_dict(self) -> dict:
        """JSON-ready form (used by the Chrome trace ``args``)."""
        return {
            "provider": self.provider_name(),
            "conf": self.conf,
            "source": self.source,
            "spec_seq": self.spec_seq,
            "tag_match": self.tag_match,
            "slot": self.slot,
            "value": self.value,
            "confident": self.confident,
            "policy": self.policy,
            "used": self.used,
            "verdict": self.verdict,
        }


@dataclass(slots=True)
class UopTimeline:
    """One µ-op's pipeline event cycles (one re-fetched instance each)."""

    seq: int
    pc: int
    block_pc: int
    fetch: int
    decode: int
    dispatch: int
    issue: int
    complete: int
    commit: int
    prov: Provenance | None = None

    def stage_cycles(self) -> dict[str, int]:
        return {
            "fetch": self.fetch,
            "decode": self.decode,
            "dispatch": self.dispatch,
            "issue": self.issue,
            "execute": self.complete,
            "commit": self.commit,
        }


@dataclass(slots=True)
class SquashEvent:
    """A commit-time value-misprediction squash.

    ``cost`` is the commit-time recovery latency: cycles between the
    mispredicting µ-op's result completing (when the misprediction became
    detectable) and the refetch barrier it raised (``commit + 1``) — the
    price the paper's low-complexity recovery pays over an execute-time
    repair, and what the recovery policies trade against predictor state
    consistency.
    """

    seq: int
    pc: int
    cycle: int
    cost: int
    policy: str = ""


def _p2_bucket(value: int | float) -> int:
    return 0 if value <= 1 else max(0, math.ceil(math.log2(value)))


class TimelineRecorder:
    """Per-µop pipeline timeline + provenance collector.

    ``capacity`` bounds the µ-op ring (newest kept, oldest evicted first,
    evictions counted in :attr:`dropped`); ``None`` records everything —
    at ~10 small objects per µ-op a few hundred thousand µ-ops are fine.
    Warmup µ-ops are recorded too: provenance counts then sum exactly to
    the predictor totals the metrics registry reports for the same run.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._uops: deque[UopTimeline] = deque(maxlen=capacity)
        self.recorded = 0
        self.squashes: list[SquashEvent] = []
        self.instants: list[dict] = []

    # -- recording (called by the pipeline) --------------------------------

    def record_uop(
        self,
        seq: int,
        pc: int,
        block_pc: int,
        fetch: int,
        decode: int,
        dispatch: int,
        issue: int,
        complete: int,
        commit: int,
        prov: Provenance | None = None,
    ) -> None:
        self._uops.append(UopTimeline(
            seq, pc, block_pc, fetch, decode, dispatch, issue, complete,
            commit, prov,
        ))
        self.recorded += 1

    def squash(
        self, seq: int, pc: int, cycle: int, cost: int, policy: str = ""
    ) -> None:
        self.squashes.append(SquashEvent(seq, pc, cycle, cost, policy))

    def instant(self, name: str, cycle: int, **args) -> None:
        """A generic point event (branch redirects, markers)."""
        self.instants.append({"name": name, "cycle": cycle, "args": args})

    # -- reading -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """µ-op records lost to the capacity bound (oldest evicted first)."""
        return self.recorded - len(self._uops)

    def __len__(self) -> int:
        return len(self._uops)

    def uops(self) -> list[UopTimeline]:
        """Recorded µ-op timelines, oldest first."""
        return list(self._uops)

    # -- analytics ---------------------------------------------------------

    def provenance_summary(self) -> dict:
        """Roll per-µop provenance into per-component analytics.

        Returns ``components`` (``{provider: {predictions, used, correct,
        share, accuracy}}`` over attributed predictions), ``window`` (how
        many predictions anchored on a speculative-window hit vs. the LVT
        vs. a cold entry vs. a reused prediction block), ``attribution``
        (byte-tag match requests/misses) and the attributed-prediction
        total.  Counts cover everything recorded, warmup included, so they
        sum to the run's ``bebop/provider/*/predictions`` metrics.
        """
        components: dict[str, dict] = {}
        window: dict[str, int] = {}
        attribution = {"requests": 0, "misses": 0}
        total = 0
        for u in self._uops:
            p = u.prov
            if p is None:
                continue
            attribution["requests"] += 1
            if not p.tag_match:
                attribution["misses"] += 1
                continue
            total += 1
            window[p.source] = window.get(p.source, 0) + 1
            c = components.setdefault(
                p.provider_name(), {"predictions": 0, "used": 0, "correct": 0}
            )
            c["predictions"] += 1
            if p.used:
                c["used"] += 1
                if p.verdict == "correct":
                    c["correct"] += 1
        for c in components.values():
            c["share"] = c["predictions"] / total if total else 0.0
            c["accuracy"] = c["correct"] / c["used"] if c["used"] else 0.0
        return {
            "components": components,
            "window": window,
            "attribution": attribution,
            "predictions": total,
        }

    def squash_cost_summary(self) -> dict:
        """Squash-cost distribution: count / mean / min / max plus
        power-of-two buckets (``le_2^b`` counts costs ``<= 2**b``)."""
        costs = [s.cost for s in self.squashes]
        if not costs:
            return {"count": 0, "mean": 0.0, "min": 0, "max": 0,
                    "histogram": {}}
        histogram: dict[str, int] = {}
        for cost in costs:
            key = f"le_2^{_p2_bucket(cost)}"
            histogram[key] = histogram.get(key, 0) + 1
        return {
            "count": len(costs),
            "mean": sum(costs) / len(costs),
            "min": min(costs),
            "max": max(costs),
            "histogram": dict(sorted(histogram.items())),
        }

    # -- Chrome trace_event export -----------------------------------------

    def to_chrome_trace(self) -> dict:
        """The timeline as a Chrome ``trace_event`` JSON object.

        One metadata-named track (thread) per pipeline stage; each µ-op
        contributes one complete (``ph: "X"``) slice per stage, with cycle
        numbers as microsecond timestamps so Perfetto's zoom is 1 cycle =
        1 µs.  Value-misprediction squashes and branch redirects are
        process-scoped instant (``ph: "i"``) events; provenance rides on
        the commit-stage slice's ``args``.
        """
        pid = 1
        events: list[dict] = [{
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": "pipeline"},
        }]
        for tid, stage in enumerate(TIMELINE_STAGES, start=1):
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": stage},
            })
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "ts": 0,
                "name": "thread_sort_index", "args": {"sort_index": tid},
            })
        for u in self._uops:
            name = f"{u.pc:#x}#{u.seq}"
            bounds = (
                (u.fetch, u.decode),        # fetch
                (u.decode, u.dispatch),     # decode / attribution
                (u.dispatch, u.issue),      # dispatch / backend wait
                (u.issue, u.issue),         # issue slot (point)
                (u.issue, u.complete),      # execute
                (u.complete, u.commit),     # commit wait + commit
            )
            for tid, (start, end) in enumerate(bounds, start=1):
                event = {
                    "ph": "X", "pid": pid, "tid": tid,
                    "ts": start, "dur": max(0, end - start),
                    "name": name, "args": {"seq": u.seq, "pc": u.pc},
                }
                if tid == len(TIMELINE_STAGES) and u.prov is not None:
                    event["args"]["provenance"] = u.prov.as_dict()
                events.append(event)
        squash_tid = len(TIMELINE_STAGES)
        for s in self.squashes:
            events.append({
                "ph": "i", "pid": pid, "tid": squash_tid, "ts": s.cycle,
                "s": "p", "name": "vp_squash",
                "args": {"seq": s.seq, "pc": s.pc, "cost": s.cost,
                         "policy": s.policy},
            })
        for inst in self.instants:
            events.append({
                "ph": "i", "pid": pid, "tid": 1, "ts": inst["cycle"],
                "s": "p", "name": inst["name"], "args": inst["args"],
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "unit": "cycles",
                "uops": len(self._uops),
                "dropped_uops": self.dropped,
                "squashes": len(self.squashes),
            },
        }

    def _warn_dropped(self) -> None:
        """Surface truncation at export time: bump the
        ``obs/timeline/dropped`` counter (by the drop count — re-exports
        re-count) and print one stderr line, so a capacity-bounded
        timeline is never silently misread as complete."""
        if not self.dropped:
            return
        import sys

        import repro.obs as obs  # call-time import: obs imports this module

        obs.counter("obs/timeline/dropped").inc(self.dropped)
        print(
            f"timeline export: {self.dropped} of {self.recorded} µ-op "
            f"record(s) dropped by the capacity bound "
            f"(capacity={self.capacity}); the export is truncated",
            file=sys.stderr,
        )

    def export_chrome(self, path) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        self._warn_dropped()
        trace = self.to_chrome_trace()
        with open(path, "w") as f:
            json.dump(trace, f)
        return len(trace["traceEvents"])

    # -- Konata export ------------------------------------------------------

    def to_konata(self) -> str:
        """The timeline as a Konata (`Kanata 0004`) pipeline log.

        Stages: ``F`` fetch, ``Dc`` decode/attribution, ``Ds`` dispatch,
        ``Is`` issue/execute, ``Cm`` completed-awaiting-commit; retirement
        (``R``) at the commit cycle, flushed retirement type for µ-ops
        whose used prediction squashed.
        """
        lines = ["Kanata\t0004"]
        events: list[tuple[int, int, str]] = []
        order = 0
        for lane_id, u in enumerate(self._uops):
            label = f"{u.pc:#x} seq={u.seq}"
            if u.prov is not None and u.prov.tag_match:
                label += (f" vp={u.prov.provider_name()}"
                          f"/{u.prov.source}/{u.prov.verdict}")
            events.append((u.fetch, order, f"I\t{lane_id}\t{u.seq}\t0"))
            order += 1
            events.append((u.fetch, order, f"L\t{lane_id}\t0\t{label}"))
            order += 1
            for mnemonic, attr in _KONATA_STAGES:
                cycle = u.complete if attr == "complete" else getattr(u, attr)
                events.append((cycle, order, f"S\t{lane_id}\t0\t{mnemonic}"))
                order += 1
            retire_type = (
                1 if u.prov is not None and u.prov.verdict == "squash" else 0
            )
            events.append(
                (u.commit, order, f"R\t{lane_id}\t{u.seq}\t{retire_type}")
            )
            order += 1
        events.sort()
        current = events[0][0] if events else 0
        lines.append(f"C=\t{current}")
        for cycle, _, line in events:
            if cycle > current:
                lines.append(f"C\t{cycle - current}")
                current = cycle
            lines.append(line)
        return "\n".join(lines) + "\n"

    def export_konata(self, path) -> int:
        """Write the Konata log to ``path``; returns the line count."""
        self._warn_dropped()
        text = self.to_konata()
        with open(path, "w") as f:
            f.write(text)
        return text.count("\n")
