"""Per-static-PC misprediction-cost attribution.

"Branch Prediction Is Not a Solved Problem" (Lin & Tarsa) observes that
almost all remaining misprediction cost hides in a handful of
hard-to-predict (H2P) static instructions.  This collector makes that
measurable here: it rides a :class:`~repro.pipeline.core.PipelineModel`
run (the ``attrib`` argument) and charges every squash/redirect recovery
cycle — the *same* commit-front deltas the CPI stack attributes to
``vp_squash`` and ``branch_redirect`` — to the static PC of the
mispredicting µ-op.  The pipeline shadows its cause-propagation chain
with the owning PC under the same gating, so per-PC attributed cycles
sum **exactly** to the ``vp_squash + branch_redirect`` CPI-stack
components of the same run (tests enforce this per workload class).

Alongside the cycles, each PC accumulates prediction attempts, used
predictions, squashes, branch executions/mispredicts and a
providing-component histogram (from the PR 3 :class:`~repro.obs.timeline.
Provenance` records, filled whenever attribution rides the run).

Memory stays O(k) on arbitrarily long traces through a bounded
top-k-plus-sampled-tail structure: when the record table exceeds its
limit, everything outside the top ``top_k`` records (ranked by
attributed cycles) is folded into an exact aggregate *tail* — the tail
keeps exact cycle totals (the exact-sum contract survives compaction)
plus a deterministic sample of evicted records for inspection; only
per-PC detail of cold PCs is lost.

Like the CPI-stack collector the attribution is passive: it never reads
or perturbs machine state, so an attributed run's
:class:`~repro.pipeline.stats.SimStats` are bit-identical to a plain
run's, and ``attrib=None`` costs one boolean check per site.
"""

from __future__ import annotations

#: CPI-stack causes whose recovery cycles are charged to a static PC.
ATTRIBUTED_CAUSES = ("vp_squash", "branch_redirect")


class PCRecord:
    """Everything attributed to one static PC."""

    __slots__ = ("pc", "branches", "branch_mispredicts", "vp_attempts",
                 "vp_used", "vp_squashes", "cycles", "by_cause", "providers")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.branches = 0             # conditional-branch executions
        self.branch_mispredicts = 0
        self.vp_attempts = 0          # eligible µ-ops that had a prediction
        self.vp_used = 0              # predictions the FPC gate released
        self.vp_squashes = 0          # wrong used predictions (commit squash)
        self.cycles = 0               # attributed recovery cycles
        self.by_cause: dict[str, int] = {}
        self.providers: dict[int, int] = {}   # provider id -> attempts

    @property
    def kind(self) -> str:
        """µ-op class as seen by the recovery machinery."""
        branch = self.branches > 0
        vp = self.vp_attempts > 0
        if branch and vp:
            return "mixed"
        if branch:
            return "branch"
        if vp:
            return "vp"
        return "other"

    def as_dict(self) -> dict:
        """JSON-ready form (experiment rows, reports)."""
        return {
            "pc": self.pc,
            "kind": self.kind,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "vp_attempts": self.vp_attempts,
            "vp_used": self.vp_used,
            "vp_squashes": self.vp_squashes,
            "cycles": self.cycles,
            "by_cause": dict(self.by_cause),
            "providers": {str(p): n for p, n in sorted(self.providers.items())},
        }


class PCAttribution:
    """Bounded per-PC recovery-cost collector (see module docstring).

    ``top_k`` bounds how many exact per-PC records survive a compaction;
    ``limit`` (default ``max(4 * top_k, 128)``) is the table size that
    triggers one.  ``tail_samples`` records evicted into the tail are
    kept verbatim (first evicted wins — deterministic), so a truncated
    run still shows *what kind* of PCs the tail holds.
    """

    def __init__(self, top_k: int = 32, tail_samples: int = 8,
                 limit: int | None = None) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.top_k = top_k
        self.tail_samples = tail_samples
        self.limit = limit if limit is not None else max(4 * top_k, 128)
        if self.limit <= top_k:
            raise ValueError(
                f"limit ({self.limit}) must exceed top_k ({top_k})"
            )
        self._records: dict[int, PCRecord] = {}
        # Exact aggregate of everything compacted away.  tail_pcs counts
        # evictions (a PC evicted twice counts twice — approximate);
        # tail_cycles is exact, which is what the sum contract needs.
        self.tail_cycles = 0
        self.tail_by_cause: dict[str, int] = {}
        self.tail_pcs = 0
        self.tail_sampled: list[PCRecord] = []
        self.compactions = 0
        # Filled by finish().
        self.workload = ""
        self.config = ""
        self.cycles = 0

    # -- recording (called by the pipeline; must stay cheap) ----------------

    def _rec(self, pc: int) -> PCRecord:
        r = self._records.get(pc)
        if r is None:
            if len(self._records) >= self.limit:
                self._compact()
            r = self._records[pc] = PCRecord(pc)
        return r

    def vp_attempt(self, pc: int, provider: int = -1,
                   used: bool = False) -> None:
        r = self._rec(pc)
        r.vp_attempts += 1
        if used:
            r.vp_used += 1
        if provider >= 0:
            r.providers[provider] = r.providers.get(provider, 0) + 1

    def vp_squash(self, pc: int) -> None:
        self._rec(pc).vp_squashes += 1

    def branch(self, pc: int, mispredicted: bool) -> None:
        r = self._rec(pc)
        r.branches += 1
        if mispredicted:
            r.branch_mispredicts += 1

    def account(self, pc: int, cause: str, delta: int) -> None:
        """Charge ``delta`` recovery cycles of ``cause`` to ``pc``."""
        r = self._rec(pc)
        r.cycles += delta
        r.by_cause[cause] = r.by_cause.get(cause, 0) + delta

    def _rank_key(self, r: PCRecord):
        # Costliest first; deterministic tiebreak by PC.
        return (-r.cycles, -(r.vp_squashes + r.branch_mispredicts),
                -(r.vp_attempts + r.branches), r.pc)

    def _compact(self) -> None:
        ranked = sorted(self._records.values(), key=self._rank_key)
        for r in ranked[self.top_k:]:
            self.tail_cycles += r.cycles
            for cause, cycles in r.by_cause.items():
                self.tail_by_cause[cause] = (
                    self.tail_by_cause.get(cause, 0) + cycles
                )
            self.tail_pcs += 1
            if len(self.tail_sampled) < self.tail_samples:
                self.tail_sampled.append(r)
        self._records = {r.pc: r for r in ranked[: self.top_k]}
        self.compactions += 1

    def finish(self, stats) -> None:
        """Seal against a finished run's :class:`SimStats` (mirrors
        :meth:`~repro.obs.cpi.CPIStackCollector.finish`)."""
        self.workload = stats.workload
        self.config = stats.config
        self.cycles = stats.cycles

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def top(self, n: int | None = None) -> list[PCRecord]:
        """Records ranked costliest-first (all of them when ``n`` is None)."""
        ranked = sorted(self._records.values(), key=self._rank_key)
        return ranked if n is None else ranked[:n]

    def total_cycles(self) -> int:
        """All attributed recovery cycles — exactly the run's
        ``vp_squash + branch_redirect`` CPI-stack components."""
        return sum(r.cycles for r in self._records.values()) + self.tail_cycles

    def cause_cycles(self) -> dict[str, int]:
        """Attributed cycles per cause, tail included."""
        out = dict.fromkeys(ATTRIBUTED_CAUSES, 0)
        for r in self._records.values():
            for cause, cycles in r.by_cause.items():
                out[cause] = out.get(cause, 0) + cycles
        for cause, cycles in self.tail_by_cause.items():
            out[cause] = out.get(cause, 0) + cycles
        return out

    def share(self, n: int) -> float:
        """Fraction of attributed cycles the ``n`` costliest PCs own
        (0.0 when nothing was attributed)."""
        total = self.total_cycles()
        if not total:
            return 0.0
        return sum(r.cycles for r in self.top(n)) / total

    def summary(self, top: int = 10, shares: tuple[int, ...] = (1, 5, 10)
                ) -> dict:
        """JSON-ready roll-up (what the ``h2p`` experiment rows carry)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "cycles": self.cycles,
            "attributed_cycles": self.total_cycles(),
            "by_cause": self.cause_cycles(),
            "pcs": [r.as_dict() for r in self.top(top)],
            "distinct_pcs": len(self._records),
            "shares": {n: self.share(n) for n in shares},
            "tail": {
                "cycles": self.tail_cycles,
                "by_cause": dict(self.tail_by_cause),
                "evictions": self.tail_pcs,
                "compactions": self.compactions,
                "sampled": [r.as_dict() for r in self.tail_sampled],
            },
        }
