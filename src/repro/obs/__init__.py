"""Observability: metrics registry, CPI stacks, event tracing.

The package is dependency-free (it imports nothing from the simulator) so
any layer — pipeline, BeBoP engine, executor, experiments — can publish
metrics without import cycles.  It exposes one process-wide *current*
:class:`MetricsRegistry` and :class:`TraceBuffer`, both **disabled by
default**: instrumented code calls :func:`counter` / :func:`span`
unconditionally and pays one attribute check when observability is off.

Typical use::

    import repro.obs as obs

    obs.enable()                       # turn the layer on
    ...run experiments...
    obs.registry().snapshot()          # {"exec/cache/hits": 42, ...}
    obs.trace().export_jsonl("obs.jsonl")
    obs.disable()

Worker processes get a *fresh* registry per job (:func:`scoped_registry`)
whose snapshot is merged back into the parent by :mod:`repro.exec`, so a
parallel sweep's counters equal the serial sweep's.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.attrib import ATTRIBUTED_CAUSES, PCAttribution, PCRecord
from repro.obs.banks import BankTelemetry
from repro.obs.cpi import CPI_COMPONENTS, CPIStack, CPIStackCollector
from repro.obs.registry import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.timeline import (
    TIMELINE_FORMATS,
    TIMELINE_STAGES,
    Provenance,
    SquashEvent,
    TimelineRecorder,
    UopTimeline,
)
from repro.obs.trace import TraceBuffer

_registry = MetricsRegistry(enabled=False)
_trace = TraceBuffer(enabled=False)


def enabled() -> bool:
    """Whether the current registry records anything."""
    return _registry.enabled


def enable(trace_capacity: int = 4096) -> MetricsRegistry:
    """Swap in a fresh enabled registry + trace buffer; returns the
    registry.  Idempotent in spirit but always starts clean — enabling is
    the start of an observation window, not a toggle."""
    global _registry, _trace
    _registry = MetricsRegistry(enabled=True)
    _trace = TraceBuffer(capacity=trace_capacity, enabled=True)
    return _registry


def disable() -> None:
    """Back to the zero-overhead null layer."""
    global _registry, _trace
    _registry = MetricsRegistry(enabled=False)
    _trace = TraceBuffer(enabled=False)


def registry() -> MetricsRegistry:
    """The current process-wide registry."""
    return _registry


def trace() -> TraceBuffer:
    """The current process-wide trace buffer."""
    return _trace


# -- convenience pass-throughs (hot code should hoist these) ---------------

def counter(name: str):
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str):
    return _registry.histogram(name)


def span(name: str, **fields):
    return _trace.span(name, **fields)


@contextmanager
def scoped_registry(
    reg: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install ``reg`` (default: a fresh enabled registry) as
    the current registry; restores the previous one on exit.

    This is the worker-process isolation primitive: each job records into
    its own registry, whose snapshot travels back over the pipe and is
    merged into the parent — pool workers are reused across jobs, so a
    plain global would double-count."""
    global _registry
    previous = _registry
    _registry = reg if reg is not None else MetricsRegistry(enabled=True)
    try:
        yield _registry
    finally:
        _registry = previous


__all__ = [
    "ATTRIBUTED_CAUSES",
    "BankTelemetry",
    "CPI_COMPONENTS",
    "CPIStack",
    "CPIStackCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "PCAttribution",
    "PCRecord",
    "Provenance",
    "SquashEvent",
    "TIMELINE_FORMATS",
    "TIMELINE_STAGES",
    "TimelineRecorder",
    "TraceBuffer",
    "UopTimeline",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "prometheus_name",
    "registry",
    "scoped_registry",
    "span",
    "trace",
]
