"""Periodic whole-bank telemetry over :class:`~repro.common.tables.TableBank`.

PR 7 moved every predictor table into struct-of-arrays ``TableBank``
storage, which makes whole-bank questions — how full is the LVT, how
much useful-bit mass do the tagged components carry, how long do
entries survive — a cheap columnar read (``dump()``) instead of a
per-entry crawl.  :class:`BankTelemetry` turns that into time series:
pass one as the ``banks`` argument of a pipeline run and it snapshots
every registered bank on a configurable µ-op cadence, yielding warmup
curves (occupancy over µ-ops) and an end-of-run utility heatmap
(per-component occupancy / useful mass / entry age).

Banks self-describe through a ``table_banks()`` hook on the VP adapter
(the BeBoP engine forwards its predictor's LVT / VT-0 / tagged banks);
anything else can be added with :meth:`register`.  Sampling is purely
read-only — ``dump()`` copies columns — so an instrumented run's stats
stay bit-identical, and ``banks=None`` costs one ``is None`` check per
fetch group.

Entry *age* is measured in completed sampling intervals: an entry whose
tag survived N consecutive snapshots has age N.  The snapshot list is
bounded (``max_snapshots``): when full it is decimated by dropping
every second snapshot, so arbitrarily long runs keep a coarse but
complete warmup curve in O(max_snapshots) memory.
"""

from __future__ import annotations


class BankTelemetry:
    """Sampled occupancy/utility telemetry for registered TableBanks.

    ``interval`` is the sampling cadence in µ-ops; ``max_snapshots``
    bounds retained history (decimation keeps first-to-last coverage).
    """

    def __init__(self, interval: int = 10_000,
                 max_snapshots: int = 64) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if max_snapshots < 4:
            raise ValueError(
                f"max_snapshots must be >= 4, got {max_snapshots}"
            )
        self.interval = interval
        self.max_snapshots = max_snapshots
        self._banks: list[dict] = []
        self._names: set[str] = set()
        # Per-bank entry ages (in snapshots) and the previous tag column,
        # for banks that declare a tag field.
        self._ages: dict[str, list[int]] = {}
        self._prev_tags: dict[str, list[int]] = {}
        self.snapshots: list[dict] = []
        self.samples = 0          # sample() calls (decimation never lowers it)

    # -- registration -------------------------------------------------------

    def register(self, name: str, bank, components: int = 1,
                 tag_field: str | None = None, tag_invalid: int = -1,
                 useful_field: str | None = None,
                 useful_gen_field: str | None = None,
                 gen=None) -> None:
        """Register one bank.

        ``components`` slices the entry range into equal sub-tables (the
        flat tagged bank holds ``components × tagged_entries`` rows).
        ``tag_field``/``tag_invalid`` enable tag-valid-fraction and
        entry-age tracking.  ``useful_field`` (optionally gated by
        ``useful_gen_field`` + a ``gen()`` callable returning the live
        generation counter) enables useful-bit-mass tracking.
        """
        if name in self._names:
            raise ValueError(f"bank {name!r} already registered")
        if components < 1 or bank.entries % components:
            raise ValueError(
                f"bank {name!r}: {bank.entries} entries do not split into "
                f"{components} component(s)"
            )
        self._names.add(name)
        # A variant-stacked bank (batched sweeps) is sampled as
        # ``variants`` independent banks, one telemetry row each — not as
        # one flattened bank, which would smear every variant's occupancy
        # together.
        variants = getattr(bank, "variants", None)
        self._banks.append({
            "name": name,
            "bank": bank,
            "components": components,
            "variants": variants,
            "tag_field": tag_field,
            "tag_invalid": tag_invalid,
            "useful_field": useful_field,
            "useful_gen_field": useful_gen_field,
            "gen": gen,
        })
        if tag_field is not None:
            for key in self._age_keys(name, variants):
                self._ages[key] = [0] * bank.entries
                self._prev_tags[key] = [tag_invalid] * bank.entries

    @staticmethod
    def _age_keys(name: str, variants: int | None) -> list[str]:
        """Age-state keys: one per variant for stacked banks."""
        if variants is None:
            return [name]
        return [f"{name}[{v}]" for v in range(variants)]

    def attach(self, sources) -> None:
        """Register every bank description in ``sources`` (the shape
        ``table_banks()`` hooks return: an iterable of kwargs dicts),
        skipping names already registered (re-runs reuse a collector)."""
        for src in sources:
            if src.get("name") in self._names:
                continue
            self.register(**src)

    @property
    def bank_names(self) -> tuple[str, ...]:
        return tuple(b["name"] for b in self._banks)

    # -- sampling -----------------------------------------------------------

    def _sample_bank(self, spec: dict) -> dict:
        bank = spec["bank"]
        if spec["variants"] is None:
            return self._sample_state(spec, bank.dump(), spec["name"])
        # Stacked bank: one row per variant (each with its own age
        # tracking), plus cross-variant aggregates so the existing
        # curve()/summary() keys keep working.
        rows = [
            self._sample_state(spec, bank.view(v).dump(), key)
            for v, key in enumerate(self._age_keys(spec["name"],
                                                   spec["variants"]))
        ]
        out = {
            "entries": bank.entries,
            "variants": rows,
            "occupancy": sum(r["occupancy"] for r in rows) / len(rows),
        }
        if all("useful_mass" in r for r in rows):
            out["useful_mass"] = sum(r["useful_mass"] for r in rows)
        return out

    def _sample_state(self, spec: dict, dump: dict, age_key: str) -> dict:
        """Sample one flat bank state (a whole bank, or one variant)."""
        bank = spec["bank"]
        components = spec["components"]
        per_comp = bank.entries // components

        tag_field = spec["tag_field"]
        tags = dump[tag_field] if tag_field is not None else None
        invalid = spec["tag_invalid"]

        ages = self._ages.get(age_key)
        if tags is not None:
            prev = self._prev_tags[age_key]
            for i, tag in enumerate(tags):
                if tag != invalid and tag == prev[i]:
                    ages[i] += 1
                else:
                    ages[i] = 0
            self._prev_tags[age_key] = list(tags)

        useful = None
        if spec["useful_field"] is not None:
            useful = dump[spec["useful_field"]]
            gen_field = spec["useful_gen_field"]
            if gen_field is not None and spec["gen"] is not None:
                cur = spec["gen"]()
                gens = dump[gen_field]
                useful = [u if g == cur else 0
                          for u, g in zip(useful, gens)]

        comps = []
        for c in range(components):
            lo, hi = c * per_comp, (c + 1) * per_comp
            comp: dict = {}
            if tags is not None:
                valid = sum(1 for t in tags[lo:hi] if t != invalid)
                comp["tag_valid"] = valid / per_comp
                comp["occupancy"] = comp["tag_valid"]
                live_ages = [ages[i] for i in range(lo, hi)
                             if tags[i] != invalid]
                comp["mean_age"] = (
                    sum(live_ages) / len(live_ages) if live_ages else 0.0
                )
            else:
                # No tag: occupancy is the nonzero fraction of the first
                # declared field's lanes (width-aware slice).
                first = bank.fields[0]
                lanes = dump[first.name]
                width = first.width
                lane_lo, lane_hi = lo * width, hi * width
                nz = sum(1 for v in lanes[lane_lo:lane_hi] if v)
                comp["occupancy"] = nz / (per_comp * width)
            if useful is not None:
                comp["useful_mass"] = sum(useful[lo:hi])
            comps.append(comp)

        out = {
            "entries": bank.entries,
            "components": comps,
            "occupancy": sum(c["occupancy"] for c in comps) / len(comps),
        }
        if useful is not None:
            out["useful_mass"] = sum(c["useful_mass"] for c in comps)
        return out

    def sample(self, uop_index: int, final: bool = False) -> dict | None:
        """Take one snapshot (deduped when nothing advanced since the
        last one, so the end-of-run sample never double-counts ages)."""
        if self.snapshots and self.snapshots[-1]["uop"] == uop_index:
            if final:
                self.snapshots[-1]["final"] = True
            return None
        snap = {
            "uop": uop_index,
            "final": final,
            "banks": {b["name"]: self._sample_bank(b) for b in self._banks},
        }
        self.snapshots.append(snap)
        self.samples += 1
        if len(self.snapshots) > self.max_snapshots:
            # Decimate: keep first/last, drop every second one in between.
            kept = self.snapshots[:-1:2] + self.snapshots[-1:]
            self.snapshots = kept
        return snap

    # -- reading ------------------------------------------------------------

    def curve(self, bank: str, key: str = "occupancy") -> list[tuple[int, float]]:
        """Warmup curve: (µ-op index, value of ``key``) per snapshot."""
        return [(s["uop"], s["banks"][bank][key])
                for s in self.snapshots if bank in s["banks"]]

    def summary(self) -> dict:
        """JSON-ready roll-up: final per-component heatmap per bank plus
        the retained occupancy curve."""
        last = self.snapshots[-1] if self.snapshots else None
        banks = {}
        for spec in self._banks:
            name = spec["name"]
            entry = {
                "entries": spec["bank"].entries,
                "n_components": spec["components"],
                "occupancy_curve": self.curve(name),
            }
            if spec["variants"] is not None:
                entry["n_variants"] = spec["variants"]
            if last is not None and name in last["banks"]:
                entry["final"] = last["banks"][name]
            banks[name] = entry
        return {
            "interval": self.interval,
            "samples": self.samples,
            "snapshots": len(self.snapshots),
            "banks": banks,
        }
