"""CPI-stack accounting for the trace-driven pipeline model.

The timing model commits µ-ops in order and ``stats.cycles`` is exactly the
advance of the commit front over the measured window.  The collector
exploits that: every time the commit front moves forward by ``delta``
cycles, those cycles are attributed to the *dominant cause* of the gap —
why the committing µ-op finished as late as it did — so the per-cause
components **sum exactly to** ``stats.cycles`` by construction (the
property :func:`CPIStack.check` enforces and the tests assert).

Causes follow the classic top-down breakdown, adapted to this model's
events:

``base``
    Issue/commit bandwidth, dependence chains on single-cycle ops, L1-hit
    load latency — cycles the paper's Baseline_6_60 pays by design.
``icache``
    Front end stalled on an instruction-block miss.
``branch_redirect`` / ``btb_redirect`` / ``vp_squash``
    Fetch barriers: conditional-branch mispredictions resolved at execute,
    BTB misses on taken branches at decode, and commit-time value
    misprediction squashes (the cost BeBoP's recovery policies trade).
``backend_full``
    Dispatch blocked on ROB / IQ / LQ / SQ occupancy.
``memory``
    Load misses (beyond the L1 hit latency), store-forwarding waits, and
    dependence chains rooted in them.
``fu``
    Functional-unit contention and long execution latencies (DIV, FP).

Attribution is a heuristic — overlapped stalls have no unique owner — but
the *total* is exact, deltas are assigned deterministically, and dependence
chains inherit their root cause (a consumer waiting on a load miss counts
as ``memory``, not ``base``), which is what makes the stack actionable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Component order used by every renderer and JSONL export.
CPI_COMPONENTS = (
    "base",
    "icache",
    "branch_redirect",
    "btb_redirect",
    "vp_squash",
    "backend_full",
    "memory",
    "fu",
)


@dataclass
class CPIStack:
    """One run's finished cycle breakdown."""

    workload: str = ""
    config: str = ""
    cycles: int = 0
    insts: int = 0
    components: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(CPI_COMPONENTS, 0)
    )

    @property
    def cpi(self) -> float:
        return self.cycles / self.insts if self.insts else 0.0

    def fraction(self, cause: str) -> float:
        return self.components[cause] / self.cycles if self.cycles else 0.0

    def cpi_of(self, cause: str) -> float:
        return self.components[cause] / self.insts if self.insts else 0.0

    def check(self) -> None:
        """Raise unless the components sum exactly to ``cycles``."""
        total = sum(self.components.values())
        if total != self.cycles:
            raise AssertionError(
                f"CPI stack for {self.workload}/{self.config} sums to "
                f"{total}, expected cycles={self.cycles}"
            )

    def as_dict(self) -> dict:
        """JSON-ready form (component order preserved)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "cycles": self.cycles,
            "insts": self.insts,
            "components": {c: self.components[c] for c in CPI_COMPONENTS},
        }


class CPIStackCollector:
    """Accumulates commit-front advances, one dominant cause per delta.

    The pipeline model calls :meth:`account` once per measured µ-op whose
    commit moved the commit front, and :meth:`finish` once at the end of
    the run.  The collector is passive — it never reads or perturbs machine
    state — which is why obs-enabled runs produce bit-identical
    :class:`~repro.pipeline.stats.SimStats`.
    """

    __slots__ = ("components", "stack")

    def __init__(self) -> None:
        self.components: dict[str, int] = dict.fromkeys(CPI_COMPONENTS, 0)
        self.stack: CPIStack | None = None

    def account(self, cause: str, delta: int) -> None:
        self.components[cause] += delta

    def finish(self, stats) -> CPIStack:
        """Seal the stack against a finished run's :class:`SimStats`.

        ``stats.cycles`` is clamped to ``max(1, ...)`` by the model; when
        the measured window committed nothing the clamp cycle lands in
        ``base`` so the exact-sum invariant holds unconditionally.
        """
        total = sum(self.components.values())
        if total < stats.cycles:
            self.components["base"] += stats.cycles - total
        self.stack = CPIStack(
            workload=stats.workload,
            config=stats.config,
            cycles=stats.cycles,
            insts=stats.insts,
            components=dict(self.components),
        )
        self.stack.check()
        return self.stack
