"""Parameterised program kernels covering the value-pattern classes.

Value predictors distinguish workloads only through the (PC, branch history,
value stream) they observe.  The kernels below generate programs dominated by
one pattern class each; the suite (:mod:`repro.workloads.suite`) mixes them
to mimic individual SPEC benchmarks:

``strided``
    Array streaming with induction variables and stride-valued loads — the
    bread and butter of Stride/D-VTAGE predictors (swim, mgrid, applu...).
    A ``tight`` variant has a 4-instruction loop body so that many iterations
    are in flight simultaneously, which is what makes the *speculative
    window* matter (wupwise/applu/bzip in Fig 7b).
``control_dep``
    Register values correlated with the global branch history but not with
    their own previous values — VTAGE-predictable, Stride-hostile
    (gcc, perlbench, xalancbmk).
``pointer_chase``
    Serialised loads walking a shuffled ring of nodes — low IPC,
    hard to predict (mcf, omnetpp).
``random_compute``
    Values from a PRNG plus data-dependent branches — the unpredictable
    floor (gobmk, sjeng).
``constant``
    Reloads of rarely-changing values — last-value-predictable.

All builders return ``(Program, init_mem)`` where ``init_mem`` pre-populates
data structures (e.g. the pointer ring) the program expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import XorShift64
from repro.isa.instruction import Opcode, StaticInst
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import fp_reg, int_reg

#: Plausible x86-64 instruction-length distribution (bytes -> weight).
_LENGTH_WEIGHTS: tuple[tuple[int, int], ...] = (
    (1, 1),
    (2, 4),
    (3, 6),
    (4, 6),
    (5, 4),
    (6, 2),
    (7, 2),
    (8, 1),
    (10, 1),
)
_LENGTH_POOL: tuple[int, ...] = tuple(
    length for length, weight in _LENGTH_WEIGHTS for _ in range(weight)
)

DATA_BASE = 0x10_0000
RING_BASE = 0x80_0000
#: A ring node's payload must sit on a different 64-byte line than its
#: next pointer (see build_pointer_chase_kernel).
LINE_BYTES_SAFE = 64


class InstFactory:
    """Builds :class:`StaticInst` with deterministic pseudo-random lengths.

    Byte lengths are what give fetch blocks their x86 flavour: a given static
    instruction always has the same length, but different instructions start
    at irregular boundaries, so BeBoP's byte-index tags do real work.
    """

    def __init__(self, seed: int) -> None:
        self._rng = XorShift64(seed ^ 0xC0FFEE)

    def _length(self) -> int:
        return _LENGTH_POOL[self._rng.next_below(len(_LENGTH_POOL))]

    def make(
        self,
        opcode: Opcode,
        dests: tuple[int, ...] = (),
        srcs: tuple[int, ...] = (),
        imm: int = 0,
        target: str | None = None,
    ) -> StaticInst:
        return StaticInst(
            opcode=opcode,
            dests=dests,
            srcs=srcs,
            imm=imm,
            target=target,
            length=self._length(),
        )

    # Convenience emitters -------------------------------------------------

    def li(self, rd: int, imm: int) -> StaticInst:
        return self.make(Opcode.LI, dests=(rd,), imm=imm)

    def addi(self, rd: int, rs: int, imm: int) -> StaticInst:
        return self.make(Opcode.ADDI, dests=(rd,), srcs=(rs,), imm=imm)

    def add(self, rd: int, ra: int, rb: int) -> StaticInst:
        return self.make(Opcode.ADD, dests=(rd,), srcs=(ra, rb))

    def load(self, rd: int, ra: int, imm: int = 0) -> StaticInst:
        return self.make(Opcode.LOAD, dests=(rd,), srcs=(ra,), imm=imm)

    def store(self, ra: int, rb: int, imm: int = 0) -> StaticInst:
        return self.make(Opcode.STORE, srcs=(ra, rb), imm=imm)

    def branch(
        self, opcode: Opcode, ra: int, rb: int, target: str
    ) -> StaticInst:
        return self.make(opcode, srcs=(ra, rb), target=target)

    def jmp(self, target: str) -> StaticInst:
        return self.make(Opcode.JMP, target=target)



def _noise_blocks(
    f: InstFactory,
    prefix: str,
    counter: int,
    rnd: int,
    bit: int,
    zero: int,
    filler: int,
    cont: str,
    period: int,
) -> list[BasicBlock]:
    """Blocks implementing a rare data-dependent branch.

    Real workloads mispredict branches every few hundred instructions
    (SPEC MPKI is in the units); perfectly periodic synthetic loops would
    otherwise never mispredict once TAGE warms up, and pipeline squashes are
    what re-anchors speculative value-prediction chains.  Every ``period``
    iterations (gated by a TAGE-predictable counter test) a branch steered
    by one PRNG bit executes — unpredictable by construction, costing one
    misprediction every ~2*period iterations.

    The entry block is ``{prefix}_chk``; control continues at ``cont``.
    """
    chk = BasicBlock(f"{prefix}_chk")
    chk.add(f.make(Opcode.ANDI, dests=(bit,), srcs=(counter,), imm=period - 1))
    chk.add(f.branch(Opcode.BNE, bit, zero, cont))
    chk.fallthrough = f"{prefix}_ns"
    ns = BasicBlock(f"{prefix}_ns")
    ns.add(f.make(Opcode.RAND, dests=(rnd,)))
    ns.add(f.make(Opcode.ANDI, dests=(bit,), srcs=(rnd,), imm=1))
    ns.add(f.branch(Opcode.BEQ, bit, zero, cont))
    ns.fallthrough = f"{prefix}_tk"
    tk = BasicBlock(f"{prefix}_tk")
    tk.add(f.addi(filler, filler, 1))
    tk.add(f.jmp(cont))
    return [chk, ns, tk]


@dataclass
class KernelResult:
    """A built kernel: the program plus any pre-initialised memory."""

    program: Program
    init_mem: dict[int, int] = field(default_factory=dict)


def build_strided_kernel(
    seed: int = 1,
    trip: int = 64,
    body_fp_ops: int = 4,
    body_int_ops: int = 3,
    loads: int = 2,
    stores: int = 1,
    value_stride: int = 24,
    tight: bool = False,
    noise_period: int = 16,
    fp_chains: int = 2,
) -> KernelResult:
    """Streaming loop over an array holding an arithmetic progression.

    The init loop writes ``a[i] = 7 + i * value_stride``; the main loop
    streams over the array, so every load PC sees a perfectly strided value
    series and every accumulator advances by a constant.  The FP body is
    ``fp_chains`` *serial* accumulation chains (3-cycle FADDs through the
    same register), so the baseline is dependence-bound the way FP SPEC
    codes are — exactly the latency that correct value predictions collapse.
    With ``tight=True`` the body shrinks to a handful of µ-ops, putting many
    iterations in flight at once (the speculative-window stressor).
    """
    f = InstFactory(seed)
    i, n, addr, acc = int_reg(1), int_reg(2), int_reg(3), int_reg(4)
    zero, tmp = int_reg(5), int_reg(6)
    rnd, bit = int_reg(14), int_reg(15)
    loaded = [int_reg(7 + (k % 6)) for k in range(max(loads, 1))]
    # One register per serial chain plus the shared constant addend (the
    # chain count is what bounds per-iteration latency, not the op count).
    n_chain_regs = max(1, min(fp_chains, 15))
    fregs = [fp_reg(k) for k in range(n_chain_regs)] + [fp_reg(15)]

    entry = BasicBlock("entry")
    entry.add(f.li(zero, 0))
    entry.add(f.li(n, trip))
    entry.add(f.li(addr, DATA_BASE))
    entry.add(f.li(i, 0))
    entry.add(f.li(tmp, 7))
    for k, fr in enumerate(fregs):
        # Small chain addends: real codes overwhelmingly produce short
        # strides, which is what makes the paper's 8-bit partial strides
        # (§VI-B-a) nearly free.
        entry.add(f.li(fr, 3 + 2 * k))

    init = BasicBlock("init")
    init.add(f.store(addr, tmp))
    init.add(f.addi(tmp, tmp, value_stride))
    init.add(f.addi(addr, addr, 8))
    init.add(f.addi(i, i, 1))
    init.add(f.branch(Opcode.BLT, i, n, "init"))

    head = BasicBlock("head")
    head.add(f.li(addr, DATA_BASE))
    head.add(f.li(i, 0))

    loop = BasicBlock("loop")
    if tight:
        # load / serial FADD chain / induction / branch: ~3 cycles per
        # iteration of latency for 5 instructions, all value-predictable.
        loop.add(f.load(loaded[0], addr))
        loop.add(f.make(Opcode.FADD, dests=(fregs[0],), srcs=(fregs[0], fregs[-1])))
        loop.add(f.addi(addr, addr, 8))
        loop.add(f.addi(i, i, 1))
        loop.add(f.branch(Opcode.BLT, i, n, "noise_chk"))
    else:
        chains = max(1, min(fp_chains, len(fregs) - 1))
        for k in range(loads):
            loop.add(f.load(loaded[k], addr, imm=8 * k))
        for k in range(body_fp_ops):
            # Serial accumulation chains: chain c advances by the constant
            # fregs[-1] every op, so every FADD result is strided.
            c = k % chains
            loop.add(f.make(Opcode.FADD, dests=(fregs[c],), srcs=(fregs[c], fregs[-1])))
        for k in range(body_int_ops):
            loop.add(f.addi(acc, acc, 5 + k))
        for k in range(stores):
            loop.add(f.store(addr, loaded[k % len(loaded)], imm=512 + 8 * k))
        loop.add(f.addi(addr, addr, 8))
        loop.add(f.addi(i, i, 1))
        loop.add(f.branch(Opcode.BLT, i, n, "noise_chk"))

    back = BasicBlock("back")
    back.add(f.jmp("head"))
    noise = _noise_blocks(f, "noise", i, rnd, bit, zero, acc, "loop", noise_period)

    return KernelResult(Program([entry, init, head, loop, back] + noise))


def build_control_dep_kernel(
    seed: int = 2,
    period: int = 4,
    arms: int = 3,
    strided_ops: int = 1,
    random_ops: int = 0,
    noise_period: int = 32,
) -> KernelResult:
    """Values selected by the branch history, on a latency-critical path.

    Each iteration dispatches over ``arms`` counter-selected branches (the
    history source), then a *single* load reads ``table[sel]`` — one static
    PC whose value is a deterministic function of the last few branch
    outcomes.  That is exactly the correlation VTAGE's global-history
    indexing captures; a stride predictor sees a period-``period`` value
    cycle at one PC and learns nothing.  The loaded value feeds a serial
    add chain and a 3-cycle multiply chain, so a correct prediction
    collapses real latency (the way interpreter/compiler codes benefit).
    """
    f = InstFactory(seed)
    i, sel, out, acc = int_reg(1), int_reg(2), int_reg(3), int_reg(4)
    zero, strid = int_reg(5), int_reg(6)
    rnd, prod = int_reg(7), int_reg(10)
    taddr, toff = int_reg(11), int_reg(12)
    shift3 = int_reg(13)

    table_base = DATA_BASE + 0x40000
    # Irregular spacing: consecutive-visit deltas differ per sel transition,
    # so a per-PC stride predictor cannot settle on one stride.
    init_mem = {table_base + 8 * s: 97 * s * s + 13 for s in range(period)}

    entry = BasicBlock("entry")
    entry.add(f.li(zero, 0))
    entry.add(f.li(i, 0))
    entry.add(f.li(strid, 0))
    entry.add(f.li(prod, 3))
    entry.add(f.li(shift3, 3))

    loop = BasicBlock("loop")
    loop.add(f.addi(i, i, 1))
    loop.add(f.make(Opcode.ANDI, dests=(sel,), srcs=(i,), imm=period - 1))
    # Dispatch chain: compare sel against 0..arms-2 (history generation).
    blocks: list[BasicBlock] = [entry, loop]
    for a in range(arms - 1):
        test = BasicBlock(f"test{a}")
        cmp_reg = int_reg(8)
        test.add(f.li(cmp_reg, a))
        test.add(
            f.branch(
                Opcode.BNE, sel, cmp_reg,
                f"test{a + 1}" if a + 2 < arms else "arm_last",
            )
        )
        arm = BasicBlock(f"arm{a}")
        arm.add(f.addi(acc, acc, 1 + a))
        arm.add(f.jmp("join"))
        test.fallthrough = f"arm{a}"
        blocks.append(test)
        blocks.append(arm)
    arm_last = BasicBlock("arm_last")
    arm_last.add(f.addi(acc, acc, arms))
    blocks.append(arm_last)

    join = BasicBlock("join")
    # One static load whose value is history-determined: table[sel].
    join.add(f.make(Opcode.SHL, dests=(toff,), srcs=(sel, shift3)))
    join.add(f.li(taddr, table_base))
    join.add(f.add(taddr, taddr, toff))
    join.add(f.load(out, taddr))
    join.add(f.add(acc, acc, out))          # consumer of the loaded value
    # Control-flow dependent *strided* pattern (the case D-VTAGE exists
    # for, §III-C): each visit bumps table[sel], so the load's value is a
    # per-history strided series — VTAGE alone sees ever-new values, a
    # stride predictor sees irregular per-PC deltas, D-VTAGE captures it.
    join.add(f.addi(prod, out, 17))
    join.add(f.store(taddr, prod))
    for k in range(strided_ops):
        join.add(f.addi(strid, strid, 13 + k))
    for _ in range(random_ops):
        join.add(f.make(Opcode.RAND, dests=(rnd,)))
    join.add(f.jmp("noise_chk"))
    blocks.append(join)
    bit = int_reg(9)
    blocks.extend(
        _noise_blocks(f, "noise", i, rnd, bit, zero, acc, "loop", noise_period)
    )

    # Fix the dispatch chain: loop falls through into test0.
    loop.fallthrough = "test0"
    arm_last.fallthrough = "join"
    return KernelResult(Program(blocks), init_mem)


def build_pointer_chase_kernel(
    seed: int = 3,
    nodes: int = 1024,
    payload_ops: int = 2,
    spread: int = 4096,
    noise_period: int = 16,
    strided_payload: bool = False,
) -> KernelResult:
    """Walk a shuffled ring of linked nodes.

    Each node is ``spread`` bytes apart in a permuted order, so next-pointer
    values form a long-period sequence that neither stride nor realistic
    context predictors capture, and the chase serialises the loads.  The
    payload lives on a *different* cache line than the next pointer
    (``spread/2`` bytes in), so reading it cannot accidentally prefetch the
    next node and shortcut the dependent-miss chain.  Payload values are
    hashed per node (unpredictable) unless ``strided_payload`` asks for the
    friendlier variant some memory-bound FP codes show.
    """
    if spread < 128 + LINE_BYTES_SAFE:
        raise ValueError(f"spread too small for distinct lines: {spread}")
    rng = XorShift64(seed ^ 0xABCDEF)
    order = list(range(nodes))
    # Fisher-Yates with the deterministic RNG.
    for k in range(nodes - 1, 0, -1):
        j = rng.next_below(k + 1)
        order[k], order[j] = order[j], order[k]
    addr_of = [RING_BASE + idx * spread for idx in order]
    payload_off = spread // 2
    init_mem: dict[int, int] = {}
    for k in range(nodes):
        nxt = addr_of[(k + 1) % nodes]
        init_mem[addr_of[k]] = nxt              # node.next
        if strided_payload:
            payload = 3 * k + 11
        else:
            payload = rng.next_u64()
        init_mem[addr_of[k] + payload_off] = payload

    f = InstFactory(seed)
    ptr, pay, acc, i = int_reg(1), int_reg(2), int_reg(3), int_reg(4)
    zero, rnd, bit = int_reg(5), int_reg(14), int_reg(15)

    entry = BasicBlock("entry")
    entry.add(f.li(ptr, addr_of[0]))
    entry.add(f.li(zero, 0))
    entry.add(f.li(i, 0))

    loop = BasicBlock("loop")
    loop.add(f.load(ptr, ptr))          # ptr = ptr->next (serialising)
    loop.add(f.load(pay, ptr, imm=payload_off))   # payload, separate line
    for k in range(payload_ops):
        loop.add(f.add(acc, acc, pay))
    loop.add(f.addi(i, i, 1))
    loop.add(f.jmp("noise_chk"))
    noise = _noise_blocks(f, "noise", i, rnd, bit, zero, acc, "loop", noise_period)

    return KernelResult(Program([entry, loop] + noise), init_mem)


def build_random_kernel(
    seed: int = 4,
    body_ops: int = 4,
    branch_entropy_bits: int = 1,
) -> KernelResult:
    """PRNG-driven values and data-dependent branches.

    ``branch_entropy_bits`` low bits of the random value steer a conditional
    branch, making it essentially unpredictable; all produced values are
    uncorrelated, bounding predictor coverage from below.
    """
    f = InstFactory(seed)
    rnd, acc, bit, zero = int_reg(1), int_reg(2), int_reg(3), int_reg(4)

    entry = BasicBlock("entry")
    entry.add(f.li(zero, 0))
    entry.add(f.li(acc, 0))

    loop = BasicBlock("loop")
    loop.add(f.make(Opcode.RAND, dests=(rnd,)))
    for k in range(body_ops):
        loop.add(f.make(Opcode.XOR, dests=(acc,), srcs=(acc, rnd)))
    loop.add(
        f.make(
            Opcode.ANDI, dests=(bit,), srcs=(rnd,),
            imm=(1 << branch_entropy_bits) - 1,
        )
    )
    loop.add(f.branch(Opcode.BEQ, bit, zero, "even"))

    odd = BasicBlock("odd")
    odd.add(f.addi(acc, acc, 1))
    odd.add(f.jmp("loop"))

    even = BasicBlock("even")
    even.add(f.addi(acc, acc, 2))
    even.add(f.jmp("loop"))

    return KernelResult(Program([entry, loop, odd, even]))


def build_constant_kernel(
    seed: int = 5,
    change_period: int = 4096,
    body_ops: int = 3,
    noise_period: int = 16,
) -> KernelResult:
    """Reload of a value that changes only every ``change_period`` iterations.

    Classic last-value behaviour: the load is almost always equal to its
    previous instance, occasionally stepping.
    """
    f = InstFactory(seed)
    i, n, val, acc, cfg = int_reg(1), int_reg(2), int_reg(3), int_reg(4), int_reg(5)
    zero, rnd, bit = int_reg(6), int_reg(14), int_reg(15)

    entry = BasicBlock("entry")
    entry.add(f.li(zero, 0))
    entry.add(f.li(i, 0))
    entry.add(f.li(n, change_period))
    entry.add(f.li(cfg, DATA_BASE + 0x8000))
    entry.add(f.li(val, 555))
    entry.add(f.store(cfg, val))

    loop = BasicBlock("loop")
    loop.add(f.load(val, cfg))                      # near-constant value
    for k in range(body_ops):
        loop.add(f.add(acc, acc, val))
    loop.add(f.addi(i, i, 1))
    loop.add(f.branch(Opcode.BLT, i, n, "noise_chk"))

    step = BasicBlock("step")                        # rare: bump the constant
    step.add(f.load(val, cfg))
    step.add(f.addi(val, val, 77))
    step.add(f.store(cfg, val))
    step.add(f.li(i, 0))
    step.add(f.jmp("loop"))
    noise = _noise_blocks(f, "noise", i, rnd, bit, zero, acc, "loop", noise_period)

    return KernelResult(Program([entry, loop, step] + noise))


def build_mixed_kernel(
    seed: int = 6,
    trip: int = 48,
    strided_ops: int = 2,
    control_arms: int = 2,
    random_ops: int = 1,
    loads: int = 1,
    muls: int = 1,
    use_divmod: bool = False,
    noise_period: int = 16,
) -> KernelResult:
    """A loop combining strided, control-dependent and random components.

    The workhorse for "middle of the pack" benchmarks (parser, vortex,
    h264ref...): some coverage for every predictor, full for none.
    """
    f = InstFactory(seed)
    i, n, addr, acc = int_reg(1), int_reg(2), int_reg(3), int_reg(4)
    zero, sel, out, rnd = int_reg(5), int_reg(6), int_reg(7), int_reg(8)
    bit = int_reg(15)
    ld = int_reg(9)
    q, r = int_reg(10), int_reg(11)

    entry = BasicBlock("entry")
    entry.add(f.li(zero, 0))
    entry.add(f.li(i, 0))
    entry.add(f.li(n, trip))
    entry.add(f.li(addr, DATA_BASE + 0x20000))
    entry.add(f.li(acc, 1))

    fill = BasicBlock("fill")
    fill.add(f.store(addr, i))
    fill.add(f.addi(addr, addr, 8))
    fill.add(f.addi(i, i, 1))
    fill.add(f.branch(Opcode.BLT, i, n, "fill"))

    head = BasicBlock("head")
    head.add(f.li(addr, DATA_BASE + 0x20000))
    head.add(f.li(i, 0))

    loop = BasicBlock("loop")
    for k in range(strided_ops):
        loop.add(f.addi(acc, acc, 9 + 2 * k))
    for k in range(loads):
        loop.add(f.load(ld, addr, imm=8 * k))
    # The load (strided, predictable) feeds a serial add chain: correct
    # predictions collapse a 4-cycle L1 hit plus the adds.
    loop.add(f.add(acc, acc, ld))
    for _ in range(muls):
        loop.add(f.make(Opcode.MUL, dests=(out,), srcs=(acc, acc)))
    if use_divmod:
        loop.add(f.make(Opcode.DIVMOD, dests=(q, r), srcs=(ld, acc)))
    for _ in range(random_ops):
        loop.add(f.make(Opcode.RAND, dests=(rnd,)))
    loop.add(f.make(Opcode.ANDI, dests=(sel,), srcs=(i,), imm=control_arms - 1))
    loop.add(f.branch(Opcode.BNE, sel, zero, "armB"))

    arm_a = BasicBlock("armA")
    arm_a.add(f.addi(out, zero, 4242))
    arm_a.add(f.jmp("tail"))

    arm_b = BasicBlock("armB")
    arm_b.add(f.addi(out, zero, 1717))

    tail = BasicBlock("tail")
    tail.add(f.add(acc, acc, out))
    tail.add(f.addi(addr, addr, 8))
    tail.add(f.addi(i, i, 1))
    tail.add(f.branch(Opcode.BLT, i, n, "noise_chk"))

    back = BasicBlock("back")
    back.add(f.jmp("head"))
    noise = _noise_blocks(f, "noise", i, rnd, bit, zero, acc, "loop", noise_period)

    return KernelResult(
        Program([entry, fill, head, loop, arm_a, arm_b, tail, back] + noise)
    )


def build_h2p_kernel(
    seed: int = 7,
    trip: int = 512,
    hard_branches: int = 2,
    stepping_loads: int = 2,
    change_period: int = 256,
    body_ops: int = 3,
) -> KernelResult:
    """Hard-to-predict cost concentrated in a handful of static PCs.

    The H2P literature ("Branch Prediction Is Not a Solved Problem",
    Bullseye) observes that almost all remaining misprediction cost hides
    in a few static instructions.  This kernel builds that shape on
    purpose, as the steep-curve workload for the ``h2p`` experiment:

    * ``hard_branches`` branches steered by one fresh PRNG bit execute
      **every** iteration — unpredictable by construction, so nearly all
      ``branch_redirect`` cycles land on these few static PCs;
    * ``stepping_loads`` loads reload per-cell constants that step every
      ``change_period`` iterations (a power of two; long enough for the
      FPC to reach full confidence between steps), so used-then-wrong
      value predictions squash at exactly those load PCs;
    * everything else — a strided array stream feeding an accumulator
      plus ``body_ops`` constant-increment ALU ops — is predictable
      background that rarely squashes.

    The result: the top handful of PCs own nearly all attributed
    ``vp_squash``/``branch_redirect`` recovery cycles (the acceptance
    bar is ≥ 80% for the top 10).
    """
    if change_period & (change_period - 1):
        raise ValueError(
            f"change_period must be a power of two, got {change_period}"
        )
    hard_branches = max(1, min(hard_branches, 4))
    stepping_loads = max(1, min(stepping_loads, 2))

    f = InstFactory(seed)
    i, n, addr, acc = int_reg(1), int_reg(2), int_reg(3), int_reg(4)
    zero, tmp, v, it = int_reg(5), int_reg(6), int_reg(7), int_reg(8)
    cfgs = [int_reg(9), int_reg(10)][:stepping_loads]
    cvs = [int_reg(11), int_reg(12)][:stepping_loads]
    rnd, bit = int_reg(14), int_reg(15)

    entry = BasicBlock("entry")
    entry.add(f.li(zero, 0))
    entry.add(f.li(acc, 1))
    entry.add(f.li(it, 0))
    entry.add(f.li(i, 0))
    entry.add(f.li(n, trip))
    entry.add(f.li(addr, DATA_BASE))
    entry.add(f.li(tmp, 7))
    for j, (cfg, cv) in enumerate(zip(cfgs, cvs)):
        entry.add(f.li(cfg, DATA_BASE + 0x8000 + 0x40 * j))
        entry.add(f.li(cv, 901 + 832 * j))
        entry.add(f.store(cfg, cv))

    fill = BasicBlock("fill")                       # strided background data
    fill.add(f.store(addr, tmp))
    fill.add(f.addi(tmp, tmp, 24))
    fill.add(f.addi(addr, addr, 8))
    fill.add(f.addi(i, i, 1))
    fill.add(f.branch(Opcode.BLT, i, n, "fill"))

    head = BasicBlock("head")
    head.add(f.li(addr, DATA_BASE))
    head.add(f.li(i, 0))

    loop = BasicBlock("loop")
    loop.add(f.load(v, addr))                       # strided, predictable
    loop.add(f.add(acc, acc, v))
    for cfg, cv in zip(cfgs, cvs):
        loop.add(f.load(cv, cfg))                   # near-constant, steps
        loop.add(f.add(acc, acc, cv))
    for k in range(body_ops):
        loop.add(f.addi(acc, acc, 3 + k))
    loop.add(f.addi(addr, addr, 8))
    loop.add(f.addi(i, i, 1))
    loop.add(f.addi(it, it, 1))

    # The H2P branches: one fresh PRNG bit each, every iteration.
    hb_blocks: list[BasicBlock] = []
    for b in range(hard_branches):
        nxt = f"hb{b + 1}" if b + 1 < hard_branches else "stepchk"
        hb = BasicBlock(f"hb{b}")
        hb.add(f.make(Opcode.RAND, dests=(rnd,)))
        hb.add(f.make(Opcode.ANDI, dests=(bit,), srcs=(rnd,), imm=1))
        hb.add(f.branch(Opcode.BEQ, bit, zero, nxt))
        tk = BasicBlock(f"hb{b}_t")
        tk.add(f.addi(acc, acc, 1))
        hb_blocks += [hb, tk]

    stepchk = BasicBlock("stepchk")                 # TAGE-predictable gate
    stepchk.add(f.make(
        Opcode.ANDI, dests=(bit,), srcs=(it,), imm=change_period - 1,
    ))
    stepchk.add(f.branch(Opcode.BNE, bit, zero, "loopend"))

    step = BasicBlock("step")                       # bump the constants
    for j, (cfg, cv) in enumerate(zip(cfgs, cvs)):
        step.add(f.load(cv, cfg))
        step.add(f.addi(cv, cv, 13 + 8 * j))
        step.add(f.store(cfg, cv))

    loopend = BasicBlock("loopend")
    loopend.add(f.branch(Opcode.BLT, i, n, "loop"))

    back = BasicBlock("back")
    back.add(f.jmp("head"))

    return KernelResult(Program(
        [entry, fill, head, loop] + hb_blocks + [stepchk, step, loopend, back]
    ))
