"""Functional execution of programs into dynamic µ-op traces.

The trace generator is an interpreter over the synthetic ISA.  It tracks the
architectural register file and a sparse 64-bit memory, resolves branches,
cracks instructions into µ-ops and emits one :class:`DynMicroOp` per µ-op
with its actual produced value.  The timing model replays this trace; the
functional and timing concerns stay fully separated, as in trace-driven
simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bits import to_signed, to_unsigned
from repro.common.rng import XorShift64
from repro.isa.instruction import (
    DynMicroOp,
    Opcode,
    StaticInst,
    crack,
)
from repro.isa.program import Program

FETCH_BLOCK_BYTES = 16
_BLOCK_MASK = ~(FETCH_BLOCK_BYTES - 1)


def _default_memory_value(addr: int) -> int:
    """Deterministic contents of untouched memory.

    A multiplicative hash: distinct addresses give effectively uncorrelated
    values, so loads from unwritten memory look unpredictable — kernels that
    want predictable load streams must store the pattern first (or stream
    over addresses whose values they wrote).
    """
    return to_unsigned(addr * 0x9E3779B97F4A7C15 ^ 0x5DEECE66D, 64)


@dataclass
class Trace:
    """A fully materialised dynamic trace plus its provenance."""

    name: str
    program: Program
    uops: list[DynMicroOp]
    #: number of x86-like instructions (not µ-ops) executed
    inst_count: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.uops)


class TraceGenerator:
    """Interpreter producing dynamic µ-ops from a program.

    The generator is resumable: :meth:`run` may be called repeatedly to
    extend the trace, which the experiment harness uses to warm predictors
    before measuring (mirroring the paper's 50M-warmup / 100M-measure
    protocol at our smaller scale).
    """

    def __init__(
        self,
        program: Program,
        seed: int = 42,
        init_regs: dict[int, int] | None = None,
        init_mem: dict[int, int] | None = None,
    ) -> None:
        self.program = program
        self.regs: dict[int, int] = {r: 0 for r in range(32)}
        if init_regs:
            for reg, val in init_regs.items():
                self.regs[reg] = to_unsigned(val, 64)
        self.mem: dict[int, int] = {}
        if init_mem:
            for addr, val in init_mem.items():
                self.mem[addr] = to_unsigned(val, 64)
        self.rng = XorShift64(seed)
        self._seq = 0
        self._inst_count = 0
        # Interpreter program counter state: (block index, inst index).
        self._block_index = {b.name: i for i, b in enumerate(program.blocks)}
        self._cur_block = self._block_index[program.entry]
        self._cur_inst = 0
        self._halted = False
        self._last_taken = False

    @property
    def inst_count(self) -> int:
        return self._inst_count

    @property
    def halted(self) -> bool:
        return self._halted

    def _read(self, reg: int) -> int:
        return self.regs.get(reg, 0)

    def _load(self, addr: int) -> int:
        addr = to_unsigned(addr, 64)
        value = self.mem.get(addr)
        if value is None:
            value = _default_memory_value(addr)
            self.mem[addr] = value
        return value

    def _store(self, addr: int, value: int) -> None:
        self.mem[to_unsigned(addr, 64)] = to_unsigned(value, 64)

    def _alu(self, inst: StaticInst) -> int:
        """Evaluate the single-result arithmetic opcodes."""
        op = inst.opcode
        a = self._read(inst.srcs[0]) if inst.srcs else 0
        b = self._read(inst.srcs[1]) if len(inst.srcs) > 1 else 0
        if op is Opcode.ADD or op is Opcode.FADD:
            return to_unsigned(a + b, 64)
        if op is Opcode.SUB:
            return to_unsigned(a - b, 64)
        if op is Opcode.AND:
            return a & b
        if op is Opcode.OR:
            return a | b
        if op is Opcode.XOR:
            return a ^ b
        if op is Opcode.SHL:
            return to_unsigned(a << (b & 63), 64)
        if op is Opcode.SHR:
            return a >> (b & 63)
        if op is Opcode.ADDI:
            return to_unsigned(a + inst.imm, 64)
        if op is Opcode.ANDI:
            return a & to_unsigned(inst.imm, 64)
        if op is Opcode.XORI:
            return a ^ to_unsigned(inst.imm, 64)
        if op is Opcode.LI:
            return to_unsigned(inst.imm, 64)
        if op is Opcode.MUL or op is Opcode.FMUL:
            return to_unsigned(a * b, 64)
        if op is Opcode.DIV or op is Opcode.FDIV:
            return 0 if b == 0 else a // b
        if op is Opcode.RAND:
            return self.rng.next_u64()
        raise ValueError(f"not a single-result ALU opcode: {op}")

    def _branch_taken(self, inst: StaticInst) -> bool:
        a = self._read(inst.srcs[0]) if inst.srcs else 0
        b = self._read(inst.srcs[1]) if len(inst.srcs) > 1 else 0
        op = inst.opcode
        if op is Opcode.JMP:
            return True
        if op is Opcode.BEQ:
            return a == b
        if op is Opcode.BNE:
            return a != b
        if op is Opcode.BLT:
            return to_signed(a, 64) < to_signed(b, 64)
        if op is Opcode.BGE:
            return to_signed(a, 64) >= to_signed(b, 64)
        raise ValueError(f"not a branch opcode: {op}")

    def _emit(self, inst: StaticInst, out: list[DynMicroOp]) -> None:
        """Execute one instruction, appending its dynamic µ-ops to ``out``."""
        templates = crack(inst)
        op = inst.opcode
        block_pc = inst.pc & _BLOCK_MASK
        boundary = inst.pc & (FETCH_BLOCK_BYTES - 1)

        # Pre-compute per-µ-op values / memory effects.
        values: list[int | None] = [None] * len(templates)
        mem_addr: int | None = None
        taken = False
        target = 0
        if op is Opcode.LOAD:
            mem_addr = to_unsigned(self._read(inst.srcs[0]) + inst.imm, 64)
            values[0] = self._load(mem_addr)
            self.regs[inst.dests[0]] = values[0]
        elif op is Opcode.STORE:
            mem_addr = to_unsigned(self._read(inst.srcs[0]) + inst.imm, 64)
            self._store(mem_addr, self._read(inst.srcs[1]))
        elif op is Opcode.LOADADD:
            mem_addr = to_unsigned(self._read(inst.srcs[0]) + inst.imm, 64)
            loaded = self._load(mem_addr)
            values[0] = loaded
            values[1] = to_unsigned(loaded + self._read(inst.srcs[1]), 64)
            self.regs[inst.dests[0]] = values[1]
        elif op is Opcode.DIVMOD:
            a, b = self._read(inst.srcs[0]), self._read(inst.srcs[1])
            values[0] = 0 if b == 0 else a // b
            values[1] = 0 if b == 0 else a % b
            self.regs[inst.dests[0]] = values[0]
            self.regs[inst.dests[1]] = values[1]
        elif inst.is_branch:
            taken = self._branch_taken(inst)
            if taken:
                target = self.program.target_pc(inst)
        elif op is not Opcode.NOP:
            values[0] = self._alu(inst)
            self.regs[inst.dests[0]] = values[0]

        n = len(templates)
        for i, tmpl in enumerate(templates):
            uop_value = values[i]
            out.append(
                DynMicroOp(
                    seq=self._seq,
                    pc=inst.pc,
                    static_id=inst.static_id,
                    uop_index=tmpl.uop_index,
                    inst_length=inst.length,
                    block_pc=block_pc,
                    boundary=boundary,
                    dest=tmpl.dest,
                    srcs=tmpl.srcs,
                    value=uop_value,
                    latency_class=tmpl.latency_class,
                    is_load=tmpl.is_load,
                    is_store=tmpl.is_store,
                    is_branch=tmpl.is_branch,
                    is_cond_branch=tmpl.is_branch and inst.is_conditional,
                    is_load_imm=tmpl.is_load_imm,
                    mem_addr=mem_addr if (tmpl.is_load or tmpl.is_store) else None,
                    branch_taken=taken,
                    branch_target=target,
                    is_first_uop=(i == 0),
                    is_last_uop=(i == n - 1),
                )
            )
            self._seq += 1
        self._inst_count += 1
        self._last_taken = taken

    def run(self, max_uops: int) -> list[DynMicroOp]:
        """Execute until ``max_uops`` more µ-ops are produced (or halt).

        The program halts if control falls off the end of a block with no
        fallthrough successor.
        """
        out: list[DynMicroOp] = []
        program = self.program
        while len(out) < max_uops and not self._halted:
            block = program.blocks[self._cur_block]
            inst = block.insts[self._cur_inst]
            self._emit(inst, out)
            if inst.is_branch and self._last_taken:
                self._cur_block = self._block_index[inst.target]  # type: ignore[index]
                self._cur_inst = 0
                continue
            self._cur_inst += 1
            if self._cur_inst >= len(block.insts):
                fall = program.block_fallthrough[block.name]
                if fall is None:
                    self._halted = True
                else:
                    self._cur_block = self._block_index[fall]
                    self._cur_inst = 0
        return out


def generate_trace(
    program: Program,
    max_uops: int,
    name: str = "anonymous",
    seed: int = 42,
    init_regs: dict[int, int] | None = None,
    init_mem: dict[int, int] | None = None,
) -> Trace:
    """Convenience wrapper: build a generator, run it, wrap the result.

    If the program halts before ``max_uops`` µ-ops, the trace is simply
    shorter — loops in the suite's kernels are written to be effectively
    unbounded so this only happens for straight-line test programs.
    """
    gen = TraceGenerator(program, seed=seed, init_regs=init_regs, init_mem=init_mem)
    uops = gen.run(max_uops)
    return Trace(name=name, program=program, uops=uops, inst_count=gen.inst_count)
