"""Synthetic workloads standing in for the paper's SPEC slices.

The paper evaluates on Simpoint slices of 36 SPEC CPU2000/2006 benchmarks
(Table II).  Reference SPEC inputs and gem5 checkpoints are not available
here, so this package provides the substitution documented in DESIGN.md:

* :mod:`repro.workloads.trace` — a functional interpreter that executes a
  laid-out :class:`~repro.isa.program.Program` and emits the dynamic µ-op
  trace (values, memory addresses, branch outcomes) that the timing model
  and predictors consume;
* :mod:`repro.workloads.kernels` — parameterised program generators covering
  the value-pattern classes that drive value-prediction results (strided
  loops, constant reloads, control-flow-correlated values, pointer chasing,
  unpredictable computation);
* :mod:`repro.workloads.suite` — the 36 named workloads, one per Table-II
  benchmark, each a kernel mix chosen to mimic that benchmark's published
  behaviour (FP benchmarks strided and predictable, mcf pointer-chasing and
  memory-bound, gobmk/sjeng branchy and value-unpredictable...).
"""

from repro.workloads.trace import Trace, TraceGenerator, generate_trace
from repro.workloads.suite import (
    SUITE,
    WorkloadSpec,
    all_workload_names,
    build_workload,
)

__all__ = [
    "Trace",
    "TraceGenerator",
    "generate_trace",
    "SUITE",
    "WorkloadSpec",
    "all_workload_names",
    "build_workload",
]
