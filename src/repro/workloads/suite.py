"""The 36-workload suite mirroring Table II of the paper.

Each SPEC benchmark from Table II is represented by one synthetic workload
whose kernel mix mimics the benchmark's published character: FP array codes
are strided and highly value-predictable, pointer chasers are memory-bound
and unpredictable, compilers/interpreters are control-flow-correlated, game
engines are the unpredictable floor.  ``paper_ipc`` records the baseline IPC
the paper reports (Table II) so the Table-II bench can print both side by
side.

The per-benchmark assignments are substitutions (see DESIGN.md §2): what is
preserved is the *predictability class* and the loop structure (multi-block
loop bodies with several iterations in flight for the spec-window-sensitive
benchmarks wupwise/applu/bzip2/xalancbmk), not the actual SPEC computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.workloads import kernels
from repro.workloads.kernels import KernelResult


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload of the suite."""

    name: str
    suite: str                      # "CPU2000" | "CPU2006"
    category: str                   # "INT" | "FP"
    paper_ipc: float                # baseline IPC reported in Table II
    builder: Callable[..., KernelResult]
    params: dict[str, object] = field(default_factory=dict)
    seed: int = 42

    def build(self) -> KernelResult:
        return self.builder(seed=self.seed, **self.params)


def _spec(
    name: str,
    suite: str,
    category: str,
    ipc: float,
    builder: Callable[..., KernelResult],
    seed: int,
    **params: object,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite=suite,
        category=category,
        paper_ipc=ipc,
        builder=builder,
        params=params,
        seed=seed,
    )


#: All 36 workloads, in Table II order (CPU2000 first, then CPU2006).
SUITE: tuple[WorkloadSpec, ...] = (
    # ----- SPEC CPU2000 --------------------------------------------------
    # gzip: tight compression loops, partially strided (tables/indexes).
    _spec("gzip", "CPU2000", "INT", 0.845, kernels.build_mixed_kernel, 101,
          trip=96, strided_ops=3, control_arms=2, random_ops=1, loads=2),
    # wupwise: unrolled FP loops spanning ~10 fetch blocks with several
    # iterations in flight -> strided AND spec-window sensitive (Fig 7b).
    _spec("wupwise", "CPU2000", "FP", 1.303, kernels.build_strided_kernel, 102,
          trip=48, body_fp_ops=20, body_int_ops=8, loads=5, stores=2,
          fp_chains=2, value_stride=24),
    # swim/mgrid/applu: classic strided FP array codes, the big VP winners.
    _spec("swim", "CPU2000", "FP", 1.745, kernels.build_strided_kernel, 103,
          trip=128, body_fp_ops=6, body_int_ops=3, loads=3, stores=1,
          value_stride=16),
    _spec("mgrid", "CPU2000", "FP", 2.361, kernels.build_strided_kernel, 104,
          trip=256, body_fp_ops=8, body_int_ops=2, loads=4, stores=1,
          value_stride=8),
    _spec("applu", "CPU2000", "FP", 1.481, kernels.build_strided_kernel, 105,
          trip=40, body_fp_ops=24, body_int_ops=6, loads=5, stores=2,
          fp_chains=2, value_stride=40),
    # vpr: place-and-route, pointer/graph heavy with random flavour.
    _spec("vpr", "CPU2000", "INT", 0.668, kernels.build_pointer_chase_kernel, 106,
          nodes=512, payload_ops=3, spread=1024),
    # mesa: rendering, control-dependent values with strided background.
    _spec("mesa", "CPU2000", "FP", 1.021, kernels.build_control_dep_kernel, 107,
          period=8, arms=4, strided_ops=2),
    # art: neural-net simulation, memory streaming, medium predictability.
    _spec("art", "CPU2000", "FP", 0.441, kernels.build_pointer_chase_kernel, 108,
          nodes=4096, payload_ops=2, spread=512),
    # equake: sparse FP, mixed.
    _spec("equake", "CPU2000", "FP", 0.655, kernels.build_mixed_kernel, 109,
          trip=64, strided_ops=2, control_arms=2, random_ops=1, loads=2, muls=1),
    # crafty: chess, branchy with some history-correlated values.
    _spec("crafty", "CPU2000", "INT", 1.562, kernels.build_control_dep_kernel, 110,
          period=16, arms=5, strided_ops=1, random_ops=1),
    # ammp: molecular dynamics, strided with longer bodies.
    _spec("ammp", "CPU2000", "FP", 1.258, kernels.build_strided_kernel, 111,
          trip=96, body_fp_ops=5, body_int_ops=2, loads=2, stores=1),
    # parser: dictionary walking, mixed with pointer flavour.
    _spec("parser", "CPU2000", "INT", 0.486, kernels.build_mixed_kernel, 112,
          trip=56, strided_ops=1, control_arms=4, random_ops=1, loads=2),
    # vortex: OO database, near-constant reloads + control dependence.
    _spec("vortex", "CPU2000", "INT", 1.526, kernels.build_constant_kernel, 113,
          change_period=2048, body_ops=4),
    # twolf: placement, pointer chasing, lowest IPC of CPU2000.
    _spec("twolf", "CPU2000", "INT", 0.282, kernels.build_pointer_chase_kernel, 114,
          nodes=2048, payload_ops=2, spread=2048),
    # ----- SPEC CPU2006 --------------------------------------------------
    # perlbench: interpreter dispatch -> strongly history-correlated.
    _spec("perlbench", "CPU2006", "INT", 1.400, kernels.build_control_dep_kernel, 115,
          period=8, arms=6, strided_ops=1),
    # bzip2: medium modelling loops -> strided, spec-window sensitive.
    _spec("bzip2", "CPU2006", "INT", 0.702, kernels.build_strided_kernel, 116,
          trip=32, body_fp_ops=14, body_int_ops=10, loads=4, stores=2,
          fp_chains=2, value_stride=8),
    # gcc: compiler, control-dependent with random sprinkling.
    _spec("gcc", "CPU2006", "INT", 1.002, kernels.build_control_dep_kernel, 117,
          period=16, arms=6, strided_ops=1, random_ops=1),
    # gamess: quantum chemistry, long strided FP bodies.
    _spec("gamess", "CPU2006", "FP", 1.694, kernels.build_strided_kernel, 118,
          trip=192, body_fp_ops=7, body_int_ops=3, loads=3, stores=1),
    # mcf: THE pointer chaser, lowest IPC of the table.
    _spec("mcf", "CPU2006", "INT", 0.113, kernels.build_pointer_chase_kernel, 119,
          nodes=16384, payload_ops=1, spread=4096),
    # milc: lattice QCD, strided streaming.
    _spec("milc", "CPU2006", "FP", 0.501, kernels.build_strided_kernel, 120,
          trip=160, body_fp_ops=4, body_int_ops=2, loads=4, stores=2,
          value_stride=32),
    # gromacs: MD, strided with control.
    _spec("gromacs", "CPU2006", "FP", 0.753, kernels.build_mixed_kernel, 121,
          trip=80, strided_ops=3, control_arms=2, random_ops=0, loads=2, muls=2),
    # leslie3d: CFD, heavily strided.
    _spec("leslie3d", "CPU2006", "FP", 2.151, kernels.build_strided_kernel, 122,
          trip=224, body_fp_ops=8, body_int_ops=2, loads=4, stores=1,
          value_stride=8),
    # namd: MD, strided with longer bodies, high IPC.
    _spec("namd", "CPU2006", "FP", 1.781, kernels.build_strided_kernel, 123,
          trip=144, body_fp_ops=6, body_int_ops=4, loads=2, stores=1),
    # gobmk: go engine, unpredictable floor.
    _spec("gobmk", "CPU2006", "INT", 0.733, kernels.build_random_kernel, 124,
          body_ops=4, branch_entropy_bits=1),
    # soplex: LP solver, sparse memory + mixed.
    _spec("soplex", "CPU2006", "FP", 0.271, kernels.build_pointer_chase_kernel, 125,
          nodes=8192, payload_ops=2, spread=2048),
    # povray: ray tracing, control-dependent FP.
    _spec("povray", "CPU2006", "FP", 1.465, kernels.build_control_dep_kernel, 126,
          period=8, arms=4, strided_ops=2),
    # hmmer: profile HMM, regular high-IPC loops with strided indexes.
    _spec("hmmer", "CPU2006", "INT", 2.037, kernels.build_strided_kernel, 127,
          trip=128, body_fp_ops=2, body_int_ops=6, loads=3, stores=1),
    # sjeng: chess, unpredictable.
    _spec("sjeng", "CPU2006", "INT", 1.182, kernels.build_random_kernel, 128,
          body_ops=5, branch_entropy_bits=1),
    # GemsFDTD: FDTD solver, strided, tightish loops (spec-window gains).
    _spec("GemsFDTD", "CPU2006", "FP", 1.146, kernels.build_strided_kernel, 129,
          trip=56, body_fp_ops=3, body_int_ops=2, loads=2, stores=1,
          value_stride=40),
    # libquantum: quantum simulation, perfectly strided streaming.
    _spec("libquantum", "CPU2006", "INT", 0.459, kernels.build_strided_kernel, 130,
          trip=256, body_fp_ops=1, body_int_ops=4, loads=2, stores=2,
          value_stride=48),
    # h264ref: video encoding, mixed with multiply + divmod.
    _spec("h264ref", "CPU2006", "INT", 1.008, kernels.build_mixed_kernel, 131,
          trip=72, strided_ops=2, control_arms=4, random_ops=1, loads=2,
          muls=1, use_divmod=True),
    # lbm: lattice Boltzmann, strided streaming, memory heavy.
    _spec("lbm", "CPU2006", "FP", 0.380, kernels.build_strided_kernel, 132,
          trip=320, body_fp_ops=5, body_int_ops=1, loads=4, stores=3,
          value_stride=8),
    # omnetpp: discrete event simulation, pointer chasing.
    _spec("omnetpp", "CPU2006", "INT", 0.304, kernels.build_pointer_chase_kernel, 133,
          nodes=8192, payload_ops=2, spread=4096),
    # astar: path finding, pointer-ish with control dependence.
    _spec("astar", "CPU2006", "INT", 1.165, kernels.build_mixed_kernel, 134,
          trip=64, strided_ops=1, control_arms=4, random_ops=1, loads=2),
    # sphinx3: speech recognition, strided FP with control.
    _spec("sphinx3", "CPU2006", "FP", 0.803, kernels.build_mixed_kernel, 135,
          trip=88, strided_ops=3, control_arms=2, random_ops=0, loads=3, muls=1),
    # xalancbmk: XML transform, tight traversal loops, history-correlated,
    # spec-window sensitive in the paper.
    _spec("xalancbmk", "CPU2006", "INT", 1.835, kernels.build_strided_kernel, 136,
          trip=24, body_fp_ops=10, body_int_ops=14, loads=4, stores=1,
          fp_chains=1, value_stride=16),
)

#: Workloads outside Table II.  Resolvable by name (get_spec /
#: build_workload) but deliberately NOT part of all_workload_names(), so
#: default sweeps, caches and golden suites stay exactly the paper's 36.
EXTRA: tuple[WorkloadSpec, ...] = (
    # h2p_hard: misprediction cost concentrated in a handful of static
    # PCs — always-unpredictable PRNG branches plus stepping-constant
    # loads (see kernels.build_h2p_kernel).  The steep-curve workload of
    # the h2p experiment; paper_ipc 0.0 = not a Table II benchmark.
    _spec("h2p_hard", "EXTRA", "INT", 0.0, kernels.build_h2p_kernel, 137,
          trip=512, hard_branches=2, stepping_loads=2, change_period=256),
)

_BY_NAME: dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (*SUITE, *EXTRA)
}


def all_workload_names() -> tuple[str, ...]:
    """Names of the full 36-benchmark suite, in Table II order."""
    return tuple(spec.name for spec in SUITE)


def extra_workload_names() -> tuple[str, ...]:
    """Names of the extra (non-Table-II) workloads."""
    return tuple(spec.name for spec in EXTRA)


def get_spec(name: str) -> WorkloadSpec:
    """Look up one workload spec by benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None


def build_workload(name: str) -> KernelResult:
    """Build (program + initial memory) for a named workload."""
    return get_spec(name).build()
