"""Confidence and usefulness counters.

Two kinds of small counters appear throughout the paper:

* plain saturating counters (TAGE usefulness bits, 2-delta stride confidence);
* *Forward Probabilistic Counters* (FPC, Perais & Seznec HPCA 2014): a 3-bit
  counter that is reset on a wrong prediction and incremented only with a
  per-level probability on a correct one.  With probability vector
  ``{1, 1/16, 1/16, 1/16, 1/16, 1/32, 1/32}`` an instruction must be correct
  around 200 times on average before its prediction is used, which is what
  pushes accuracy above 99.5%.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.rng import XorShift64

#: Probability vector used in the paper (Section V-B) for 3-bit FPC:
#: the first transition (0 -> 1) always happens, the next four happen with
#: probability 1/16 and the last two with probability 1/32.
PAPER_FPC_PROBABILITIES: tuple[float, ...] = (
    1.0,
    1.0 / 16,
    1.0 / 16,
    1.0 / 16,
    1.0 / 16,
    1.0 / 32,
    1.0 / 32,
)


class SaturatingCounter:
    """An n-bit up/down saturating counter.

    >>> c = SaturatingCounter(bits=2, initial=0)
    >>> for _ in range(5):
    ...     _ = c.increment()
    >>> c.value
    3
    """

    __slots__ = ("bits", "_max", "value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self._max = (1 << bits) - 1
        if not 0 <= initial <= self._max:
            raise ValueError(f"initial value {initial} out of range for {bits} bits")
        self.value = initial

    @property
    def max_value(self) -> int:
        return self._max

    def increment(self) -> int:
        if self.value < self._max:
            self.value += 1
        return self.value

    def decrement(self) -> int:
        if self.value > 0:
            self.value -= 1
        return self.value

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self._max:
            raise ValueError(f"reset value {value} out of range")
        self.value = value

    @property
    def is_saturated(self) -> bool:
        return self.value == self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class ForwardProbabilisticCounter:
    """3-bit (by default) forward probabilistic confidence counter.

    The counter advances from level ``k`` to ``k+1`` with probability
    ``probabilities[k]`` on a correct prediction and resets to zero on an
    incorrect one.  The prediction is *used* only when the counter saturates.
    """

    __slots__ = ("bits", "_max", "probabilities", "value", "_rng")

    def __init__(
        self,
        bits: int = 3,
        probabilities: Sequence[float] = PAPER_FPC_PROBABILITIES,
        rng: XorShift64 | None = None,
        initial: int = 0,
    ) -> None:
        self.bits = bits
        self._max = (1 << bits) - 1
        if len(probabilities) != self._max:
            raise ValueError(
                f"need {self._max} transition probabilities for a "
                f"{bits}-bit counter, got {len(probabilities)}"
            )
        self.probabilities = tuple(probabilities)
        if not 0 <= initial <= self._max:
            raise ValueError(f"initial value {initial} out of range")
        self.value = initial
        self._rng = rng if rng is not None else XorShift64()

    @property
    def max_value(self) -> int:
        return self._max

    @property
    def is_confident(self) -> bool:
        """True when the prediction should actually be used."""
        return self.value == self._max

    def on_correct(self) -> None:
        """Probabilistically advance after a correct prediction."""
        if self.value < self._max and self._rng.chance(self.probabilities[self.value]):
            self.value += 1

    def on_incorrect(self) -> None:
        """Reset after a wrong prediction."""
        self.value = 0

    def set(self, value: int) -> None:
        """Force the counter level (used when D-VTAGE propagates confidence
        from a providing entry into a newly allocated one)."""
        if not 0 <= value <= self._max:
            raise ValueError(f"value {value} out of range")
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ForwardProbabilisticCounter(bits={self.bits}, value={self.value})"
