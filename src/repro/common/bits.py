"""Fixed-width bit arithmetic helpers.

Hardware tables store fixed-width fields (partial tags, partial strides,
folded histories).  Python integers are unbounded, so every structure in the
model funnels its width handling through these helpers to keep the semantics
(wrap-around, sign extension) explicit and in one place.
"""

from __future__ import annotations

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


def mask(bits: int) -> int:
    """Return a mask with the ``bits`` low-order bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if bits < 0:
        raise ValueError(f"bit width must be non-negative, got {bits}")
    return (1 << bits) - 1


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Truncate ``value`` to an unsigned ``bits``-wide integer (wraps)."""
    return value & mask(bits)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement number.

    >>> to_signed(0xFF, 8)
    -1
    >>> to_signed(0x7F, 8)
    127
    """
    value &= mask(bits)
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend the low ``from_bits`` of ``value`` to ``to_bits`` wide.

    The result is returned as an *unsigned* ``to_bits``-wide integer, which is
    how the datapath would present it on a bus.

    >>> hex(sign_extend(0xFF, 8, 16))
    '0xffff'
    >>> sign_extend(0x7F, 8, 16)
    127
    """
    if from_bits > to_bits:
        raise ValueError(
            f"cannot sign-extend from {from_bits} bits to narrower {to_bits}"
        )
    return to_unsigned(to_signed(value, from_bits), to_bits)


def fold_bits(value: int, input_bits: int, output_bits: int) -> int:
    """XOR-fold ``input_bits`` of ``value`` down to ``output_bits``.

    This mirrors the folded-history logic of TAGE-family predictors: the long
    global history is compressed into an index/tag-sized value by XORing
    successive ``output_bits``-wide chunks.

    >>> fold_bits(0b1010_1100, 8, 4)
    6
    """
    if output_bits <= 0:
        return 0
    value &= mask(input_bits)
    chunk = mask(output_bits)
    folded = 0
    while value:
        folded ^= value & chunk
        value >>= output_bits
    return folded
