"""Shared low-level utilities used across the predictor and pipeline models.

This package holds the plumbing common to every hardware structure in the
reproduction: fixed-width bit arithmetic (:mod:`repro.common.bits`),
saturating and forward-probabilistic confidence counters
(:mod:`repro.common.counters`), folded global branch/path histories as used
by TAGE-like predictors (:mod:`repro.common.history`), and a small
deterministic pseudo-random generator (:mod:`repro.common.rng`) so that every
simulation run is reproducible bit-for-bit.
"""

from repro.common.bits import (
    fold_bits,
    mask,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.common.counters import (
    ForwardProbabilisticCounter,
    SaturatingCounter,
)
from repro.common.history import FoldedHistory, GlobalHistory
from repro.common.rng import XorShift64

__all__ = [
    "fold_bits",
    "mask",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "SaturatingCounter",
    "ForwardProbabilisticCounter",
    "FoldedHistory",
    "GlobalHistory",
    "XorShift64",
]
