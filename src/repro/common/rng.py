"""Deterministic pseudo-random number generation.

Hardware predictors use small LFSRs for probabilistic decisions (TAGE
allocation choice, forward-probabilistic confidence increments).  We model
them with a xorshift64 generator: fast, stateful, and fully deterministic so
that two simulations with the same seed produce identical cycle counts.
"""

from __future__ import annotations

import hashlib

from repro.common.bits import WORD_MASK


class XorShift64:
    """Marsaglia xorshift64 generator with a 64-bit state.

    >>> rng = XorShift64(seed=1)
    >>> a = rng.next_u64()
    >>> rng2 = XorShift64(seed=1)
    >>> a == rng2.next_u64()
    True
    """

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        if seed == 0:
            # A zero state is a fixed point of xorshift; remap it.
            seed = 0x9E3779B97F4A7C15
        self._state = seed & WORD_MASK

    def next_u64(self) -> int:
        """Advance the state and return the next 64-bit value."""
        x = self._state
        x ^= (x << 13) & WORD_MASK
        x ^= x >> 7
        x ^= (x << 17) & WORD_MASK
        self._state = x
        return x

    def next_bits(self, bits: int) -> int:
        """Return the next value truncated to ``bits`` bits."""
        return self.next_u64() & ((1 << bits) - 1)

    def next_below(self, bound: int) -> int:
        """Return a value uniform-ish in ``[0, bound)``.

        Modulo bias is irrelevant at the scale of table-allocation decisions,
        matching how real designs use a handful of LFSR bits.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def chance(self, probability: float) -> bool:
        """Bernoulli draw with the given probability (0.0..1.0)."""
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return self.next_u64() < int(probability * (WORD_MASK + 1))

    def fork(self) -> "XorShift64":
        """Return an independent generator seeded from this one.

        The child's seed is scrambled so that it does not share its state
        (and hence its next outputs) with the parent.
        """
        seed = (self.next_u64() * 0x2545F4914F6CDD1D) & WORD_MASK
        return XorShift64(seed | 1)


def deterministic_backoff(key: str, attempt: int, base: float,
                          cap: float) -> float:
    """Exponential backoff delay with deterministic jitter.

    ``attempt`` counts retries from 1; the raw delay doubles per attempt
    (``base * 2**(attempt-1)``) and is capped at ``cap`` *before* jitter.
    Jitter scales the raw delay by a factor in ``[0.5, 1.0)`` drawn from
    ``sha256(key # attempt)`` — a pure function of its inputs, so two
    processes retrying the same key never thunder in lockstep yet every
    rerun of the same scenario waits exactly as long.  Used by the
    distributed coordinator's lease re-queue and the serve client's
    transient-failure retries.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if base < 0 or cap < 0:
        raise ValueError(f"base and cap must be >= 0, got {base}, {cap}")
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"{key}#{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return raw * (0.5 + 0.5 * unit)
