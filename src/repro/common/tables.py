"""Struct-of-arrays predictor table storage behind one backend API.

Every SRAM-like structure in the simulator — VTAGE/D-VTAGE components,
the LVT, TAGE banks, the BTB, BeBoP's block tables — is a *bank*: a
fixed number of entries, each made of a few narrow typed fields (tag,
value, stride, confidence, useful, useful_gen).  Modelling an entry as
a Python object means every probe pays attribute lookups and every
bank is a spray of heap objects; a bank is really a handful of
parallel columns.

:class:`TableBank` is that columnar contract.  A bank is declared as a
tuple of :class:`Field` specs and read/written through flat columns:

* ``col(name)`` returns the column as an indexable, mutable sequence
  whose identity is stable for the bank's lifetime — hot paths cache
  these references once in ``__init__`` and index them directly.
  Vector fields (``width > 1``) are stored flat; callers address
  ``entry * width + lane``.
* ``read``/``write``/``read_vec``/``write_vec``/``probe`` are the
  convenience ops for cold paths and tests; ``bulk_reset`` and
  ``fill`` restore defaults without rebinding columns.

Two interchangeable backends ship:

* ``python`` (default): one plain Python list per column.  Zero
  dependencies; this is the fast path for scalar element access.
* ``numpy``: one ``int64``/``uint64`` ndarray per column — the layout
  batched simulation needs.  Optional (``pip install repro[numpy]``).

Both backends are bit-identical by construction: the golden-stats
suite runs on each, and a hypothesis property test drives random op
sequences against both and compares full state.  Value conventions
that make that possible on fixed-width arrays:

* signed fields (the default) hold values in ``[-2**63, 2**63)`` —
  tags use ``-1`` as the empty sentinel;
* ``unsigned`` fields hold values in ``[0, 2**64)`` — 64-bit data
  values and strides are stored pre-masked (``to_unsigned``);
* everything returned by ``read``/``read_vec`` is a plain ``int``, so
  values never leak numpy scalars into stats, JSON, or cache blobs.

The active backend is process-global (``set_table_backend``), defaults
to ``$REPRO_TABLE_BACKEND`` or ``python``, and can be scoped with the
``use_table_backend`` context manager; any component can also pin one
explicitly via its ``table_backend=`` constructor argument.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, NamedTuple, Sequence

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_U64_MAX = (1 << 64) - 1

#: Backend names the config surface accepts, whether or not importable
#: here — a python-only client may submit a numpy-backend job to a
#: server that has the extra installed.
KNOWN_BACKENDS = ("python", "numpy")

_INSTALL_HINT = "install it with: pip install repro[numpy] (or pip install numpy)"


class Field(NamedTuple):
    """One typed column of a bank.

    ``width > 1`` declares a vector field: each entry holds ``width``
    lanes, stored flat (``entry * width + lane``).  ``unsigned`` fields
    store 64-bit data values in ``[0, 2**64)``; signed fields (tags,
    counters) store values in ``[-2**63, 2**63)``.
    """

    name: str
    default: int = 0
    width: int = 1
    unsigned: bool = False


def _validate_layout(entries: int, fields: Sequence[Field]) -> tuple[Field, ...]:
    """Shared entry/field validation for flat and variant-stacked banks."""
    if entries <= 0:
        raise ValueError(f"bank needs a positive entry count, got {entries}")
    fields = tuple(fields)
    if not fields:
        raise ValueError("bank needs at least one field")
    seen: set[str] = set()
    for field in fields:
        if field.name in seen:
            raise ValueError(f"duplicate field name {field.name!r}")
        seen.add(field.name)
        if field.width < 1:
            raise ValueError(
                f"field {field.name!r} width must be >= 1, got {field.width}"
            )
        lo, hi = (0, _U64_MAX) if field.unsigned else (_I64_MIN, _I64_MAX)
        if not lo <= field.default <= hi:
            raise ValueError(
                f"field {field.name!r} default {field.default} out of range"
            )
    return fields


class TableBank:
    """Abstract struct-of-arrays bank; see module docstring for the API."""

    backend = "abstract"

    #: Flat banks carry no variant axis; :class:`StackedTableBank` overrides.
    variants: int | None = None

    def __init__(self, entries: int, fields: Sequence[Field]) -> None:
        self.entries = entries
        self.fields = _validate_layout(entries, fields)
        self._by_name = {field.name: field for field in self.fields}

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(
                f"bank has no field {name!r}; fields: "
                + ", ".join(self._by_name)
            ) from None

    # -- hot-path access -----------------------------------------------------

    def col(self, name: str):
        """The flat column for ``name``: indexable, mutable, stable identity.

        Mutations through the returned object are the bank's state; the
        bank never rebinds a column, so cached references stay valid
        across ``bulk_reset``/``fill``.
        """
        raise NotImplementedError

    # -- convenience ops -----------------------------------------------------

    def read(self, name: str, index: int) -> int:
        """Scalar field value at ``index`` as a plain ``int``."""
        field = self.field(name)
        if field.width != 1:
            raise ValueError(f"field {name!r} is a vector; use read_vec")
        return int(self.col(name)[index])

    def write(self, name: str, index: int, value: int) -> None:
        field = self.field(name)
        if field.width != 1:
            raise ValueError(f"field {name!r} is a vector; use write_vec")
        self.col(name)[index] = value

    def read_vec(self, name: str, index: int) -> list[int]:
        """All lanes of vector field ``name`` at entry ``index`` (a copy)."""
        field = self.field(name)
        base = index * field.width
        col = self.col(name)
        return [int(col[base + lane]) for lane in range(field.width)]

    def write_vec(self, name: str, index: int, values: Sequence[int]) -> None:
        field = self.field(name)
        if len(values) != field.width:
            raise ValueError(
                f"field {name!r} has width {field.width}, got {len(values)} values"
            )
        base = index * field.width
        col = self.col(name)
        for lane, value in enumerate(values):
            col[base + lane] = value

    def probe(self, name: str, index: int, expected: int) -> bool:
        """Tag-match check: does scalar field ``name`` at ``index`` equal
        ``expected``?"""
        field = self.field(name)
        if field.width != 1:
            raise ValueError(f"field {name!r} is a vector; probe is scalar")
        return bool(self.col(name)[index] == expected)

    def fill(self, name: str, value: int) -> None:
        """Set every lane of ``name`` to ``value``, in place."""
        raise NotImplementedError

    def bulk_reset(self) -> None:
        """Restore every field to its declared default, in place."""
        for field in self.fields:
            self.fill(field.name, field.default)

    # -- introspection -------------------------------------------------------

    def dump(self) -> dict[str, list[int]]:
        """Full state as plain-int lists (tests / state comparison)."""
        out: dict[str, list[int]] = {}
        for field in self.fields:
            col = self.col(field.name)
            out[field.name] = [int(col[i]) for i in range(self.entries * field.width)]
        return out


class PythonTableBank(TableBank):
    """Parallel plain Python lists — the zero-dependency default."""

    backend = "python"

    def __init__(self, entries: int, fields: Sequence[Field]) -> None:
        super().__init__(entries, fields)
        self._cols = {
            field.name: [field.default] * (entries * field.width)
            for field in self.fields
        }

    def col(self, name: str) -> list[int]:
        try:
            return self._cols[name]
        except KeyError:
            self.field(name)  # raises the informative ValueError
            raise

    def fill(self, name: str, value: int) -> None:
        col = self.col(name)
        col[:] = [value] * len(col)


_np = None


def _require_numpy():
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - environment dependent
            raise ValueError(
                f"table backend 'numpy' requires numpy; {_INSTALL_HINT}"
            ) from exc
        _np = numpy
    return _np


def numpy_available() -> bool:
    try:
        _require_numpy()
    except ValueError:
        return False
    return True


class NumpyTableBank(TableBank):
    """One ``int64``/``uint64`` ndarray per column.

    Unsigned fields use ``uint64`` (callers store 64-bit data values
    pre-masked); signed fields use ``int64`` so ``-1`` tag sentinels
    work.  ``read``/``read_vec`` return plain ints, so numpy scalars
    never escape into stats or JSON.
    """

    backend = "numpy"

    def __init__(self, entries: int, fields: Sequence[Field]) -> None:
        np = _require_numpy()
        super().__init__(entries, fields)
        self._cols = {}
        for field in self.fields:
            dtype = np.uint64 if field.unsigned else np.int64
            self._cols[field.name] = np.full(
                entries * field.width, field.default, dtype=dtype
            )

    def col(self, name: str):
        try:
            return self._cols[name]
        except KeyError:
            self.field(name)  # raises the informative ValueError
            raise

    def fill(self, name: str, value: int) -> None:
        self.col(name)[:] = value

    def dump(self) -> dict[str, list[int]]:
        """Full state as plain-int lists.

        ``ndarray.tolist()`` converts to builtin ``int`` per element by
        construction — regression-tested, since a ``np.uint64`` leaking
        out of a dump poisons JSON export and cross-backend state
        comparison.
        """
        return {
            field.name: self.col(field.name).tolist() for field in self.fields
        }


class StackedTableBank:
    """``variants`` independent same-shape banks on a leading variant axis.

    Batched sweeps run N predictor variants over one trace; when the
    variants share a bank shape their table state lives in one stacked
    bank so vectorized code can touch all variants per column at once.

    * ``view(v)`` returns variant ``v`` as a real :class:`TableBank`
      *sharing storage* with the stack — the scalar path runs on views
      unchanged, which is what makes batched-vs-serial parity checkable.
    * ``col(name)`` returns the stacked column: a tuple of per-variant
      flat lists (python backend) or one ``(variants, entries * width)``
      ndarray (numpy backend) whose row ``v`` aliases ``view(v)``'s
      column.
    * ``dump()`` returns one plain-int dict per variant (JSON-safe).

    The python implementation is a loop of ordinary
    :class:`PythonTableBank` instances and stays authoritative; the
    numpy one must match it bit for bit.
    """

    backend = "abstract"

    def __init__(self, variants: int, entries: int, fields: Sequence[Field]) -> None:
        if variants <= 0:
            raise ValueError(f"stacked bank needs variants >= 1, got {variants}")
        self.variants = variants
        self.entries = entries
        self.fields = _validate_layout(entries, fields)
        self._by_name = {field.name: field for field in self.fields}

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(
                f"bank has no field {name!r}; fields: "
                + ", ".join(self._by_name)
            ) from None

    def view(self, variant: int) -> TableBank:
        """Variant ``variant`` as a storage-sharing :class:`TableBank`."""
        raise NotImplementedError

    def views(self) -> tuple[TableBank, ...]:
        return tuple(self.view(v) for v in range(self.variants))

    def col(self, name: str):
        """The stacked column for ``name`` (variant-major)."""
        raise NotImplementedError

    # -- convenience ops (delegate to the per-variant views) -----------------

    def read(self, variant: int, name: str, index: int) -> int:
        return self.view(variant).read(name, index)

    def write(self, variant: int, name: str, index: int, value: int) -> None:
        self.view(variant).write(name, index, value)

    def read_vec(self, variant: int, name: str, index: int) -> list[int]:
        return self.view(variant).read_vec(name, index)

    def write_vec(
        self, variant: int, name: str, index: int, values: Sequence[int]
    ) -> None:
        self.view(variant).write_vec(name, index, values)

    def probe(self, variant: int, name: str, index: int, expected: int) -> bool:
        return self.view(variant).probe(name, index, expected)

    def fill(self, name: str, value: int) -> None:
        for v in range(self.variants):
            self.view(v).fill(name, value)

    def bulk_reset(self) -> None:
        for field in self.fields:
            self.fill(field.name, field.default)

    def dump(self) -> list[dict[str, list[int]]]:
        """Per-variant full state as plain-int lists (JSON-export safe)."""
        return [self.view(v).dump() for v in range(self.variants)]


class StackedPythonTableBank(StackedTableBank):
    """Loop-of-banks reference implementation: one
    :class:`PythonTableBank` per variant, stacked columns are tuples of
    the underlying lists."""

    backend = "python"

    def __init__(self, variants: int, entries: int, fields: Sequence[Field]) -> None:
        super().__init__(variants, entries, fields)
        self._banks = tuple(
            PythonTableBank(entries, self.fields) for _ in range(variants)
        )
        self._cols = {
            field.name: tuple(bank.col(field.name) for bank in self._banks)
            for field in self.fields
        }

    def view(self, variant: int) -> PythonTableBank:
        return self._banks[variant]

    def col(self, name: str) -> tuple[list[int], ...]:
        try:
            return self._cols[name]
        except KeyError:
            self.field(name)  # raises the informative ValueError
            raise


class _NumpyBankView(NumpyTableBank):
    """A :class:`NumpyTableBank` whose columns alias one variant row of a
    :class:`StackedNumpyTableBank` — writes go through to the stack."""

    def __init__(self, entries: int, fields: Sequence[Field], cols) -> None:
        TableBank.__init__(self, entries, fields)
        self._cols = cols


class StackedNumpyTableBank(StackedTableBank):
    """One ``(variants, entries * width)`` ndarray per column.

    Row ``v`` of each column is variant ``v``'s flat column; ``view(v)``
    wraps those rows in a :class:`NumpyTableBank`-compatible view, so
    scalar code and vector expressions mutate the same storage.
    """

    backend = "numpy"

    def __init__(self, variants: int, entries: int, fields: Sequence[Field]) -> None:
        np = _require_numpy()
        super().__init__(variants, entries, fields)
        self._cols = {}
        for field in self.fields:
            dtype = np.uint64 if field.unsigned else np.int64
            self._cols[field.name] = np.full(
                (variants, entries * field.width), field.default, dtype=dtype
            )
        self._views = tuple(
            _NumpyBankView(
                entries,
                self.fields,
                {name: arr[v] for name, arr in self._cols.items()},
            )
            for v in range(variants)
        )

    def view(self, variant: int) -> NumpyTableBank:
        return self._views[variant]

    def col(self, name: str):
        try:
            return self._cols[name]
        except KeyError:
            self.field(name)  # raises the informative ValueError
            raise


_BACKENDS: dict[str, type[TableBank]] = {
    "python": PythonTableBank,
    "numpy": NumpyTableBank,
}

_STACKED_BACKENDS: dict[str, type[StackedTableBank]] = {
    "python": StackedPythonTableBank,
    "numpy": StackedNumpyTableBank,
}

_default_backend: str | None = None


def _validate_backend(name: str) -> str:
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown table backend {name!r}; known: " + ", ".join(KNOWN_BACKENDS)
        )
    if name == "numpy":
        _require_numpy()  # fail fast, with the install hint
    return name


def available_backends() -> tuple[str, ...]:
    """Backends usable in *this* process (numpy only if importable)."""
    names = ["python"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


def get_table_backend() -> str:
    """The process-global default backend name."""
    global _default_backend
    if _default_backend is None:
        _default_backend = _validate_backend(
            os.environ.get("REPRO_TABLE_BACKEND", "python")
        )
    return _default_backend


def set_table_backend(name: str) -> str:
    """Set the process-global default backend; returns the previous one."""
    global _default_backend
    previous = get_table_backend()
    _default_backend = _validate_backend(name)
    return previous


@contextmanager
def use_table_backend(name: str) -> Iterator[str]:
    """Scope the global default backend to a ``with`` block."""
    previous = set_table_backend(name)
    try:
        yield name
    finally:
        set_table_backend(previous)


def make_bank(
    entries: int,
    fields: Sequence[Field],
    backend: str | None = None,
    variants: int | None = None,
) -> TableBank | StackedTableBank:
    """Construct a bank on ``backend`` (default: the global backend).

    With ``variants=N`` the result is a :class:`StackedTableBank`
    holding N independent same-shape banks on a leading variant axis
    (batched sweeps); ``variants=None`` keeps the flat single-variant
    bank.
    """
    name = get_table_backend() if backend is None else _validate_backend(backend)
    if variants is None:
        return _BACKENDS[name](entries, fields)
    return _STACKED_BACKENDS[name](variants, entries, fields)
