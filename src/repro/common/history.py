"""Global branch/path history and TAGE-style folded histories.

VTAGE and D-VTAGE index their partially tagged components with a hash of the
PC, the global *branch outcome* history and the *path* history (low-order bits
of recent branch targets).  TAGE hardware keeps, per component, circular
"folded" registers that are updated incrementally in O(1) per branch;
:class:`FoldedHistorySet` models exactly that: one :class:`FoldedHistory`
register per (history length, output width) pair a predictor's geometry
needs, updated on every pushed bit and snapshotted into an immutable
:class:`FoldedHistoryState` that the pipeline hands to every predict and
commit-time train call.  The raw shift registers (:class:`GlobalHistory`)
are kept alongside so on-demand folding stays available as the reference
formulation — the two are mathematically identical (XOR-folding is linear
in the history bits), which ``tests/test_history.py`` enforces over
randomized push/snapshot/restore sequences.
"""

from __future__ import annotations

from repro.common.bits import fold_bits, mask


class GlobalHistory:
    """A bounded global history register.

    ``push`` shifts new bits in at the LSB end.  ``snapshot``/``restore``
    provide O(1) checkpointing, which the pipeline model uses on every branch
    misprediction or value-misprediction squash.
    """

    __slots__ = ("capacity", "_mask", "_bits")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"history capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._mask = mask(capacity)
        self._bits = 0

    def push(self, value: int, bits: int = 1) -> None:
        """Shift ``bits`` low-order bits of ``value`` into the history."""
        self._bits = ((self._bits << bits) | (value & mask(bits))) & self._mask

    def push_outcome(self, taken: bool) -> None:
        """Shift a single branch outcome bit in."""
        self.push(1 if taken else 0, 1)

    def push_path(self, target_pc: int, bits: int = 2) -> None:
        """Shift low-order target-address bits in (path history)."""
        self.push(target_pc, bits)

    def value(self, length: int | None = None) -> int:
        """Return the most recent ``length`` bits (default: full register)."""
        if length is None:
            return self._bits
        return self._bits & mask(min(length, self.capacity))

    def folded(self, length: int, output_bits: int) -> int:
        """Return the most recent ``length`` bits folded to ``output_bits``."""
        return fold_bits(self.value(length), min(length, self.capacity), output_bits)

    def snapshot(self) -> int:
        return self._bits

    def restore(self, snapshot: int) -> None:
        self._bits = snapshot & self._mask

    def clear(self) -> None:
        self._bits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalHistory(capacity={self.capacity}, bits={self._bits:#x})"


class FoldedHistory:
    """Incrementally folded history as implemented in TAGE hardware.

    Kept alongside :class:`GlobalHistory` mainly to document (and test) the
    equivalence of the incremental circular-shift-register formulation with
    direct folding.  ``update`` must be called with every inserted and every
    evicted bit, exactly as the hardware does.
    """

    __slots__ = (
        "history_length",
        "output_bits",
        "_value",
        "_evict_pos",
        "_out_mask",
        "_rot_shift",
    )

    def __init__(self, history_length: int, output_bits: int) -> None:
        if output_bits <= 0:
            raise ValueError("output width must be positive")
        self.history_length = history_length
        self.output_bits = output_bits
        self._value = 0
        # Position at which the bit leaving the history re-enters the fold
        # (always < output_bits, so the eviction XOR stays in range).
        self._evict_pos = history_length % output_bits
        self._out_mask = mask(output_bits)
        self._rot_shift = output_bits - 1

    @property
    def value(self) -> int:
        return self._value

    def update(self, inserted_bit: int, evicted_bit: int) -> None:
        """Account for one bit entering and one leaving the history."""
        # Circular left shift by one, then XOR the moving bits in; both XOR
        # terms land below output_bits, so no final mask is needed.
        v = ((self._value << 1) | (self._value >> self._rot_shift)) & self._out_mask
        self._value = v ^ (inserted_bit & 1) ^ ((evicted_bit & 1) << self._evict_pos)

    def snapshot(self) -> int:
        return self._value

    def restore(self, snapshot: int) -> None:
        self._value = snapshot & mask(self.output_bits)

    def clear(self) -> None:
        self._value = 0


class FoldedHistoryState:
    """Immutable fetch-time snapshot of the histories plus their folds.

    Attribute-compatible with :class:`repro.predictors.base.HistoryState`
    (``branch``/``path`` raw register values) so it flows through the same
    adapter plumbing, but additionally carries the precomputed
    history-dependent halves of the TAGE index/tag hashes, keyed by
    :func:`fold_key` of the (history length, output width) pair:

    * ``idx_folds[fold_key(hist_length, index_bits)]`` — the XOR of the
      folded branch history and the folded path history that
      ``tagged_index`` mixes into the table index;
    * ``tag_folds[fold_key(hist_length, tag_bits)]`` — the two-phase folded
      branch history (``h ^ (h2 << 1)``) that ``tagged_tag`` mixes into the
      tag.

    ``tagged_index``/``tagged_tag`` consume these by key and fall back to
    on-demand folding for geometries the owning :class:`FoldedHistorySet`
    was not configured with, so the values must equal ``fold_bits`` of the
    raw registers exactly — the set maintains them incrementally in O(1)
    per pushed bit, which is bit-identical (test-enforced).
    """

    __slots__ = ("branch", "path", "idx_folds", "tag_folds")

    def __init__(
        self,
        branch: int,
        path: int,
        idx_folds: dict[int, int],
        tag_folds: dict[int, int],
    ) -> None:
        self.branch = branch
        self.path = path
        self.idx_folds = idx_folds
        self.tag_folds = tag_folds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FoldedHistoryState(branch={self.branch:#x}, path={self.path:#x}, "
            f"{len(self.idx_folds)} idx folds, {len(self.tag_folds)} tag folds)"
        )


#: Input width of the path-history fold in ``tagged_index`` (the hash uses at
#: most the 16 most recent path bits regardless of the component's length).
PATH_FOLD_BITS = 16

#: Output widths must fit the packed :func:`fold_key` encoding.
MAX_FOLD_WIDTH = 127


def fold_key(hist_length: int, output_bits: int) -> int:
    """Dictionary key of a fold in :class:`FoldedHistoryState`.

    Packed into one int (``length * 128 + width``) because the hot lookup
    path hits these dicts twice per tagged component per µ-op — an int key
    hashes in O(1) C-level work and needs no per-lookup tuple allocation.
    """
    return (hist_length << 7) | output_bits


class FoldedHistorySet:
    """Incrementally maintained folded histories for a predictor geometry.

    Owns the raw branch/path :class:`GlobalHistory` registers plus one
    :class:`FoldedHistory` circular register per distinct fold a registered
    geometry needs.  ``push_outcome``/``push_path`` update every register in
    O(1) per bit (independent of the history lengths); ``state`` returns the
    current :class:`FoldedHistoryState`, rebuilt lazily only after a push, so
    consecutive snapshots between branches share one immutable object.
    ``snapshot``/``restore`` checkpoint the whole set in O(registers) —
    independent of history length — for squash recovery.

    ``idx_pairs`` / ``tag_pairs`` are iterables of ``(history_length,
    output_bits)`` as consumed by ``tagged_index`` / ``tagged_tag``.
    """

    __slots__ = (
        "branch",
        "path",
        "_bregs",
        "_pregs",
        "_breg_items",
        "_preg_items",
        "_idx_specs",
        "_tag_specs",
        "_state",
    )

    def __init__(
        self,
        branch_capacity: int = 640,
        path_capacity: int = 64,
        idx_pairs: "tuple[tuple[int, int], ...] | set | list" = (),
        tag_pairs: "tuple[tuple[int, int], ...] | set | list" = (),
    ) -> None:
        self.branch = GlobalHistory(branch_capacity)
        self.path = GlobalHistory(path_capacity)
        self._bregs: dict[tuple[int, int], FoldedHistory] = {}
        self._pregs: dict[tuple[int, int], FoldedHistory] = {}
        # (fold_key(length, width), branch_fold, path_fold) per index pair.
        self._idx_specs: list[tuple[int, FoldedHistory, FoldedHistory]] = []
        # (fold_key(length, width), fold_W, fold_W-1 or None) per tag pair.
        self._tag_specs: list[tuple[int, FoldedHistory, FoldedHistory | None]] = []
        for length, width in sorted(set(idx_pairs)):
            if not 0 < width <= MAX_FOLD_WIDTH:
                raise ValueError(f"fold width out of range: {width}")
            b = self._branch_register(length, width)
            p = self._path_register(min(length, PATH_FOLD_BITS), width)
            self._idx_specs.append((fold_key(length, width), b, p))
        for length, width in sorted(set(tag_pairs)):
            if not 0 < width <= MAX_FOLD_WIDTH:
                raise ValueError(f"fold width out of range: {width}")
            f1 = self._branch_register(length, width)
            f2 = self._branch_register(length, width - 1) if width > 1 else None
            self._tag_specs.append((fold_key(length, width), f1, f2))
        # Flat (evicted-bit position, register) lists for the push loops:
        # the bit leaving a register's window is bit ``length - 1`` of the
        # raw history *before* the push.
        self._breg_items = [
            (length - 1, reg) for (length, _w), reg in self._bregs.items()
        ]
        self._preg_items = [
            (length - 1, reg) for (length, _w), reg in self._pregs.items()
        ]
        self._state: FoldedHistoryState | None = None

    def _branch_register(self, length: int, width: int) -> FoldedHistory:
        reg = self._bregs.get((length, width))
        if reg is None:
            reg = self._bregs[(length, width)] = FoldedHistory(length, width)
        return reg

    def _path_register(self, length: int, width: int) -> FoldedHistory:
        reg = self._pregs.get((length, width))
        if reg is None:
            reg = self._pregs[(length, width)] = FoldedHistory(length, width)
        return reg

    # -- pushes --------------------------------------------------------------

    def push_outcome(self, taken: bool) -> None:
        """Shift one branch outcome bit in, updating every fold in O(1)."""
        bit = 1 if taken else 0
        bits = self.branch.value()
        # Inlined FoldedHistory.update: this loop runs for every fold
        # register on every conditional branch, so the per-register method
        # call is worth avoiding.
        for evict_src, reg in self._breg_items:
            v = reg._value
            v = ((v << 1) | (v >> reg._rot_shift)) & reg._out_mask
            reg._value = v ^ bit ^ (((bits >> evict_src) & 1) << reg._evict_pos)
        self.branch.push(bit, 1)
        self._state = None

    def push_path(self, target_pc: int, bits: int = 2) -> None:
        """Shift low-order target-address bits in (path history)."""
        pbits = self.path.value()
        for i in range(bits - 1, -1, -1):
            bit = (target_pc >> i) & 1
            for evict_src, reg in self._preg_items:
                v = reg._value
                v = ((v << 1) | (v >> reg._rot_shift)) & reg._out_mask
                reg._value = (
                    v ^ bit ^ (((pbits >> evict_src) & 1) << reg._evict_pos)
                )
            pbits = (pbits << 1) | bit
        self.path.push(target_pc, bits)
        self._state = None

    # -- snapshots -----------------------------------------------------------

    def state(self) -> FoldedHistoryState:
        """The current fold snapshot (cached until the next push)."""
        s = self._state
        if s is None:
            idx = {key: b._value ^ p._value for key, b, p in self._idx_specs}
            tag = {}
            for key, f1, f2 in self._tag_specs:
                v = f1._value
                if f2 is not None:
                    v ^= f2._value << 1
                tag[key] = v
            s = self._state = FoldedHistoryState(
                self.branch.value(), self.path.value(), idx, tag
            )
        return s

    def snapshot(self) -> tuple:
        """O(registers) checkpoint of raw registers and every fold."""
        return (
            self.branch.snapshot(),
            self.path.snapshot(),
            tuple(reg.snapshot() for _l, reg in self._breg_items),
            tuple(reg.snapshot() for _l, reg in self._preg_items),
        )

    def restore(self, snap: tuple) -> None:
        branch, path, bvals, pvals = snap
        self.branch.restore(branch)
        self.path.restore(path)
        for (_l, reg), v in zip(self._breg_items, bvals):
            reg.restore(v)
        for (_l, reg), v in zip(self._preg_items, pvals):
            reg.restore(v)
        self._state = None

    def clear(self) -> None:
        self.branch.clear()
        self.path.clear()
        for _l, reg in self._breg_items:
            reg.clear()
        for _l, reg in self._preg_items:
            reg.clear()
        self._state = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FoldedHistorySet({len(self._bregs)} branch / "
            f"{len(self._pregs)} path fold registers)"
        )
