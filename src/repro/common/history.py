"""Global branch/path history and TAGE-style folded histories.

VTAGE and D-VTAGE index their partially tagged components with a hash of the
PC, the global *branch outcome* history and the *path* history (low-order bits
of recent branch targets).  TAGE hardware keeps, per component, circular
"folded" registers that are updated incrementally in O(1) per branch; we model
the histories directly as shift registers and fold on demand, which is
behaviourally identical and simpler to checkpoint/restore on pipeline flushes.
"""

from __future__ import annotations

from repro.common.bits import fold_bits, mask


class GlobalHistory:
    """A bounded global history register.

    ``push`` shifts new bits in at the LSB end.  ``snapshot``/``restore``
    provide O(1) checkpointing, which the pipeline model uses on every branch
    misprediction or value-misprediction squash.
    """

    __slots__ = ("capacity", "_mask", "_bits")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"history capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._mask = mask(capacity)
        self._bits = 0

    def push(self, value: int, bits: int = 1) -> None:
        """Shift ``bits`` low-order bits of ``value`` into the history."""
        self._bits = ((self._bits << bits) | (value & mask(bits))) & self._mask

    def push_outcome(self, taken: bool) -> None:
        """Shift a single branch outcome bit in."""
        self.push(1 if taken else 0, 1)

    def push_path(self, target_pc: int, bits: int = 2) -> None:
        """Shift low-order target-address bits in (path history)."""
        self.push(target_pc, bits)

    def value(self, length: int | None = None) -> int:
        """Return the most recent ``length`` bits (default: full register)."""
        if length is None:
            return self._bits
        return self._bits & mask(min(length, self.capacity))

    def folded(self, length: int, output_bits: int) -> int:
        """Return the most recent ``length`` bits folded to ``output_bits``."""
        return fold_bits(self.value(length), min(length, self.capacity), output_bits)

    def snapshot(self) -> int:
        return self._bits

    def restore(self, snapshot: int) -> None:
        self._bits = snapshot & self._mask

    def clear(self) -> None:
        self._bits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalHistory(capacity={self.capacity}, bits={self._bits:#x})"


class FoldedHistory:
    """Incrementally folded history as implemented in TAGE hardware.

    Kept alongside :class:`GlobalHistory` mainly to document (and test) the
    equivalence of the incremental circular-shift-register formulation with
    direct folding.  ``update`` must be called with every inserted and every
    evicted bit, exactly as the hardware does.
    """

    __slots__ = ("history_length", "output_bits", "_value", "_evict_pos")

    def __init__(self, history_length: int, output_bits: int) -> None:
        if output_bits <= 0:
            raise ValueError("output width must be positive")
        self.history_length = history_length
        self.output_bits = output_bits
        self._value = 0
        # Position at which the bit leaving the history re-enters the fold.
        self._evict_pos = history_length % output_bits

    @property
    def value(self) -> int:
        return self._value

    def update(self, inserted_bit: int, evicted_bit: int) -> None:
        """Account for one bit entering and one leaving the history."""
        out_mask = mask(self.output_bits)
        # Circular left shift by one.
        v = ((self._value << 1) | (self._value >> (self.output_bits - 1))) & out_mask
        v ^= inserted_bit & 1
        v ^= (evicted_bit & 1) << self._evict_pos
        # The eviction XOR may land on bit ``output_bits`` when
        # history_length is a multiple of output_bits; wrap it.
        if self._evict_pos == self.output_bits:  # pragma: no cover - guarded by init
            v ^= evicted_bit & 1
        self._value = v & out_mask

    def clear(self) -> None:
        self._value = 0
