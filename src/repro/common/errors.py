"""Structured construction-time validation shared across the codebase.

:class:`ConfigError` collects *every* violation found while validating a
config or hardware structure and raises them together — the message is the
fix list, not a scavenger hunt.  It subclasses :class:`ValueError` so
callers that catch ``ValueError`` keep working.

This lives under :mod:`repro.common` (not :mod:`repro.pipeline`) so leaf
structures — predictors, branch predictors, table banks — can validate
their constructor parameters without importing the pipeline package;
:mod:`repro.pipeline.config` re-exports everything for compatibility.
"""

from __future__ import annotations

from typing import Sequence


class ConfigError(ValueError):
    """One or more invalid configuration fields, reported together.

    Construction-time validation collects *every* violation before
    raising, so a config with three bad fields produces one error naming
    all three instead of failing deep inside the pipeline on the first —
    the message is the fix list, not a scavenger hunt.
    """

    def __init__(self, name: str, violations: Sequence[str]) -> None:
        self.config_name = name
        self.violations = tuple(violations)
        super().__init__(f"{name}: " + "; ".join(self.violations))


def require_positive(violations: list[str], config: object, *fields: str) -> None:
    """Append a violation for every named field that is not ``> 0``."""
    for field in fields:
        value = getattr(config, field)
        if value <= 0:
            violations.append(f"{field} must be positive, got {value}")


def require_power_of_two(violations: list[str], config: object, *fields: str) -> None:
    """Append a violation for every named field that is not a power of two.

    Non-positive values are reported by :func:`require_positive`; this
    only flags positive non-powers so one bad field yields one message.
    """
    for field in fields:
        value = getattr(config, field)
        if value > 0 and value & (value - 1):
            violations.append(f"{field} must be a power of two, got {value}")
