"""Reproduction of *BeBoP: A Cost Effective Predictor Infrastructure for
Superscalar Value Prediction* (Perais & Seznec, HPCA 2015).

The package implements the paper's three contributions and every substrate
they are evaluated on:

* **Block-based value prediction (BeBoP)** — :mod:`repro.bebop`: predictor
  entries per 16-byte fetch block with byte-index-tag attribution;
* **D-VTAGE** — :mod:`repro.predictors.dvtage` (instruction-based) and
  :class:`repro.bebop.BlockDVTAGE` (block-based): the tightly coupled
  VTAGE x stride hybrid with partial strides;
* **Block-based speculative window** — :class:`repro.bebop.SpeculativeWindow`
  with the DnRR / DnRDnR / Repred / Ideal recovery policies;

plus the substrates: a synthetic variable-length ISA (:mod:`repro.isa`),
36 SPEC-like workloads (:mod:`repro.workloads`), a TAGE branch predictor
(:mod:`repro.branch`), comparison value predictors — LVP, stride, 2-delta,
FCM, D-FCM, VTAGE, VTAGE+2d-stride — (:mod:`repro.predictors`), a
trace-driven superscalar/EOLE timing model (:mod:`repro.pipeline`), the
Table III storage model (:mod:`repro.storage`) and the per-figure experiment
harness (:mod:`repro.eval`).

Quickstart::

    from repro.eval import get_trace, make_instr_predictor, run_baseline, run_instr_vp

    trace = get_trace("swim", uops=60_000)
    base = run_baseline(trace, warmup=20_000)
    vp = run_instr_vp(trace, make_instr_predictor("d-vtage"), warmup=20_000)
    print(f"speedup: {vp.ipc / base.ipc:.2f}x at {vp.vp_accuracy:.2%} accuracy")
"""

__version__ = "1.0.0"

__all__ = [
    "bebop",
    "branch",
    "common",
    "eval",
    "isa",
    "pipeline",
    "predictors",
    "storage",
    "workloads",
]
