"""Branch prediction substrate.

The pipeline model needs a realistic conditional branch predictor both for
timing (20-cycle minimum misprediction penalty, Table I) and because the
global branch/path history it maintains is the context that indexes
VTAGE/D-VTAGE tagged components.  :mod:`repro.branch.tage` implements the
TAGE predictor (Seznec & Michaud) the paper configures with 1+12 components;
:mod:`repro.branch.btb` provides the branch target buffer and return-address
stack of Table I.
"""

from repro.branch.tage import TAGEBranchPredictor
from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack

__all__ = ["TAGEBranchPredictor", "BranchTargetBuffer", "ReturnAddressStack"]
