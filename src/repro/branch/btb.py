"""Branch Target Buffer and Return Address Stack (Table I).

The BTB is set-associative with LRU replacement; a taken branch whose target
misses in the BTB costs a front-end redirect even when the direction was
predicted correctly.  The RAS is a small circular stack; the synthetic ISA
has no call/return, so the RAS exists for interface completeness and unit
testing of the structure itself.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """2-way set-associative BTB, 8K entries by default (Table I)."""

    def __init__(self, entries: int = 8192, ways: int = 2) -> None:
        if entries % ways:
            raise ValueError(f"{entries} entries not divisible by {ways} ways")
        sets = entries // ways
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")
        self.entries = entries
        self.ways = ways
        self.sets = sets
        self._index_mask = sets - 1
        # Per set: list of (tag, target), most recently used last.
        self._table: list[list[tuple[int, int]]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set_and_tag(self, pc: int) -> tuple[list[tuple[int, int]], int]:
        index = (pc >> 2) & self._index_mask
        tag = pc >> 2 >> self.sets.bit_length() - 1
        return self._table[index], tag

    def lookup(self, pc: int) -> int | None:
        """Predicted target of the branch at ``pc``, or None on miss."""
        ways, tag = self._set_and_tag(pc)
        for i, (t, target) in enumerate(ways):
            if t == tag:
                ways.append(ways.pop(i))  # LRU bump
                self.hits += 1
                return target
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Record the resolved target of a taken branch."""
        ways, tag = self._set_and_tag(pc)
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways[i] = (tag, target)
                ways.append(ways.pop(i))
                return
        if len(ways) >= self.ways:
            ways.pop(0)
        ways.append((tag, target))

    def storage_bits(self) -> int:
        # ~30-bit tags + 32-bit (compressed) targets per entry.
        return self.entries * (30 + 32)


class ReturnAddressStack:
    """Circular return-address stack (32 entries in Table I)."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)  # overflow: lose the oldest
        self._stack.append(return_pc)

    def pop(self) -> int | None:
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)
