"""Branch Target Buffer and Return Address Stack (Table I).

The BTB is set-associative with LRU replacement; a taken branch whose target
misses in the BTB costs a front-end redirect even when the direction was
predicted correctly.  The RAS is a small circular stack; the synthetic ISA
has no call/return, so the RAS exists for interface completeness and unit
testing of the structure itself.

BTB state lives in :mod:`repro.common.tables` banks: one flat
``sets * ways`` bank of (tag, target) pairs ordered oldest-first within
each set (MRU in the highest occupied slot), plus a per-set occupancy bank.
"""

from __future__ import annotations

from repro.common.tables import Field, make_bank
from repro.common.errors import ConfigError

WAY_FIELDS = (
    Field("tag", default=-1),
    Field("target", unsigned=True),
)

SET_FIELDS = (
    Field("count"),  # occupied ways in the set
)


class BranchTargetBuffer:
    """2-way set-associative BTB, 8K entries by default (Table I)."""

    def __init__(
        self, entries: int = 8192, ways: int = 2, table_backend: str | None = None
    ) -> None:
        violations: list[str] = []
        if entries <= 0:
            violations.append(f"entries must be positive, got {entries}")
        if ways <= 0:
            violations.append(f"ways must be positive, got {ways}")
        sets = entries // ways if ways > 0 else 0
        if not violations:
            if entries % ways:
                violations.append(
                    f"{entries} entries not divisible by {ways} ways"
                )
            elif sets <= 0 or sets & (sets - 1):
                violations.append(f"set count must be a power of two, got {sets}")
        if violations:
            raise ConfigError(type(self).__name__, violations)
        self.entries = entries
        self.ways = ways
        self.sets = sets
        self._index_mask = sets - 1
        self._ways = make_bank(sets * ways, WAY_FIELDS, backend=table_backend)
        self._sets = make_bank(sets, SET_FIELDS, backend=table_backend)
        self.table_backend = self._ways.backend
        self._tag = self._ways.col("tag")
        self._target = self._ways.col("target")
        self._count = self._sets.col("count")
        self.hits = 0
        self.misses = 0

    def _set_and_tag(self, pc: int) -> tuple[int, int]:
        index = (pc >> 2) & self._index_mask
        tag = pc >> 2 >> self.sets.bit_length() - 1
        return index, tag

    def _bump_to_mru(self, base: int, slot: int, count: int) -> None:
        """Move the entry at ``base + slot`` to the MRU position."""
        tag_col, tgt_col = self._tag, self._target
        tag, target = tag_col[base + slot], tgt_col[base + slot]
        for i in range(slot, count - 1):
            tag_col[base + i] = tag_col[base + i + 1]
            tgt_col[base + i] = tgt_col[base + i + 1]
        tag_col[base + count - 1] = tag
        tgt_col[base + count - 1] = target

    def lookup(self, pc: int) -> int | None:
        """Predicted target of the branch at ``pc``, or None on miss."""
        set_index, tag = self._set_and_tag(pc)
        base = set_index * self.ways
        count = int(self._count[set_index])
        tag_col = self._tag
        for i in range(count):
            if tag_col[base + i] == tag:
                target = int(self._target[base + i])
                self._bump_to_mru(base, i, count)
                self.hits += 1
                return target
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Record the resolved target of a taken branch."""
        set_index, tag = self._set_and_tag(pc)
        base = set_index * self.ways
        count = int(self._count[set_index])
        tag_col = self._tag
        for i in range(count):
            if tag_col[base + i] == tag:
                self._target[base + i] = target
                self._bump_to_mru(base, i, count)
                return
        if count >= self.ways:
            # Evict LRU (slot 0): shift everything down, install at MRU.
            self._bump_to_mru(base, 0, count)
            self._tag[base + count - 1] = tag
            self._target[base + count - 1] = target
            return
        self._tag[base + count] = tag
        self._target[base + count] = target
        self._count[set_index] = count + 1

    def storage_bits(self) -> int:
        # ~30-bit tags + 32-bit (compressed) targets per entry.
        return self.entries * (30 + 32)


class ReturnAddressStack:
    """Circular return-address stack (32 entries in Table I)."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)  # overflow: lose the oldest
        self._stack.append(return_pc)

    def pop(self) -> int | None:
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)
