"""TAGE conditional branch predictor (Seznec & Michaud, JILP 2006).

A bimodal base predictor plus ``n`` partially tagged components indexed with
geometrically increasing global-history lengths.  The paper's simulator uses
a 1+12-component, ~15K-entry (~32KB) TAGE with a 20-cycle minimum
misprediction penalty; those are the defaults here.

The implementation follows the canonical TAGE policies: provider/altpred
selection, "weak provider uses altpred" filtering via a use-alt-on-new-alloc
counter, 2-bit usefulness counters with periodic graceful reset, and
allocation in a randomly chosen not-useful longer-history slot.
"""

from __future__ import annotations

from repro.common.bits import mask
from repro.common.rng import XorShift64
from repro.predictors.base import HistoryState, tagged_index, tagged_tag
from repro.predictors.vtage import geometric_history_lengths


class _BimodalEntry:
    __slots__ = ("ctr",)

    def __init__(self) -> None:
        self.ctr = 2  # 2-bit counter, weakly taken


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful", "useful_gen")

    def __init__(self) -> None:
        self.tag = -1
        self.ctr = 4  # 3-bit counter, weak
        self.useful = 0
        # Generation the useful counter was last touched in; a stale
        # generation reads as useful == 0 (O(1) periodic reset).
        self.useful_gen = 0


class _BranchMeta:
    """Provider information carried from predict to train."""

    __slots__ = ("provider", "index", "tag", "alt_taken", "provider_weak")

    def __init__(
        self,
        provider: int,
        index: int,
        tag: int,
        alt_taken: bool,
        provider_weak: bool,
    ) -> None:
        self.provider = provider
        self.index = index
        self.tag = tag
        self.alt_taken = alt_taken
        self.provider_weak = provider_weak


class TAGEBranchPredictor:
    """1 + n component TAGE.

    Defaults approximate the paper's configuration: 12 tagged components
    with 8..640-bit geometric histories and a 4K-entry bimodal base, about
    15K entries total.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        tagged_entries: int = 1024,
        components: int = 12,
        first_tag_bits: int = 8,
        min_history: int = 8,
        max_history: int = 640,
        useful_reset_period: int = 262144,
        seed: int = 0x7A63,
    ) -> None:
        for n, what in ((bimodal_entries, "bimodal"), (tagged_entries, "tagged")):
            if n <= 0 or n & (n - 1):
                raise ValueError(f"{what} entries must be a power of two, got {n}")
        self.bimodal_entries = bimodal_entries
        self.tagged_entries = tagged_entries
        self.components = components
        self.bimodal_index_bits = bimodal_entries.bit_length() - 1
        self.tagged_index_bits = tagged_entries.bit_length() - 1
        self.tag_bits = tuple(
            min(first_tag_bits + i // 2, 15) for i in range(components)
        )
        self.history_lengths = geometric_history_lengths(
            components, min_history, max_history
        )
        self._bimodal = [_BimodalEntry() for _ in range(bimodal_entries)]
        self._tagged = [
            [_TaggedEntry() for _ in range(tagged_entries)]
            for _ in range(components)
        ]
        self._rng = XorShift64(seed)
        self._use_alt_on_new_alloc = 8  # 4-bit counter centred at 8
        self._useful_reset_period = useful_reset_period
        self._updates = 0
        self._useful_gen = 0

    def fold_geometry(
        self,
    ) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
        """(idx_pairs, tag_pairs) for the pipeline's folded-history set."""
        idx = tuple(
            (length, self.tagged_index_bits) for length in self.history_lengths
        )
        tag = tuple(zip(self.history_lengths, self.tag_bits))
        return idx, tag

    # -- lookups -----------------------------------------------------------

    def _bimodal_entry(self, pc: int) -> _BimodalEntry:
        return self._bimodal[(pc >> 2) & mask(self.bimodal_index_bits)]

    def _slot(self, comp: int, pc: int, hist: HistoryState) -> tuple[int, int]:
        length = self.history_lengths[comp]
        index = tagged_index(pc, hist, length, self.tagged_index_bits)
        tag = tagged_tag(pc, hist, length, self.tag_bits[comp])
        return index, tag

    # -- prediction ---------------------------------------------------------

    def predict(self, pc: int, hist: HistoryState) -> tuple[bool, _BranchMeta]:
        """Predicted direction plus the metadata train() needs."""
        hits: list[tuple[int, int, int]] = []
        for comp in range(self.components):
            index, tag = self._slot(comp, pc, hist)
            if self._tagged[comp][index].tag == tag:
                hits.append((comp, index, tag))
        base_taken = self._bimodal_entry(pc).ctr >= 2
        if not hits:
            meta = _BranchMeta(0, 0, 0, base_taken, False)
            return base_taken, meta
        comp, index, tag = hits[-1]
        entry = self._tagged[comp][index]
        taken = entry.ctr >= 4
        weak = entry.ctr in (3, 4)
        if len(hits) > 1:
            alt_comp, alt_index, _ = hits[-2]
            alt_taken = self._tagged[alt_comp][alt_index].ctr >= 4
        else:
            alt_taken = base_taken
        meta = _BranchMeta(comp + 1, index, tag, alt_taken, weak)
        # Newly allocated (weak) providers are unreliable: optionally trust
        # the alternate prediction instead.
        if weak and self._use_alt_on_new_alloc >= 8:
            return alt_taken, meta
        return taken, meta

    # -- training -----------------------------------------------------------

    def train(
        self, pc: int, hist: HistoryState, taken: bool, meta: _BranchMeta
    ) -> None:
        """Update with the resolved direction (meta from the predict call)."""
        if meta.provider == 0:
            entry = self._bimodal_entry(pc)
            entry.ctr = min(3, entry.ctr + 1) if taken else max(0, entry.ctr - 1)
            provider_taken = meta.alt_taken
            provider_correct = provider_taken == taken
            if not provider_correct:
                self._allocate(pc, hist, 0, taken)
            self._tick()
            return
        comp = meta.provider - 1
        entry = self._tagged[comp][meta.index]
        if entry.tag == meta.tag:
            provider_taken = entry.ctr >= 4
            provider_correct = provider_taken == taken
            entry.ctr = min(7, entry.ctr + 1) if taken else max(0, entry.ctr - 1)
            if entry.useful_gen != self._useful_gen:
                entry.useful = 0
                entry.useful_gen = self._useful_gen
            if provider_correct and meta.alt_taken != provider_taken:
                entry.useful = min(3, entry.useful + 1)
            elif not provider_correct:
                entry.useful = max(0, entry.useful - 1)
            if meta.provider_weak and meta.alt_taken != provider_taken:
                # Track whether trusting the alternate over weak providers
                # pays off.
                if meta.alt_taken == taken:
                    self._use_alt_on_new_alloc = min(15, self._use_alt_on_new_alloc + 1)
                else:
                    self._use_alt_on_new_alloc = max(0, self._use_alt_on_new_alloc - 1)
            if not provider_correct:
                self._allocate(pc, hist, meta.provider, taken)
        else:
            # Entry was reallocated between fetch and retire; just allocate.
            self._allocate(pc, hist, meta.provider, taken)
        self._tick()

    def _allocate(self, pc: int, hist: HistoryState, provider: int, taken: bool) -> None:
        gen = self._useful_gen
        candidates = []
        slots = []
        for comp in range(provider, self.components):
            index, tag = self._slot(comp, pc, hist)
            slots.append((comp, index, tag))
            entry = self._tagged[comp][index]
            if entry.useful_gen != gen:
                entry.useful = 0
                entry.useful_gen = gen
            if entry.useful == 0:
                candidates.append((comp, index, tag))
        if not candidates:
            # Every slot was normalized to the current generation above.
            for comp, index, _ in slots:
                entry = self._tagged[comp][index]
                entry.useful = max(0, entry.useful - 1)
            return
        # Bias allocation toward shorter histories (classic TAGE heuristic):
        # pick the first candidate with probability 1/2, else uniformly.
        if len(candidates) > 1 and self._rng.chance(0.5):
            choice = candidates[0]
        else:
            choice = candidates[self._rng.next_below(len(candidates))]
        comp, index, tag = choice
        entry = self._tagged[comp][index]
        entry.tag = tag
        entry.ctr = 4 if taken else 3
        entry.useful = 0
        entry.useful_gen = gen

    def _tick(self) -> None:
        # O(1) periodic reset via the generation counter (no table walk).
        self._updates += 1
        if self._updates >= self._useful_reset_period:
            self._updates = 0
            self._useful_gen += 1

    # -- reporting ----------------------------------------------------------

    def storage_bits(self) -> int:
        bits = self.bimodal_entries * 2
        for comp in range(self.components):
            bits += self.tagged_entries * (self.tag_bits[comp] + 3 + 2)
        return bits
