"""TAGE conditional branch predictor (Seznec & Michaud, JILP 2006).

A bimodal base predictor plus ``n`` partially tagged components indexed with
geometrically increasing global-history lengths.  The paper's simulator uses
a 1+12-component, ~15K-entry (~32KB) TAGE with a 20-cycle minimum
misprediction penalty; those are the defaults here.

The implementation follows the canonical TAGE policies: provider/altpred
selection, "weak provider uses altpred" filtering via a use-alt-on-new-alloc
counter, 2-bit usefulness counters with periodic graceful reset, and
allocation in a randomly chosen not-useful longer-history slot.

Table state lives in :mod:`repro.common.tables` banks: the bimodal base is
one bank, and the tagged components share one flat bank addressed by
``comp * tagged_entries + index``.
"""

from __future__ import annotations

from repro.common.bits import mask
from repro.common.rng import XorShift64
from repro.common.tables import Field, make_bank
from repro.common.errors import ConfigError, require_positive, require_power_of_two
from repro.predictors.base import HistoryState, tagged_index, tagged_tag
from repro.predictors.vtage import geometric_history_lengths

BIMODAL_FIELDS = (
    Field("ctr", default=2),  # 2-bit counter, weakly taken
)

TAGGED_FIELDS = (
    Field("tag", default=-1),
    Field("ctr", default=4),  # 3-bit counter, weak
    Field("useful"),
    # Generation the useful counter was last touched in; a stale
    # generation reads as useful == 0 (O(1) periodic reset).
    Field("useful_gen"),
)


class _BranchMeta:
    """Provider information carried from predict to train."""

    __slots__ = ("provider", "index", "tag", "alt_taken", "provider_weak")

    def __init__(
        self,
        provider: int,
        index: int,
        tag: int,
        alt_taken: bool,
        provider_weak: bool,
    ) -> None:
        self.provider = provider
        self.index = index
        self.tag = tag
        self.alt_taken = alt_taken
        self.provider_weak = provider_weak


class TAGEBranchPredictor:
    """1 + n component TAGE.

    Defaults approximate the paper's configuration: 12 tagged components
    with 8..640-bit geometric histories and a 4K-entry bimodal base, about
    15K entries total.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        tagged_entries: int = 1024,
        components: int = 12,
        first_tag_bits: int = 8,
        min_history: int = 8,
        max_history: int = 640,
        useful_reset_period: int = 262144,
        seed: int = 0x7A63,
        table_backend: str | None = None,
    ) -> None:
        self.bimodal_entries = bimodal_entries
        self.tagged_entries = tagged_entries
        self.components = components
        violations: list[str] = []
        require_positive(
            violations, self, "bimodal_entries", "tagged_entries", "components"
        )
        require_power_of_two(violations, self, "bimodal_entries", "tagged_entries")
        if violations:
            raise ConfigError(type(self).__name__, violations)
        self.bimodal_index_bits = bimodal_entries.bit_length() - 1
        self.tagged_index_bits = tagged_entries.bit_length() - 1
        self.tag_bits = tuple(
            min(first_tag_bits + i // 2, 15) for i in range(components)
        )
        self.history_lengths = geometric_history_lengths(
            components, min_history, max_history
        )
        self._bimodal = make_bank(
            bimodal_entries, BIMODAL_FIELDS, backend=table_backend
        )
        self._tagged = make_bank(
            components * tagged_entries, TAGGED_FIELDS, backend=table_backend
        )
        self.table_backend = self._bimodal.backend
        self._b_ctr = self._bimodal.col("ctr")
        self._t_tag = self._tagged.col("tag")
        self._t_ctr = self._tagged.col("ctr")
        self._t_useful = self._tagged.col("useful")
        self._t_ugen = self._tagged.col("useful_gen")
        self._rng = XorShift64(seed)
        self._use_alt_on_new_alloc = 8  # 4-bit counter centred at 8
        self._useful_reset_period = useful_reset_period
        self._updates = 0
        self._useful_gen = 0

    def fold_geometry(
        self,
    ) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
        """(idx_pairs, tag_pairs) for the pipeline's folded-history set."""
        idx = tuple(
            (length, self.tagged_index_bits) for length in self.history_lengths
        )
        tag = tuple(zip(self.history_lengths, self.tag_bits))
        return idx, tag

    # -- lookups -----------------------------------------------------------

    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self.bimodal_index_bits)

    def _slot(self, comp: int, pc: int, hist: HistoryState) -> tuple[int, int]:
        """(flat index, tag) of ``pc`` in tagged component ``comp``."""
        length = self.history_lengths[comp]
        index = tagged_index(pc, hist, length, self.tagged_index_bits)
        tag = tagged_tag(pc, hist, length, self.tag_bits[comp])
        return comp * self.tagged_entries + index, tag

    # -- prediction ---------------------------------------------------------

    def predict(self, pc: int, hist: HistoryState) -> tuple[bool, _BranchMeta]:
        """Predicted direction plus the metadata train() needs."""
        hits: list[tuple[int, int, int]] = []
        t_tag = self._t_tag
        for comp in range(self.components):
            index, tag = self._slot(comp, pc, hist)
            if t_tag[index] == tag:
                hits.append((comp, index, tag))
        base_taken = bool(self._b_ctr[self._bimodal_index(pc)] >= 2)
        if not hits:
            meta = _BranchMeta(0, 0, 0, base_taken, False)
            return base_taken, meta
        comp, index, tag = hits[-1]
        ctr = int(self._t_ctr[index])
        taken = ctr >= 4
        weak = ctr in (3, 4)
        if len(hits) > 1:
            _alt_comp, alt_index, _ = hits[-2]
            alt_taken = bool(self._t_ctr[alt_index] >= 4)
        else:
            alt_taken = base_taken
        meta = _BranchMeta(comp + 1, index, tag, alt_taken, weak)
        # Newly allocated (weak) providers are unreliable: optionally trust
        # the alternate prediction instead.
        if weak and self._use_alt_on_new_alloc >= 8:
            return alt_taken, meta
        return taken, meta

    # -- training -----------------------------------------------------------

    def train(
        self, pc: int, hist: HistoryState, taken: bool, meta: _BranchMeta
    ) -> None:
        """Update with the resolved direction (meta from the predict call)."""
        if meta.provider == 0:
            index = self._bimodal_index(pc)
            ctr = int(self._b_ctr[index])
            self._b_ctr[index] = min(3, ctr + 1) if taken else max(0, ctr - 1)
            provider_taken = meta.alt_taken
            provider_correct = provider_taken == taken
            if not provider_correct:
                self._allocate(pc, hist, 0, taken)
            self._tick()
            return
        index = meta.index
        if self._t_tag[index] == meta.tag:
            ctr = int(self._t_ctr[index])
            provider_taken = ctr >= 4
            provider_correct = provider_taken == taken
            self._t_ctr[index] = min(7, ctr + 1) if taken else max(0, ctr - 1)
            if self._t_ugen[index] != self._useful_gen:
                self._t_useful[index] = 0
                self._t_ugen[index] = self._useful_gen
            if provider_correct and meta.alt_taken != provider_taken:
                self._t_useful[index] = min(3, int(self._t_useful[index]) + 1)
            elif not provider_correct:
                self._t_useful[index] = max(0, int(self._t_useful[index]) - 1)
            if meta.provider_weak and meta.alt_taken != provider_taken:
                # Track whether trusting the alternate over weak providers
                # pays off.
                if meta.alt_taken == taken:
                    self._use_alt_on_new_alloc = min(15, self._use_alt_on_new_alloc + 1)
                else:
                    self._use_alt_on_new_alloc = max(0, self._use_alt_on_new_alloc - 1)
            if not provider_correct:
                self._allocate(pc, hist, meta.provider, taken)
        else:
            # Entry was reallocated between fetch and retire; just allocate.
            self._allocate(pc, hist, meta.provider, taken)
        self._tick()

    def _allocate(self, pc: int, hist: HistoryState, provider: int, taken: bool) -> None:
        gen = self._useful_gen
        candidates = []
        slots = []
        for comp in range(provider, self.components):
            index, tag = self._slot(comp, pc, hist)
            slots.append((comp, index, tag))
            if self._t_ugen[index] != gen:
                self._t_useful[index] = 0
                self._t_ugen[index] = gen
            if self._t_useful[index] == 0:
                candidates.append((comp, index, tag))
        if not candidates:
            # Every slot was normalized to the current generation above.
            for _comp, index, _ in slots:
                self._t_useful[index] = max(0, int(self._t_useful[index]) - 1)
            return
        # Bias allocation toward shorter histories (classic TAGE heuristic):
        # pick the first candidate with probability 1/2, else uniformly.
        if len(candidates) > 1 and self._rng.chance(0.5):
            choice = candidates[0]
        else:
            choice = candidates[self._rng.next_below(len(candidates))]
        _comp, index, tag = choice
        self._t_tag[index] = tag
        self._t_ctr[index] = 4 if taken else 3
        self._t_useful[index] = 0
        self._t_ugen[index] = gen

    def _tick(self) -> None:
        # O(1) periodic reset via the generation counter (no table walk).
        self._updates += 1
        if self._updates >= self._useful_reset_period:
            self._updates = 0
            self._useful_gen += 1

    # -- reporting ----------------------------------------------------------

    def storage_bits(self) -> int:
        bits = self.bimodal_entries * 2
        for comp in range(self.components):
            bits += self.tagged_entries * (self.tag_bits[comp] + 3 + 2)
        return bits
