"""Shared front-end precomputation for batched multi-variant sweeps.

All sweep variants in a Fig 6/7 grid consume the same dynamic µ-op
stream, and everything upstream of the value predictor is
variant-independent:

* the fetch-block grouping (``group_block_instances``);
* the folded branch/path history (``FoldedHistorySet`` evolves purely
  from the program-order outcome/target stream);
* BTB redirect detection (lookups/installs happen in program order at
  every taken branch, independent of pipeline timing);
* every table *index* hash — TAGE and D-VTAGE slots are functions of
  (pc/key, folded history at fetch), and the history at any µ-op is
  fixed by the trace.

This module runs that front end exactly once and materialises flat
per-µ-op tuples, per-fetch-group metadata, and the folded-history
*epoch* stream (the history only changes at branches, so each distinct
state gets one epoch id and one captured ``FoldedHistoryState``).
TAGE slots are computed eagerly (every conditional branch needs them);
D-VTAGE slots are memoised lazily per (epoch, block key) through
:class:`DVTAGESlotGeometry` so variants sharing a slot geometry share
the hashing work.

What is *not* shareable: TAGE table contents (training is deferred to
variant-dependent commit cycles), D-VTAGE state, and all pipeline
timing.  Those live in the fused per-variant walk
(:mod:`repro.batch.runner`).
"""

from __future__ import annotations

from typing import Sequence

from repro.branch.btb import BranchTargetBuffer
from repro.common.bits import fold_bits
from repro.common.history import FoldedHistorySet, FoldedHistoryState
from repro.isa.instruction import LatencyClass
from repro.pipeline.core import group_block_instances
from repro.predictors.base import table_index, tagged_index, tagged_tag
from repro.predictors.vtage import geometric_history_lengths
from repro.workloads.trace import Trace

# TAGE geometry mirrors TAGEBranchPredictor defaults (branch/tage.py).
TAGE_COMPONENTS = 12
TAGE_INDEX_BITS = 10
TAGE_ENTRIES = 1 << TAGE_INDEX_BITS
TAGE_BIMODAL_BITS = 12
TAGE_TAG_BITS = tuple(min(8 + i // 2, 15) for i in range(TAGE_COMPONENTS))
TAGE_HISTORY = geometric_history_lengths(TAGE_COMPONENTS, 8, 640)

# Execution-latency constants mirror pipeline/core.py (_LATENCY and the
# eole_4_60 functional-unit pools).
_LATENCY = {
    LatencyClass.ALU: 1,
    LatencyClass.MUL: 3,
    LatencyClass.DIV: 25,
    LatencyClass.FP: 3,
    LatencyClass.FPMUL: 5,
    LatencyClass.FPDIV: 10,
    LatencyClass.BRANCH: 1,
    LatencyClass.NONE: 1,
    LatencyClass.MEM: 1,
}
_POOL = {
    LatencyClass.ALU: 4,
    LatencyClass.BRANCH: 4,
    LatencyClass.NONE: 4,
    LatencyClass.MUL: 1,
    LatencyClass.FP: 2,
    LatencyClass.FPMUL: 2,
}
# Distinct small id per latency class for packed (cycle << 4) | cid
# functional-unit occupancy keys in the fused walk.
_CID = {cls: i for i, cls in enumerate(LatencyClass)}

# lat_kind discriminator in the per-µ-op tuple.
KIND_NORMAL = 0
KIND_DIV = 1
KIND_FPDIV = 2
KIND_MEM = 3

# Per-µ-op tuple field indices (see precompute_front_end).
U_SEQ = 0
U_PC = 1
U_BLOCK_PC = 2
U_BOUNDARY = 3
U_DEST = 4
U_SRCS = 5
U_VALUE = 6
U_IS_LOAD = 7
U_IS_STORE = 8
U_IS_LOAD_IMM = 9
U_MEM_ADDR = 10
U_IS_BRANCH = 11
U_IS_COND = 12
U_TAKEN = 13
U_IS_LAST = 14
U_ELIGIBLE = 15
U_EARLY_OK = 16
U_LAT_KIND = 17
U_CID = 18
U_POOL = 19
U_LAT = 20
U_TAGE = 21
U_BTB_MISS = 22
U_EPOCH = 23


def tage_fold_pairs() -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
    """(index, tag) folded-history register pairs for the default TAGE."""
    idx = tuple((length, TAGE_INDEX_BITS) for length in TAGE_HISTORY)
    tag = tuple(zip(TAGE_HISTORY, TAGE_TAG_BITS))
    return idx, tag


def dvtage_fold_pairs(config) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
    """(index, tag) folded-history register pairs for a BlockDVTAGEConfig."""
    lengths = geometric_history_lengths(
        config.components, config.min_history, config.max_history
    )
    tagged_index_bits = config.tagged_entries.bit_length() - 1
    idx = tuple((length, tagged_index_bits) for length in lengths)
    tag = tuple(
        (length, config.first_tag_bits + i) for i, length in enumerate(lengths)
    )
    return idx, tag


def geometry_key(config) -> tuple:
    """Slot-geometry identity of a BlockDVTAGEConfig (npred-independent)."""
    return (
        config.base_entries,
        config.tagged_entries,
        config.components,
        config.first_tag_bits,
        config.lvt_tag_bits,
        config.min_history,
        config.max_history,
    )


class DVTAGESlotGeometry:
    """Lazy memo of D-VTAGE slots keyed by (history epoch, block key).

    A slot bundle is a flat tuple ``(lvt_index, lvt_tag, idx0, tag0,
    idx1, tag1, ...)`` where component ``c`` reads index ``[2 + 2*c]``
    and tag ``[3 + 2*c]``.  Tagged indices are pre-offset by
    ``c * tagged_entries`` into the flat component bank.  Shared across
    every variant (and every refetch replay) with the same geometry.
    """

    __slots__ = (
        "components",
        "tagged_entries",
        "base_index_bits",
        "tagged_index_bits",
        "lvt_tag_mask",
        "tag_bits",
        "history_lengths",
        "states",
        "_memo",
    )

    def __init__(self, config, states: Sequence[FoldedHistoryState]) -> None:
        self.components = config.components
        self.tagged_entries = config.tagged_entries
        self.base_index_bits = config.base_entries.bit_length() - 1
        self.tagged_index_bits = config.tagged_entries.bit_length() - 1
        self.lvt_tag_mask = (1 << config.lvt_tag_bits) - 1
        self.tag_bits = tuple(
            config.first_tag_bits + i for i in range(config.components)
        )
        self.history_lengths = geometric_history_lengths(
            config.components, config.min_history, config.max_history
        )
        self.states = states
        self._memo: dict[tuple[int, int], tuple[int, ...]] = {}

    def slots(self, epoch: int, key: int) -> tuple[int, ...]:
        memo_key = (epoch, key)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        state = self.states[epoch]
        flat = [
            table_index(key, self.base_index_bits),
            (key >> self.base_index_bits) & self.lvt_tag_mask,
        ]
        entries = self.tagged_entries
        index_bits = self.tagged_index_bits
        for comp, length in enumerate(self.history_lengths):
            flat.append(comp * entries + tagged_index(key, state, length, index_bits))
            flat.append(tagged_tag(key, state, length, self.tag_bits[comp]))
        result = tuple(flat)
        self._memo[memo_key] = result
        return result


class FrontEnd:
    """Precomputed variant-independent streams for one trace."""

    __slots__ = ("trace", "uops", "groups", "group_meta", "states")

    def __init__(
        self,
        trace: Trace,
        uops: list[tuple],
        groups: list[tuple[int, int]],
        group_meta: list[tuple],
        states: list[FoldedHistoryState],
    ) -> None:
        self.trace = trace
        self.uops = uops
        self.groups = groups
        self.group_meta = group_meta
        self.states = states


def precompute_front_end(
    trace: Trace,
    extra_idx_pairs: Sequence[tuple[int, int]] = (),
    extra_tag_pairs: Sequence[tuple[int, int]] = (),
) -> FrontEnd:
    """Run the shared front end once over ``trace``.

    ``extra_*_pairs`` register additional folded-history widths (one
    per distinct D-VTAGE geometry in the batch); FoldedHistorySet
    dedupes per (length, width), so a union registration yields
    bit-identical folds for every consumer.
    """
    tage_idx, tage_tag = tage_fold_pairs()
    hists = FoldedHistorySet(
        640, 64, tage_idx + tuple(extra_idx_pairs), tage_tag + tuple(extra_tag_pairs)
    )
    btb = BranchTargetBuffer(table_backend="python")
    source = trace.uops
    states: list[FoldedHistoryState] = []
    uops: list[tuple] = []
    epoch = 0
    bim_mask = (1 << TAGE_BIMODAL_BITS) - 1
    # Memoised PC-only halves of the TAGE hashes (hot branches repeat):
    # tagged_index = pc_idx ^ idx_fold, tagged_tag = pc_tag ^ tag_fold,
    # with the component bank offset added after the XOR (both fold terms
    # stay below the index width, so the offset is unaffected).
    idx_w_mask = TAGE_ENTRIES - 1
    idx_fkeys = tuple(
        (TAGE_HISTORY[c] << 7) | TAGE_INDEX_BITS for c in range(TAGE_COMPONENTS)
    )
    tag_fkeys = tuple(
        (TAGE_HISTORY[c] << 7) | TAGE_TAG_BITS[c] for c in range(TAGE_COMPONENTS)
    )
    comp_base = tuple(c * TAGE_ENTRIES for c in range(TAGE_COMPONENTS))
    pc_parts_memo: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
    for uop in source:
        if len(states) == epoch:
            states.append(hists.state())
        is_branch = uop.is_branch
        is_cond = uop.is_cond_branch
        taken = uop.branch_taken
        tage = None
        if is_cond:
            state = states[epoch]
            pc = uop.pc
            parts = pc_parts_memo.get(pc)
            if parts is None:
                pc_idx = table_index(pc, TAGE_INDEX_BITS) ^ (
                    (pc >> TAGE_INDEX_BITS) & idx_w_mask
                )
                parts = pc_parts_memo[pc] = (
                    (pc_idx,) * TAGE_COMPONENTS,
                    tuple(
                        fold_bits(pc * 0x9E3779B9, 64, TAGE_TAG_BITS[c])
                        for c in range(TAGE_COMPONENTS)
                    ),
                )
            pc_idxs, pc_tags = parts
            idxf = state.idx_folds
            tagf = state.tag_folds
            flat = []
            for comp in range(TAGE_COMPONENTS):
                flat.append(
                    comp_base[comp] + (pc_idxs[comp] ^ idxf[idx_fkeys[comp]])
                )
                flat.append(pc_tags[comp] ^ tagf[tag_fkeys[comp]])
            tage = ((pc >> 2) & bim_mask, tuple(flat))
        btb_miss = False
        if is_branch and taken:
            target = btb.lookup(uop.pc)
            if target != uop.branch_target:
                btb_miss = True
                btb.install(uop.pc, uop.branch_target)
        lat_class = uop.latency_class
        if lat_class is LatencyClass.DIV:
            lat_kind = KIND_DIV
            pool = 0
        elif lat_class is LatencyClass.FPDIV:
            lat_kind = KIND_FPDIV
            pool = 0
        elif lat_class is LatencyClass.MEM:
            lat_kind = KIND_MEM
            pool = 2 if uop.is_load else 1
        else:
            lat_kind = KIND_NORMAL
            pool = _POOL[lat_class]
        early_ok = (
            (lat_class is LatencyClass.ALU or lat_class is LatencyClass.NONE)
            and not uop.is_load
            and not uop.is_store
        )
        uops.append(
            (
                uop.seq,
                uop.pc,
                uop.block_pc,
                uop.boundary,
                uop.dest,
                uop.srcs,
                uop.value,
                uop.is_load,
                uop.is_store,
                uop.is_load_imm,
                uop.mem_addr,
                is_branch,
                is_cond,
                taken,
                uop.is_last_uop,
                uop.is_vp_eligible,
                early_ok,
                lat_kind,
                _CID[lat_class],
                pool,
                _LATENCY[lat_class],
                tage,
                btb_miss,
                epoch,
            )
        )
        pushed = False
        if is_cond:
            hists.push_outcome(taken)
            pushed = True
        if is_branch and taken:
            hists.push_path(uop.branch_target)
            pushed = True
        if pushed:
            epoch += 1
    groups = group_block_instances(source)
    group_meta: list[tuple] = []
    wtag_memo: dict[int, int] = {}
    for start, end in groups:
        block_pc = source[start].block_pc
        wtag = wtag_memo.get(block_pc)
        if wtag is None:
            wtag = wtag_memo[block_pc] = fold_bits(block_pc >> 4, 60, 15)
        elig = tuple(
            (i - start, uops[i][U_BOUNDARY])
            for i in range(start, end)
            if uops[i][U_ELIGIBLE]
        )
        boundaries = tuple(b for _, b in elig)
        group_meta.append((wtag, block_pc >> 4, elig, boundaries))
    return FrontEnd(trace, uops, groups, group_meta, states)
