"""The fused per-variant walk for batched sweeps.

``run_fused_variant`` is a transcription of the serial hot path —
``pipeline/core.PipelineModel.run`` + ``bebop/engine.BeBoPEngine`` +
``bebop/predictor.BlockDVTAGE`` + ``branch/tage.TAGEBranchPredictor`` —
specialised to the ``eole_4_60`` BeBoP configuration and fed by the
precomputed variant-independent streams of :mod:`repro.batch.precompute`
(per-µ-op tuples, TAGE slot hashes, BTB miss bits, memoised D-VTAGE
slots).  All instrumentation hooks of the serial path (obs counters,
timeline recorders, CPI stacks, provenance) are stats-passive there and
simply absent here.

The serial python path remains the golden contract: every branch of this
function mirrors a specific statement of the originals, including RNG
draw order (TAGE allocation's chance-then-uniform choice, FPC's
no-draw-at-p>=1 advance) and container semantics (speculative-window
reversed scans, FIFO identity removal, heap fixups with a unique
tiebreak).  ``tests/test_batch_parity.py`` proves SimStats bit-identity
against the serial path; treat any edit here that is not paired with a
parity run as wrong.

Table state arrives as plain-python column lists — per-variant views of
variant-stacked ``TableBank`` storage (``make_bank(..., variants=N)``)
built by :mod:`repro.batch.dispatch`.  The walk pins the python backend
for its internal state regardless of ``REPRO_TABLE_BACKEND``: backends
are bit-identical by contract and JobSpec digests exclude the backend,
so results remain valid for either cache cell.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.batch.precompute import (
    TAGE_COMPONENTS,
    DVTAGESlotGeometry,
    FrontEnd,
    U_EPOCH,
)
from repro.bebop.attribution import FREE_TAG, attribute_predictions, update_tag_assignment
from repro.bebop.recovery import RecoveryPolicy
from repro.common.bits import WORD_MASK
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.stats import SimStats
from repro.predictors.confidence import PAPER_FPC_PROBABILITIES

_M64 = WORD_MASK
_HALF = 1 << 63  # XorShift64.chance(0.5) threshold: int(0.5 * 2**64)

# eole_4_60 CoreConfig constants (pipeline/config.py).  The dispatcher
# only routes jobs with pipeline == "eole_4_60" here.
_ISSUE_W = 4
_DECODE_W = 8
_FE_DEPTH = 15
_BE_DEPTH = 6
_FETCH_BLOCKS = 2
_FQ = 48
_ROB = 192
_IQ = 60
_LQ = 72
_SQ = 48
_COMMIT_W = 8
_PRUNE_INTERVAL = 4096

# FPC advance thresholds per level: None = certain advance (no RNG
# draw — XorShift64.chance returns early for p >= 1.0), -1 = never.
_FPC_THRESHOLDS = tuple(
    None if p >= 1.0 else (-1 if p <= 0.0 else int(p * (WORD_MASK + 1)))
    for p in PAPER_FPC_PROBABILITIES
)
_FPC_MAX = 7

# PendingBlock-as-list field indices (bebop/update_queue.PendingBlock
# plus the BlockReadout fields update time needs; use_masked is
# write-only in the serial engine and dropped here).
_P_SEQ = 0
_P_WTAG = 1
_P_BLOCK_PC = 2
_P_VALUES = 3
_P_RETIRED = 4
_P_BYTE_TAGS = 5
_P_PROVIDER = 6
_P_PINDEX = 7
_P_PTAG = 8
_P_STRIDES = 9
_P_CONF = 10
_P_ALT = 11
_P_EPOCH = 12
_P_KEY = 13
_P_LIDX = 14
_P_LTAG = 15


def run_fused_variant(
    fe: FrontEnd,
    config,
    window_capacity: int | None,
    policy: RecoveryPolicy,
    tables: dict[str, list[int]],
    geo: DVTAGESlotGeometry,
    warmup_uops: int,
) -> SimStats:
    """Simulate one variant over the precomputed front end.

    Bit-identical to ``run_bebop_eole(trace, make_bebop_engine(config,
    window=window_capacity, policy=policy), warmup_uops)``.
    """
    trace = fe.trace
    U = fe.uops
    groups = fe.groups
    group_meta = fe.group_meta
    stats = SimStats(workload=trace.name, config="eole_4_60")
    if not U:
        return stats

    # ---- D-VTAGE constants / state ------------------------------------
    npred = config.npred
    components = config.components
    stride_bits = config.stride_bits
    s_sign = 1 << (stride_bits - 1)
    s_mod = 1 << stride_bits
    s_mask = s_mod - 1
    useful_reset_period = config.useful_reset_period
    propagate = config.propagate_confidence
    monotonic = config.monotonic_byte_tags

    l_tag = tables["l_tag"]
    l_last = tables["l_last"]
    l_byte = tables["l_byte"]
    v_strides = tables["v_strides"]
    v_conf = tables["v_conf"]
    t_tag = tables["t_tag"]
    t_strides = tables["t_strides"]
    t_conf = tables["t_conf"]
    t_useful = tables["t_useful"]
    t_ugen = tables["t_ugen"]
    # TAGE banks.
    b_ctr = tables["b_ctr"]
    bt_tag = tables["bt_tag"]
    bt_ctr = tables["bt_ctr"]
    bt_useful = tables["bt_useful"]
    bt_ugen = tables["bt_ugen"]

    geo_slots = geo.slots

    # Inline RNG states (XorShift64; seeds match the serial constructors).
    rng_dv = [0xBEB0]
    rng_fpc = [0xF9C]
    rng_tage = [0x7A63]
    dv_updates = [0]
    dv_gen = [0]
    tage_updates = [0]
    tage_gen = [0]
    use_alt = [8]

    # ---- recovery policy / window -------------------------------------
    repredicts = policy.repredicts
    reuses_predictions = policy.reuses_predictions
    squashes_head = policy.squashes_head
    is_ideal = policy is RecoveryPolicy.IDEAL
    win_cap = window_capacity
    win_enabled = win_cap is None or win_cap > 0

    # ---- engine state --------------------------------------------------
    window: list[list] = []      # [wtag, seq, values] in insertion order
    fifo: list[list] = []        # pending blocks in push order
    deferred: deque = deque()    # (apply_cycle, pending)
    fixups: list[tuple] = []     # heap of (cycle, tiebreak, pending, slot, value)
    fixup_counter = 0
    deferred_bp: deque = deque()  # (apply_cycle, bim_index, tage_slots, taken, meta)

    memory = MemoryHierarchy()
    load_latency = memory.load_latency
    ifetch_latency = memory.ifetch_latency
    # Inline L1 hit fast paths: only l1d/l2 *misses* reach SimStats, so a
    # hit may skip the hit counter, but must preserve LRU recency (it
    # decides future evictions and therefore timing).
    _l1i = memory.l1i
    l1i_sets = _l1i._sets
    l1i_mask = _l1i._index_mask
    l1i_tshift = _l1i.sets.bit_length() - 1
    _l1d = memory.l1d
    l1d_sets = _l1d._sets
    l1d_mask = _l1d._index_mask
    l1d_tshift = _l1d.sets.bit_length() - 1
    _l1d_lat = _l1d.latency

    geo_memo = geo._memo

    # ---- predictor training closures ----------------------------------

    def dv_allocate(key, pending, observed, correct_slots):
        # BlockDVTAGE._allocate
        gen = dv_gen[0]
        slots = geo_slots(pending[_P_EPOCH], key)
        candidates = []
        scanned = []
        for comp in range(pending[_P_PROVIDER], components):
            index = slots[2 + 2 * comp]
            tag = slots[3 + 2 * comp]
            scanned.append(index)
            if t_useful[index] == 0 or t_ugen[index] != gen:
                candidates.append((index, tag))
        if not candidates:
            for index in scanned:
                t_useful[index] = 0
                t_ugen[index] = gen
            return
        x = rng_dv[0]
        x ^= (x << 13) & _M64
        x ^= x >> 7
        x ^= (x << 17) & _M64
        rng_dv[0] = x
        index, tag = candidates[x % len(candidates)]
        t_tag[index] = tag
        t_useful[index] = 0
        t_ugen[index] = gen
        base = index * npred
        r_strides = pending[_P_STRIDES]
        r_conf = pending[_P_CONF]
        for m in range(npred):
            if m in correct_slots:
                t_strides[base + m] = r_strides[m]
                t_conf[base + m] = r_conf[m] if propagate else 0
            elif m in observed:
                t_strides[base + m] = observed[m]
                t_conf[base + m] = 0
            else:
                t_strides[base + m] = r_strides[m]
                t_conf[base + m] = r_conf[m] if propagate else 0

    def dv_update(pending):
        # BlockDVTAGE.update (return value unused by the engine)
        retired = pending[_P_RETIRED]
        if not retired:
            return
        key = pending[_P_KEY]
        lvt_index = pending[_P_LIDX]
        lvt_tag = pending[_P_LTAG]
        lvt_base = lvt_index * npred
        fresh = l_tag[lvt_index] != lvt_tag
        boundaries = [boundary for boundary, _ in retired]
        byte_tags = l_byte[lvt_base:lvt_base + npred]
        assignment, new_tags = update_tag_assignment(
            byte_tags if not fresh else [FREE_TAG] * npred,
            boundaries,
            fresh_allocation=fresh,
            monotonic=monotonic,
        )
        if fresh:
            retagged = ()
        else:
            retagged = [
                s for s in range(npred) if new_tags[s] != byte_tags[s]
            ]
        provider = pending[_P_PROVIDER]
        provider_index = pending[_P_PINDEX]
        if provider == 0:
            provider_live = True
            p_strides, p_conf = v_strides, v_conf
        else:
            provider_live = t_tag[provider_index] == pending[_P_PTAG]
            p_strides, p_conf = t_strides, t_conf
        p_base = provider_index * npred

        any_wrong = False
        any_useful = False
        observed: dict[int, int] = {}
        correct_slots: set[int] = set()
        r_values = pending[_P_VALUES]
        r_strides = pending[_P_STRIDES]
        r_alt = pending[_P_ALT]
        for (boundary, actual), slot in zip(retired, assignment):
            if slot is None:
                continue
            prev_last = l_last[lvt_base + slot]
            # _truncate(actual - prev_last) == (actual - prev_last) & mask
            observed[slot] = (actual - prev_last) & s_mask
            correct = (not fresh) and r_values[slot] == actual
            if correct:
                correct_slots.add(slot)
                if r_alt[slot] != r_strides[slot]:
                    any_useful = True
            else:
                any_wrong = True
            if fresh:
                l_last[lvt_base + slot] = actual
                continue
            if provider_live and slot not in retagged:
                if correct:
                    # FPCPolicy.advance, inline.
                    level = p_conf[p_base + slot]
                    if level < _FPC_MAX:
                        threshold = _FPC_THRESHOLDS[level]
                        if threshold is None:
                            p_conf[p_base + slot] = level + 1
                        elif threshold >= 0:
                            x = rng_fpc[0]
                            x ^= (x << 13) & _M64
                            x ^= x >> 7
                            x ^= (x << 17) & _M64
                            rng_fpc[0] = x
                            if x < threshold:
                                p_conf[p_base + slot] = level + 1
                else:
                    p_conf[p_base + slot] = 0
                    p_strides[p_base + slot] = observed[slot]
            elif provider_live:
                p_conf[p_base + slot] = 0
                p_strides[p_base + slot] = observed[slot]
            l_last[lvt_base + slot] = actual

        if provider_live and provider > 0:
            if any_wrong:
                t_useful[provider_index] = 0
                t_ugen[provider_index] = dv_gen[0]
            elif any_useful:
                t_useful[provider_index] = 1
                t_ugen[provider_index] = dv_gen[0]

        l_tag[lvt_index] = lvt_tag
        l_byte[lvt_base:lvt_base + npred] = new_tags

        if any_wrong and not fresh:
            dv_allocate(key, pending, observed, correct_slots)
        # _tick_useful_reset
        ticks = dv_updates[0] + 1
        if ticks >= useful_reset_period:
            dv_updates[0] = 0
            dv_gen[0] += 1
        else:
            dv_updates[0] = ticks

    def tage_allocate(tage_slots, provider, taken):
        # TAGEBranchPredictor._allocate
        gen = tage_gen[0]
        candidates = []
        scanned = []
        for comp in range(provider, TAGE_COMPONENTS):
            index = tage_slots[2 * comp]
            tag = tage_slots[2 * comp + 1]
            scanned.append(index)
            if bt_ugen[index] != gen:
                bt_useful[index] = 0
                bt_ugen[index] = gen
            if bt_useful[index] == 0:
                candidates.append((index, tag))
        if not candidates:
            for index in scanned:
                u = bt_useful[index] - 1
                bt_useful[index] = u if u > 0 else 0
            return
        choice = None
        if len(candidates) > 1:
            x = rng_tage[0]
            x ^= (x << 13) & _M64
            x ^= x >> 7
            x ^= (x << 17) & _M64
            rng_tage[0] = x
            if x < _HALF:
                choice = candidates[0]
        if choice is None:
            x = rng_tage[0]
            x ^= (x << 13) & _M64
            x ^= x >> 7
            x ^= (x << 17) & _M64
            rng_tage[0] = x
            choice = candidates[x % len(candidates)]
        index, tag = choice
        bt_tag[index] = tag
        bt_ctr[index] = 4 if taken else 3
        bt_useful[index] = 0
        bt_ugen[index] = gen

    def tage_train(bim_index, tage_slots, taken, meta):
        # TAGEBranchPredictor.train; meta = (provider, index, tag,
        # alt_taken, provider_weak)
        provider = meta[0]
        if provider == 0:
            ctr = b_ctr[bim_index]
            b_ctr[bim_index] = min(3, ctr + 1) if taken else max(0, ctr - 1)
            if meta[3] != taken:
                tage_allocate(tage_slots, 0, taken)
        else:
            index = meta[1]
            if bt_tag[index] == meta[2]:
                ctr = bt_ctr[index]
                provider_taken = ctr >= 4
                provider_correct = provider_taken == taken
                bt_ctr[index] = min(7, ctr + 1) if taken else max(0, ctr - 1)
                gen = tage_gen[0]
                if bt_ugen[index] != gen:
                    bt_useful[index] = 0
                    bt_ugen[index] = gen
                if provider_correct and meta[3] != provider_taken:
                    bt_useful[index] = min(3, bt_useful[index] + 1)
                elif not provider_correct:
                    bt_useful[index] = max(0, bt_useful[index] - 1)
                if meta[4] and meta[3] != provider_taken:
                    if meta[3] == taken:
                        use_alt[0] = min(15, use_alt[0] + 1)
                    else:
                        use_alt[0] = max(0, use_alt[0] - 1)
                if not provider_correct:
                    tage_allocate(tage_slots, provider, taken)
            else:
                tage_allocate(tage_slots, provider, taken)
        # _tick
        ticks = tage_updates[0] + 1
        if ticks >= 262144:
            tage_updates[0] = 0
            tage_gen[0] += 1
        else:
            tage_updates[0] = ticks

    # ---- machine state (pipeline/core.run) -----------------------------
    fetch_cycle = 0
    blocks_in_cycle = 0
    next_fetch_min = 0
    last_dispatch = 0
    # Per-cycle occupancy counters.  The serial path keeps these in
    # pruned dicts; counts never exceed the per-cycle width limits
    # (<= 8), so cycle-indexed bytearrays are equivalent and cheaper.
    # ``fu_b`` packs (cycle << 4) | class_id like the serial fu key.
    cap = 1 << 16
    disp_cnt = bytearray(cap)
    iss_cnt = bytearray(cap)
    com_cnt = bytearray(cap)
    fu_b = bytearray(cap << 4)

    def _grow(n):
        nonlocal cap
        new = cap
        while new <= n + 64:
            new <<= 1
        disp_cnt.extend(bytes(new - cap))
        iss_cnt.extend(bytes(new - cap))
        com_cnt.extend(bytes(new - cap))
        fu_b.extend(bytes((new - cap) << 4))
        cap = new
        return new

    div_free = 0
    fpdiv_free = 0
    last_commit = 0
    rob_commits: deque[int] = deque(maxlen=_ROB)
    dispatch_cycles: deque[int] = deque(maxlen=_FQ)
    iq_issues: deque[int] = deque(maxlen=_IQ)
    lq_completes: deque[int] = deque(maxlen=_LQ)
    sq_completes: deque[int] = deque(maxlen=_SQ)
    rob_count = 0
    fq_count = 0
    iq_count = 0
    lq_count = 0
    sq_count = 0
    reg_avail: dict[int, int] = {}
    store_ready: dict[int, int] = {}
    next_prune = _PRUNE_INTERVAL

    measuring = warmup_uops == 0
    base_cycle = 0
    uop_index = 0

    s_uops = 0
    s_insts = 0
    s_branches = 0
    s_branch_mispredicts = 0
    s_btb_misses = 0
    s_vp_eligible = 0
    s_vp_predicted = 0
    s_vp_used = 0
    s_vp_used_correct = 0
    s_vp_squashes = 0
    s_early = 0
    s_late = 0

    gi = 0
    n_groups = len(groups)
    pending_refetch = None        # (start, end, handle pending)
    reuse_next_group = None
    reuse_block_pc = -1
    gwtag = 0
    gkey = 0

    while gi < n_groups or pending_refetch is not None:
        if pending_refetch is not None:
            gstart, gend, reuse = pending_refetch
            pending_refetch = None
            # Dynamic remainder of the same block: gwtag/gkey persist from
            # the originating static group (same block_pc by construction).
            elig = tuple(
                (i - gstart, U[i][3]) for i in range(gstart, gend) if U[i][15]
            )
            boundaries = tuple(b for _, b in elig)
        else:
            gstart, gend = groups[gi]
            gwtag, gkey, elig, boundaries = group_meta[gi]
            gi += 1
            reuse = None
            if reuse_next_group is not None:
                if U[gstart][2] == reuse_block_pc:
                    reuse = reuse_next_group
                reuse_next_group = None

        block_pc = U[gstart][2]
        glen = gend - gstart

        # ---- fetch ----------------------------------------------------
        c = fetch_cycle if fetch_cycle >= next_fetch_min else next_fetch_min
        if fq_count >= _FQ:
            t = dispatch_cycles[0]
            if t > c:
                c = t
        if c > fetch_cycle:
            fetch_cycle = c
            blocks_in_cycle = 0
        if blocks_in_cycle >= _FETCH_BLOCKS:
            fetch_cycle += 1
            blocks_in_cycle = 0
        _line = block_pc >> 6
        _ways = l1i_sets[_line & l1i_mask]
        _tg = _line >> l1i_tshift
        if _ways and _ways[-1] == _tg:
            ifetch_lat = 1
        elif _tg in _ways:
            _ways.remove(_tg)
            _ways.append(_tg)
            ifetch_lat = 1
        else:
            ifetch_lat = ifetch_latency(block_pc)
        block_avail = fetch_cycle + ifetch_lat - 1
        blocks_in_cycle += 1
        if ifetch_lat > 1:
            fetch_cycle = block_avail
            blocks_in_cycle = 1

        # ---- value prediction (BeBoPEngine.fetch_group) ----------------
        # _apply_until(fetch_cycle): result fixups first, then deferred
        # trainings + window retires.
        while fixups and fixups[0][0] <= fetch_cycle:
            item = heappop(fixups)
            p = item[2]
            wt = p[1]
            sq = p[0]
            for j in range(len(window) - 1, -1, -1):
                entry = window[j]
                if entry[0] == wt and entry[1] == sq:
                    vals = entry[2]
                    slot = item[3]
                    if 0 <= slot < len(vals):
                        vals[slot] = item[4]
                    break
        while deferred and deferred[0][0] <= fetch_cycle:
            p = deferred.popleft()[1]
            dv_update(p)
            wt = p[1]
            sq = p[0]
            for j in range(len(window) - 1, -1, -1):
                entry = window[j]
                if entry[0] == wt and entry[1] == sq:
                    del window[j]
                    break

        if reuse is None or repredicts:
            # _predict_block (mask_use=False)
            epoch = U[gstart][U_EPOCH]
            slots_flat = geo_memo.get((epoch, gkey))
            if slots_flat is None:
                slots_flat = geo_slots(epoch, gkey)
            lvt_index = slots_flat[0]
            lvt_tag = slots_flat[1]
            lvt_base = lvt_index * npred
            lvt_hit = l_tag[lvt_index] == lvt_tag
            if lvt_hit:
                lvt_last = l_last[lvt_base:lvt_base + npred]
                byte_tags = l_byte[lvt_base:lvt_base + npred]
            else:
                lvt_last = [0] * npred
                byte_tags = [FREE_TAG] * npred
            last_index = -1
            alt_index = -1
            last_comp = -1
            for comp in range(components):
                index = slots_flat[2 + 2 * comp]
                if t_tag[index] == slots_flat[3 + 2 * comp]:
                    alt_index = last_index
                    last_index = index
                    last_comp = comp
            if last_comp >= 0:
                provider = last_comp + 1
                provider_index = last_index
                provider_tag = slots_flat[3 + 2 * last_comp]
                pb = last_index * npred
                strides = t_strides[pb:pb + npred]
                conf = t_conf[pb:pb + npred]
                if alt_index >= 0:
                    ab = alt_index * npred
                    alt_strides = t_strides[ab:ab + npred]
                else:
                    vb = lvt_index * npred
                    alt_strides = v_strides[vb:vb + npred]
            else:
                provider = 0
                provider_index = lvt_index
                provider_tag = 0
                vb = lvt_index * npred
                strides = v_strides[vb:vb + npred]
                conf = v_conf[vb:vb + npred]
                alt_strides = list(strides)
            # Speculative-window probe (most recent matching tag wins).
            spec_values = None
            if win_enabled:
                for j in range(len(window) - 1, -1, -1):
                    entry = window[j]
                    if entry[0] == gwtag:
                        spec_values = entry[2]
                        break
            if spec_values is not None:
                last_values = spec_values
                usable = True
            elif lvt_hit:
                last_values = lvt_last
                usable = True
            else:
                last_values = lvt_last
                usable = False
            # compose: prediction = last value + signed stride, mod 2^64.
            values = [0] * npred
            for m in range(npred):
                s = strides[m]
                if s >= s_sign:
                    s -= s_mod
                values[m] = (last_values[m] + s) & _M64
            first_seq = U[gstart][0]
            if win_enabled:
                window.append([gwtag, first_seq, list(values)])
                if win_cap is not None and len(window) > win_cap:
                    del window[0]
            pending = [
                first_seq, gwtag, block_pc, values, [], byte_tags,
                provider, provider_index, provider_tag, strides, conf,
                alt_strides, epoch, gkey, lvt_index, lvt_tag,
            ]
            fifo.append(pending)
            preds = [None] * glen
            slot_assign = attribute_predictions(byte_tags, boundaries)
            for (pos, _b), slot in zip(elig, slot_assign):
                if slot is not None:
                    preds[pos] = (
                        values[slot], usable and conf[slot] >= _FPC_MAX, slot
                    )
        else:
            # DnRR / DnRDnR: reuse the flushed block's prediction block.
            pending = reuse
            usable = reuses_predictions
            values = pending[_P_VALUES]
            byte_tags = pending[_P_BYTE_TAGS]
            conf = pending[_P_CONF]
            preds = [None] * glen
            slot_assign = attribute_predictions(byte_tags, boundaries)
            for (pos, _b), slot in zip(elig, slot_assign):
                if slot is not None:
                    preds[pos] = (
                        values[slot], usable and conf[slot] >= _FPC_MAX, slot
                    )

        group_broken = False
        for k in range(gstart, gend):
            (
                seq, pc, _bpc, boundary, dest, srcs, value, is_load,
                is_store, is_load_imm, mem_addr, is_branch, is_cond,
                taken, is_last, eligible, early_ok, lat_kind, cid, pool,
                lat, tage_pre, btb_miss, _epoch,
            ) = U[k]
            rel = k - gstart
            pred = preds[rel]
            predicted_used = pred is not None and pred[1]

            # ---- dispatch ---------------------------------------------
            d = block_avail + _FE_DEPTH
            if last_dispatch > d:
                d = last_dispatch
            if d >= cap:
                cap = _grow(d)
            while disp_cnt[d] >= _DECODE_W:
                d += 1
                if d >= cap:
                    cap = _grow(d)
            if rob_count >= _ROB:
                t = rob_commits[0] + 1
                if t > d:
                    d = t
            if is_load and lq_count >= _LQ:
                t = lq_completes[0]
                if t > d:
                    d = t
            if is_store and sq_count >= _SQ:
                t = sq_completes[0]
                if t > d:
                    d = t

            srcs_ready = 0
            for src in srcs:
                t = reg_avail.get(src, 0)
                if t > srcs_ready:
                    srcs_ready = t

            eole_early = early_ok and srcs_ready < d
            eole_late = predicted_used and early_ok
            if is_load_imm:
                eole_early = True
            bypass_ooo = eole_early or eole_late
            if not bypass_ooo:
                if iq_count >= _IQ:
                    t = iq_issues[0]
                    if t > d:
                        d = t
                if d >= cap:
                    cap = _grow(d)
                while disp_cnt[d] >= _DECODE_W:
                    d += 1
                    if d >= cap:
                        cap = _grow(d)
            elif d >= cap:
                cap = _grow(d)
            disp_cnt[d] += 1
            last_dispatch = d
            dispatch_cycles.append(d)
            fq_count += 1

            # ---- execute ----------------------------------------------
            if eole_early:
                complete = d
                if measuring:
                    s_early += 1
            elif eole_late:
                complete = d
                if measuring:
                    s_late += 1
            else:
                ready = d + 1
                if srcs_ready > ready:
                    ready = srcs_ready
                if is_load and mem_addr is not None:
                    t = store_ready.get(mem_addr, 0)
                    if t > ready:
                        ready = t
                c2 = ready
                if c2 >= cap:
                    cap = _grow(c2)
                if lat_kind == 0:
                    fk = (c2 << 4) | cid
                    while iss_cnt[c2] >= _ISSUE_W or fu_b[fk] >= pool:
                        c2 += 1
                        if c2 >= cap:
                            cap = _grow(c2)
                        fk = (c2 << 4) | cid
                    fu_b[fk] += 1
                elif lat_kind == 3:
                    fk = (c2 << 4) | cid
                    while iss_cnt[c2] >= _ISSUE_W or fu_b[fk] >= pool:
                        c2 += 1
                        if c2 >= cap:
                            cap = _grow(c2)
                        fk = (c2 << 4) | cid
                    fu_b[fk] += 1
                    if is_load:
                        _addr = mem_addr or 0
                        _line = _addr >> 6
                        _ways = l1d_sets[_line & l1d_mask]
                        _tg = _line >> l1d_tshift
                        if _ways and _ways[-1] == _tg:
                            lat = _l1d_lat
                        elif _tg in _ways:
                            _ways.remove(_tg)
                            _ways.append(_tg)
                            lat = _l1d_lat
                        else:
                            lat = load_latency(_addr)
                elif lat_kind == 1:
                    if div_free > c2:
                        c2 = div_free
                        if c2 >= cap:
                            cap = _grow(c2)
                    while iss_cnt[c2] >= _ISSUE_W:
                        c2 += 1
                        if c2 >= cap:
                            cap = _grow(c2)
                    div_free = c2 + lat
                else:
                    if fpdiv_free > c2:
                        c2 = fpdiv_free
                        if c2 >= cap:
                            cap = _grow(c2)
                    while iss_cnt[c2] >= _ISSUE_W:
                        c2 += 1
                        if c2 >= cap:
                            cap = _grow(c2)
                    fpdiv_free = c2 + lat
                iss_cnt[c2] += 1
                iq_issues.append(c2)
                iq_count += 1
                complete = c2 + lat

            if is_load:
                lq_completes.append(complete)
                lq_count += 1
            if is_store:
                sq_completes.append(complete)
                sq_count += 1
                if mem_addr is not None:
                    store_ready[mem_addr] = complete

            # ---- destination availability -----------------------------
            if dest is not None:
                if predicted_used or is_load_imm:
                    reg_avail[dest] = d
                else:
                    reg_avail[dest] = complete

            # BeBoPEngine.result_uop: patch the window entry one cycle
            # after the result computes.
            if eligible and pred is not None and value is not None:
                fixup_counter += 1
                heappush(
                    fixups,
                    (complete + 1, fixup_counter, pending, pred[2], value),
                )

            # ---- branches ---------------------------------------------
            mispredicted_branch = False
            if is_cond:
                # apply_deferred_bp(fetch_cycle)
                while deferred_bp and deferred_bp[0][0] <= fetch_cycle:
                    db = deferred_bp.popleft()
                    tage_train(db[1], db[2], db[3], db[4])
                # TAGEBranchPredictor.predict over precomputed slots.
                bim_index, tage_slots = tage_pre
                last_index = -1
                alt_tindex = -1
                last_comp = -1
                for comp in range(TAGE_COMPONENTS):
                    index = tage_slots[2 * comp]
                    if bt_tag[index] == tage_slots[2 * comp + 1]:
                        alt_tindex = last_index
                        last_index = index
                        last_comp = comp
                base_taken = b_ctr[bim_index] >= 2
                if last_comp < 0:
                    pred_taken = base_taken
                    bmeta = (0, 0, 0, base_taken, False)
                else:
                    ctr = bt_ctr[last_index]
                    provider_taken = ctr >= 4
                    weak = ctr == 3 or ctr == 4
                    if alt_tindex >= 0:
                        alt_taken = bt_ctr[alt_tindex] >= 4
                    else:
                        alt_taken = base_taken
                    bmeta = (
                        last_comp + 1, last_index,
                        tage_slots[2 * last_comp + 1], alt_taken, weak,
                    )
                    if weak and use_alt[0] >= 8:
                        pred_taken = alt_taken
                    else:
                        pred_taken = provider_taken
                mispredicted_branch = pred_taken != taken
                if measuring:
                    s_branches += 1
            # BTB lookup/install already folded into btb_miss upstream;
            # history pushes are the epoch stream.

            # ---- commit -----------------------------------------------
            cc = complete + _BE_DEPTH
            if last_commit > cc:
                cc = last_commit
            if cc >= cap:
                cap = _grow(cc)
            while com_cnt[cc] >= _COMMIT_W:
                cc += 1
                if cc >= cap:
                    cap = _grow(cc)
            com_cnt[cc] += 1
            last_commit = cc
            rob_commits.append(cc)
            rob_count += 1

            if is_cond:
                deferred_bp.append((cc + 1, bim_index, tage_slots, taken, bmeta))
                if mispredicted_branch:
                    if measuring:
                        s_branch_mispredicts += 1
                    if complete + 1 > next_fetch_min:
                        next_fetch_min = complete + 1
                    # BeBoPEngine.branch_squash(seq, complete)
                    window = [e for e in window if e[1] <= seq]
                    fifo = [b for b in fifo if b[0] <= seq]
            elif is_branch and taken:
                if btb_miss:
                    if measuring:
                        s_btb_misses += 1
                    if block_avail + 2 > next_fetch_min:
                        next_fetch_min = block_avail + 2

            # ---- VP validation at commit ------------------------------
            # BeBoPEngine.commit_uop
            if eligible and value is not None:
                pending[_P_RETIRED].append((boundary, value))
            if measuring and eligible:
                s_vp_eligible += 1
                if pred is not None:
                    s_vp_predicted += 1
            if predicted_used and eligible and value is not None:
                if pred[0] == value:
                    if measuring:
                        s_vp_used += 1
                        s_vp_used_correct += 1
                else:
                    if measuring:
                        s_vp_used += 1
                        s_vp_squashes += 1
                    reg_avail[dest] = cc
                    if cc + 1 > next_fetch_min:
                        next_fetch_min = cc + 1
                    if k + 1 < gend:
                        next_block_pc = U[k + 1][2]
                    elif gi < n_groups:
                        next_block_pc = U[groups[gi][0]][2]
                    else:
                        next_block_pc = None
                    # BeBoPEngine.vp_squash(handle, seq, next_block_pc, cc)
                    same_block = (
                        next_block_pc is not None
                        and next_block_pc == pending[_P_BLOCK_PC]
                    )
                    flush = pending[_P_SEQ]
                    if same_block and squashes_head:
                        window = [e for e in window if e[1] < flush]
                        fifo = [b for b in fifo if b[0] < flush]
                    else:
                        window = [e for e in window if e[1] <= flush]
                        fifo = [b for b in fifo if b[0] <= flush]
                    if same_block and is_ideal:
                        for j, b in enumerate(fifo):
                            if b is pending:
                                del fifo[j]
                                break
                        deferred.append((cc + 1, pending))
                        retired = pending[_P_RETIRED]
                        ideal_slots = attribute_predictions(
                            pending[_P_BYTE_TAGS], [b for b, _ in retired]
                        )
                        fixmap = {
                            slot: val
                            for slot, (_b, val) in zip(ideal_slots, retired)
                            if slot is not None
                        }
                        if fixmap:
                            wt = pending[_P_WTAG]
                            sq = pending[_P_SEQ]
                            for j in range(len(window) - 1, -1, -1):
                                entry = window[j]
                                if entry[0] == wt and entry[1] == sq:
                                    vals = entry[2]
                                    for slot, val in fixmap.items():
                                        if 0 <= slot < len(vals):
                                            vals[slot] = val
                                    break
                    if k + 1 < gend:
                        pending_refetch = (k + 1, gend, pending)
                        group_broken = True
                    elif (
                        next_block_pc is not None
                        and next_block_pc == block_pc
                    ):
                        reuse_next_group = pending
                        reuse_block_pc = next_block_pc
                    if group_broken:
                        break

            # ---- stats ------------------------------------------------
            uop_index += 1
            if measuring:
                s_uops += 1
                if is_last:
                    s_insts += 1
            elif uop_index >= warmup_uops:
                measuring = True
                base_cycle = last_commit

        if not group_broken:
            # BeBoPEngine.finish_group(handle, last_commit)
            for j, b in enumerate(fifo):
                if b is pending:
                    del fifo[j]
                    break
            deferred.append((last_commit + 1, pending))

        # ---- occupancy-state prune ------------------------------------
        # The cycle-indexed counters need no pruning (their memory is
        # O(final cycle), not O(entries)); only store_ready accumulates.
        if uop_index >= next_prune:
            next_prune = uop_index + _PRUNE_INTERVAL
            store_ready = {
                a: t for a, t in store_ready.items() if t > last_dispatch
            }

    stats.cycles = max(1, last_commit - base_cycle)
    stats.uops = s_uops
    stats.insts = s_insts
    stats.branches = s_branches
    stats.branch_mispredicts = s_branch_mispredicts
    stats.btb_misses = s_btb_misses
    stats.vp_eligible = s_vp_eligible
    stats.vp_predicted = s_vp_predicted
    stats.vp_used = s_vp_used
    stats.vp_used_correct = s_vp_used_correct
    stats.vp_squashes = s_vp_squashes
    stats.early_executed = s_early
    stats.late_executed = s_late
    stats.l1d_misses = memory.l1d.misses
    stats.l2_misses = memory.l2.misses
    return stats
