"""Batched multi-variant sweeps sharing one trace pass.

A Fig 6/7 geometry sweep simulates the *same* dynamic trace once per
predictor variant; everything the variants cannot influence — trace
decode, fetch-block grouping, folded branch/path history, BTB redirect
detection, TAGE/D-VTAGE index hashing — is recomputed identically N
times.  This package factors that shared front-end out:

* :mod:`repro.batch.precompute` runs the trace once and captures the
  variant-independent per-µ-op streams (flat tuples, history epochs,
  TAGE slot hashes, BTB miss bits) plus memoised D-VTAGE slot
  geometries;
* :mod:`repro.batch.runner` is the fused per-variant walk: the
  pipeline/engine/predictor inner loop specialised to the EOLE_4_60
  BeBoP configuration, consuming the precomputed streams and keeping
  its table state in per-variant views of variant-stacked
  :class:`~repro.common.tables.TableBank` storage;
* :mod:`repro.batch.dispatch` groups batchable
  :class:`~repro.exec.jobs.JobSpec` cells by shared front-end key and
  runs each group in one pass, unstacking per-variant
  :class:`~repro.pipeline.stats.SimStats` bit-identical to the serial
  path (the golden contract; enforced by ``tests/test_batch_parity``).
"""

from repro.batch.dispatch import (
    batch_group_key,
    batchable_groups,
    is_batchable,
    run_batched_group,
)
from repro.batch.precompute import precompute_front_end

__all__ = [
    "batch_group_key",
    "batchable_groups",
    "is_batchable",
    "precompute_front_end",
    "run_batched_group",
]
