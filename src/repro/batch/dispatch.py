"""Group batchable JobSpecs and run each group in one trace pass.

The scheduler (``exec/scheduler.py``) hands a flat job list here; specs
are batchable when they are BeBoP cells on the ``eole_4_60`` pipeline,
and they share a front end when (workload, uops, warmup, pipeline)
match — the grid axes of the Fig 6a/6b/7a/7b sweeps.  Each group runs
as one call to :func:`run_batched_group`:

1. the shared front end is precomputed once
   (:func:`repro.batch.precompute.precompute_front_end`), with the
   folded-history registration unioned over every variant's D-VTAGE
   geometry (FoldedHistorySet dedupes per (length, width), so the union
   is bit-identity-safe);
2. per-variant table state is allocated as variant-stacked banks
   (``make_bank(..., variants=N)``) — variants sharing a D-VTAGE bank
   shape share a stack, TAGE always shares one stack — and each variant
   gets its storage-sharing ``view``;
3. :func:`repro.batch.runner.run_fused_variant` walks each variant over
   the shared streams, reusing one memoised
   :class:`~repro.batch.precompute.DVTAGESlotGeometry` per distinct
   slot geometry.

Results come back in spec order, bit-identical to ``run_job`` per the
parity suite, so the scheduler unstacks them into the existing cache
cells (JobSpec digests are untouched — the batch is an execution
strategy, not a new cell shape).

The walk pins ``backend="python"`` for its internal table state: the
backends are bit-identical by contract (hypothesis state-parity +
golden suite) and digests exclude the backend, so a numpy-backend spec
may be satisfied by a python-state walk — ``REPRO_TABLE_BACKEND=numpy``
parity runs in CI keep that honest.
"""

from __future__ import annotations

import gc

from repro.batch.precompute import (
    DVTAGESlotGeometry,
    dvtage_fold_pairs,
    geometry_key,
    precompute_front_end,
    tage_fold_pairs,
)
from repro.batch.runner import run_fused_variant
from repro.bebop.predictor import BlockDVTAGEConfig, dvtage_bank_fields
from repro.bebop.recovery import RecoveryPolicy
from repro.branch.tage import BIMODAL_FIELDS, TAGGED_FIELDS
from repro.common.tables import make_bank
from repro.eval.runner import get_trace
from repro.pipeline.stats import SimStats


def is_batchable(spec) -> bool:
    """Can this spec run through the fused batched walk?"""
    return spec.engine[0] == "bebop" and spec.pipeline == "eole_4_60"


def batch_group_key(spec) -> tuple:
    """Shared-front-end identity: specs with equal keys share one pass."""
    return (spec.workload, spec.uops, spec.warmup, spec.pipeline)


def batchable_groups(specs) -> dict[tuple, list[int]]:
    """Indices of batchable specs, grouped by shared-front-end key.

    Only groups of two or more are returned — a singleton gains nothing
    over the serial path.
    """
    groups: dict[tuple, list[int]] = {}
    for i, spec in enumerate(specs):
        if is_batchable(spec):
            groups.setdefault(batch_group_key(spec), []).append(i)
    return {key: idxs for key, idxs in groups.items() if len(idxs) >= 2}


def build_variant_tables(variants) -> list[dict[str, list[int]]]:
    """Variant-stacked table state for a batch; one cols dict per variant.

    ``variants`` is a list of ``(BlockDVTAGEConfig, window, policy)``;
    D-VTAGE stacks are allocated per distinct bank shape, the TAGE stack
    spans all variants (its shape is fixed).
    """
    shape_members: dict[tuple, list[int]] = {}
    for v, (config, _window, _policy) in enumerate(variants):
        shape = (
            config.npred,
            config.base_entries,
            config.tagged_entries,
            config.components,
        )
        shape_members.setdefault(shape, []).append(v)
    tables: list[dict[str, list[int]] | None] = [None] * len(variants)
    for (npred, base_entries, tagged_entries, components), members in (
        shape_members.items()
    ):
        lvt_fields, vt0_fields, tagged_fields = dvtage_bank_fields(npred)
        lvt = make_bank(
            base_entries, lvt_fields, backend="python", variants=len(members)
        )
        vt0 = make_bank(
            base_entries, vt0_fields, backend="python", variants=len(members)
        )
        tagged = make_bank(
            components * tagged_entries,
            tagged_fields,
            backend="python",
            variants=len(members),
        )
        for slot, v in enumerate(members):
            lvt_view = lvt.view(slot)
            vt0_view = vt0.view(slot)
            tagged_view = tagged.view(slot)
            tables[v] = {
                "l_tag": lvt_view.col("tag"),
                "l_last": lvt_view.col("last"),
                "l_byte": lvt_view.col("byte_tags"),
                "v_strides": vt0_view.col("strides"),
                "v_conf": vt0_view.col("conf"),
                "t_tag": tagged_view.col("tag"),
                "t_strides": tagged_view.col("strides"),
                "t_conf": tagged_view.col("conf"),
                "t_useful": tagged_view.col("useful"),
                "t_ugen": tagged_view.col("useful_gen"),
            }
    bimodal = make_bank(
        4096, BIMODAL_FIELDS, backend="python", variants=len(variants)
    )
    tage = make_bank(
        12 * 1024, TAGGED_FIELDS, backend="python", variants=len(variants)
    )
    for v in range(len(variants)):
        bim_view = bimodal.view(v)
        tage_view = tage.view(v)
        tables[v].update(
            {
                "b_ctr": bim_view.col("ctr"),
                "bt_tag": tage_view.col("tag"),
                "bt_ctr": tage_view.col("ctr"),
                "bt_useful": tage_view.col("useful"),
                "bt_ugen": tage_view.col("useful_gen"),
            }
        )
    return tables


def run_batched_group(specs) -> list[SimStats]:
    """Run a shared-front-end group of batchable specs in one trace pass.

    Returns one SimStats per spec, in spec order, bit-identical to
    ``run_job(spec)`` for each.
    """
    if not specs:
        return []
    first = specs[0]
    for spec in specs:
        if not is_batchable(spec):
            raise ValueError(f"spec is not batchable: {spec!r}")
        if batch_group_key(spec) != batch_group_key(first):
            raise ValueError(
                "specs span multiple front-end groups: "
                f"{batch_group_key(spec)} != {batch_group_key(first)}"
            )
    variants = []
    for spec in specs:
        _tag, items, window, policy = spec.engine
        variants.append(
            (BlockDVTAGEConfig(**dict(items)), window, RecoveryPolicy(policy))
        )
    trace = get_trace(first.workload, first.uops)
    idx_pairs: list[tuple[int, int]] = []
    tag_pairs: list[tuple[int, int]] = []
    geo_configs: dict[tuple, BlockDVTAGEConfig] = {}
    for config, _window, _policy in variants:
        key = geometry_key(config)
        if key not in geo_configs:
            geo_configs[key] = config
            dv_idx, dv_tag = dvtage_fold_pairs(config)
            idx_pairs.extend(dv_idx)
            tag_pairs.extend(dv_tag)
    # The fused walk churns through millions of short-lived acyclic
    # temporaries; pausing the cyclic collector for the batch avoids
    # repeated full-heap scans without changing any result.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        fe = precompute_front_end(trace, idx_pairs, tag_pairs)
        geos = {
            key: DVTAGESlotGeometry(config, fe.states)
            for key, config in geo_configs.items()
        }
        tables = build_variant_tables(variants)
        results = []
        for v, (config, window, policy) in enumerate(variants):
            results.append(
                run_fused_variant(
                    fe,
                    config,
                    window,
                    policy,
                    tables[v],
                    geos[geometry_key(config)],
                    first.warmup,
                )
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return results
