"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass
class SimStats:
    """Counters collected by one :class:`~repro.pipeline.core.PipelineModel`
    run, measured over the post-warmup window.

    Ad-hoc side-channel counters belong in :mod:`repro.obs` (namespaced
    metrics on the registry), not here: the dataclass fields are the stable
    result schema that the on-disk cache serialises and equality compares.
    Namespaced metrics attach via :meth:`attach_metrics` and read back
    through :attr:`metrics`, excluded from both.
    """

    workload: str = ""
    config: str = ""
    cycles: int = 0
    uops: int = 0
    insts: int = 0
    # Branch prediction.
    branches: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    # Value prediction.
    vp_eligible: int = 0
    vp_predicted: int = 0        # predictions available (any confidence)
    vp_used: int = 0             # confident -> written to PRF
    vp_used_correct: int = 0
    vp_squashes: int = 0         # commit-time squashes on wrong used preds
    # EOLE.
    early_executed: int = 0
    late_executed: int = 0
    # Memory.
    l1d_misses: int = 0
    l2_misses: int = 0

    def __post_init__(self) -> None:
        # Non-field state: excluded from ==, repr and dataclasses.asdict,
        # so attaching metrics can never perturb cached or compared results.
        self._metrics: Mapping[str, float] | None = None

    def attach_metrics(self, snapshot: Mapping[str, float]) -> None:
        """Associate a namespaced metrics snapshot (``repro.obs``) with
        this run."""
        self._metrics = snapshot

    @property
    def metrics(self) -> Mapping[str, float]:
        """Namespaced metrics recorded for this run (empty if obs was off)."""
        return self._metrics if self._metrics is not None else {}

    @property
    def ipc(self) -> float:
        """Committed instructions (not µ-ops) per cycle."""
        return self.insts / self.cycles if self.cycles else 0.0

    @property
    def uops_per_cycle(self) -> float:
        return self.uops / self.cycles if self.cycles else 0.0

    @property
    def vp_accuracy(self) -> float:
        """Fraction of *used* predictions that were correct (paper: >99.5%
        is the target enforced by FPC confidence)."""
        return self.vp_used_correct / self.vp_used if self.vp_used else 0.0

    @property
    def vp_coverage(self) -> float:
        """Fraction of eligible µ-ops whose prediction was used."""
        return self.vp_used / self.vp_eligible if self.vp_eligible else 0.0

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        return 1000.0 * self.branch_mispredicts / self.insts if self.insts else 0.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.workload:12s} {self.config:18s} IPC={self.ipc:5.3f} "
            f"cov={self.vp_coverage:5.1%} acc={self.vp_accuracy:6.2%} "
            f"brMPKI={self.branch_mpki:5.2f} squashes={self.vp_squashes}"
        )


def speedup(with_stats: SimStats, over: SimStats) -> float:
    """Speedup of one run over another on the same workload."""
    if with_stats.workload != over.workload:
        raise ValueError(
            f"speedup across different workloads: "
            f"{with_stats.workload!r} vs {over.workload!r}"
        )
    if with_stats.ipc == 0 or over.ipc == 0:
        raise ValueError("cannot compute speedup with zero IPC")
    return with_stats.ipc / over.ipc


def gmean(values: list[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups."""
    if not values:
        raise ValueError("gmean of no values")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"gmean requires positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
