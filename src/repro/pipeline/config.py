"""Core configurations (Table I of the paper).

``BASELINE_6_60`` is the paper's reference superscalar: 4GHz-class, 8-wide
front-end, 6-issue, 60-entry IQ, 192-entry ROB, 20-cycle fetch-to-commit.
``baseline_vp_6_60()`` enables instruction- or block-based value prediction
with commit-time validation and squash recovery.  ``eole_4_60()`` models the
EOLE organisation: issue width reduced to 4, with Early Execution (ready
simple µ-ops execute in parallel with rename) and Late Execution (predicted
µ-ops bypass the OoO engine and validate at commit).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.errors import (  # noqa: F401  (re-exported API)
    ConfigError,
    require_positive,
    require_power_of_two,
)


@dataclass(frozen=True)
class CoreConfig:
    """Resource and depth parameters of the modelled core."""

    name: str = "baseline_6_60"
    # Front end.
    fetch_blocks_per_cycle: int = 2
    fetch_block_bytes: int = 16
    decode_width: int = 8
    front_end_depth: int = 15       # fetch -> dispatch, cycles
    back_end_depth: int = 5         # complete -> commit, cycles
    # Fetch-buffer + decode-queue capacity in µ-ops: fetch stalls when this
    # many fetched µ-ops have not yet dispatched (backpressure from a full
    # ROB/IQ propagates to fetch through it).
    fetch_queue_uops: int = 48
    # Out-of-order engine.
    rob_size: int = 192
    iq_size: int = 60
    lq_size: int = 72
    sq_size: int = 48
    issue_width: int = 6
    commit_width: int = 8
    # Functional units (per-cycle issue bandwidth per class).
    alu_count: int = 4
    muldiv_count: int = 1
    fp_count: int = 2
    fpmuldiv_count: int = 2
    load_ports: int = 2
    store_ports: int = 1
    div_latency: int = 25           # not pipelined
    fpdiv_latency: int = 10         # not pipelined
    # Value prediction plumbing.
    vp_enabled: bool = False
    eole: bool = False              # early + late execution, narrow issue
    free_load_immediates: bool = True   # §II-B3
    # Branch handling.
    btb_entries: int = 8192

    def __post_init__(self) -> None:
        """Reject impossible cores at construction, listing every problem.

        A zero-width or zero-capacity resource would not fail here — it
        would deadlock or divide-by-zero thousands of cycles into a
        simulation; a non-power-of-two block size would silently corrupt
        every PC-indexed structure.  All violations are raised together as
        one :class:`ConfigError`.
        """
        violations: list[str] = []
        require_positive(
            violations, self,
            "fetch_blocks_per_cycle", "fetch_block_bytes", "decode_width",
            "front_end_depth", "back_end_depth", "fetch_queue_uops",
            "rob_size", "iq_size", "lq_size", "sq_size",
            "issue_width", "commit_width",
            "alu_count", "muldiv_count", "fp_count", "fpmuldiv_count",
            "load_ports", "store_ports", "div_latency", "fpdiv_latency",
            "btb_entries",
        )
        require_power_of_two(violations, self, "fetch_block_bytes",
                             "btb_entries")
        if violations:
            raise ConfigError(self.name, violations)

    def with_(self, **changes: object) -> "CoreConfig":
        """A modified copy (configs are frozen)."""
        return dataclasses.replace(self, **changes)


#: The paper's reference 6-issue, 60-entry-IQ superscalar without VP.
BASELINE_6_60 = CoreConfig()


def baseline_vp_6_60() -> CoreConfig:
    """Baseline_VP_6_60: the reference core plus value prediction."""
    return BASELINE_6_60.with_(name="baseline_vp_6_60", vp_enabled=True)


def eole_4_60() -> CoreConfig:
    """EOLE_4_60: 4-issue EOLE pipeline with value prediction.

    With Late Execution/Validation present, fetch-to-commit is one cycle
    longer than the VP-less baseline (§V-A) — modelled by one extra
    back-end stage.
    """
    return BASELINE_6_60.with_(
        name="eole_4_60",
        issue_width=4,
        vp_enabled=True,
        eole=True,
        back_end_depth=6,
    )
