"""Trace-driven superscalar timing model.

The model walks the dynamic µ-op trace in program order, computing per µ-op
the cycle of every pipeline event under the Table I resource constraints:

``fetch``
    Up to two 16-byte blocks per cycle, over at most one taken branch;
    I-cache misses stall the front end; redirects (branch mispredictions at
    execute, BTB misses at decode, value-misprediction squashes at commit)
    set a fetch barrier.
``dispatch``
    ``front_end_depth`` cycles after the block is available, 8 µ-ops/cycle,
    bounded by ROB/IQ/LQ/SQ occupancy.
``issue/execute``
    Dependence-driven: a µ-op issues once its operands are available, an
    issue slot (``issue_width``/cycle) and a functional unit are free.
    Correctly *used* value predictions make the producer's result available
    to consumers at the producer's dispatch (the prediction is written to
    the PRF by then), which is the entire performance upside of VP.
``commit``
    In order, 8 wide, ``back_end_depth`` cycles after completion.  Value
    predictions are validated here; a wrong used prediction squashes
    everything younger (the paper's low-complexity recovery) and refetches
    from the next instruction — including the Bnew == Bflush same-block
    refetch that exercises the BeBoP recovery policies.

With ``config.eole``: µ-ops whose operands are ready at rename and that
execute in one cycle are Early Executed (no IQ/issue slot); confidently
predicted µ-ops are Late Executed (validated just before commit, never
issued), which is what lets EOLE drop the issue width from 6 to 4.

Predictor *training* is deferred to commit time via the adapters, so the
predictor never observes a result younger than the fetch being predicted.
"""

from __future__ import annotations

from collections import deque

from repro.branch.btb import BranchTargetBuffer
from repro.branch.tage import TAGEBranchPredictor
from repro.common.history import FoldedHistorySet
from repro.isa.instruction import DynMicroOp, LatencyClass
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.stats import SimStats
from repro.pipeline.vp import GroupHandle, VPAdapter
from repro.workloads.trace import Trace

#: Fixed execution latencies per FU class (loads come from the cache model).
_LATENCY = {
    LatencyClass.ALU: 1,
    LatencyClass.MUL: 3,
    LatencyClass.DIV: 25,
    LatencyClass.FP: 3,
    LatencyClass.FPMUL: 5,
    LatencyClass.FPDIV: 10,
    LatencyClass.BRANCH: 1,
    LatencyClass.NONE: 1,
    LatencyClass.MEM: 1,  # overridden by the cache model for loads
}

#: Classes that EOLE's Early Execution stage can handle (single-cycle ALU).
_EARLY_EXECUTABLE = frozenset({LatencyClass.ALU, LatencyClass.NONE})

#: µ-ops between prunes of the per-cycle occupancy dicts.  Entries behind the
#: monotone dispatch/commit fronts can never be probed again, so the prune is
#: timing-neutral; the interval only trades prune overhead against the
#: (bounded) amount of dead state carried between prunes.
_PRUNE_INTERVAL = 4096


def group_block_instances(uops: list[DynMicroOp]) -> list[tuple[int, int]]:
    """Split the trace into fetch-block instances: ``[start, end)`` runs of
    µ-ops sharing a block PC, broken after every taken branch."""
    groups: list[tuple[int, int]] = []
    start = 0
    n = len(uops)
    for i in range(n):
        uop = uops[i]
        end_here = (
            i + 1 >= n
            or (uop.is_branch and uop.branch_taken)
            or uops[i + 1].block_pc != uop.block_pc
        )
        if end_here:
            groups.append((start, i + 1))
            start = i + 1
    return groups


class PipelineModel:
    """One simulated core; ``run`` executes a trace and returns stats."""

    def __init__(
        self,
        config: CoreConfig,
        vp_adapter: VPAdapter | None = None,
        branch_predictor: TAGEBranchPredictor | None = None,
        memory: MemoryHierarchy | None = None,
    ) -> None:
        if config.vp_enabled and vp_adapter is None:
            raise ValueError(f"config {config.name!r} enables VP: pass a vp_adapter")
        self.config = config
        self.vp = vp_adapter if config.vp_enabled else None
        self.branch_predictor = (
            branch_predictor if branch_predictor is not None else TAGEBranchPredictor()
        )
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.memory = memory if memory is not None else MemoryHierarchy()
        # One folded-history register set shared by the branch predictor and
        # the value predictor: every (history length, width) pair either will
        # index with is registered up front so each pushed bit updates all
        # folds in O(1) and fetch-time snapshots carry them precomputed.
        idx_pairs: list[tuple[int, int]] = []
        tag_pairs: list[tuple[int, int]] = []
        for source in (self.branch_predictor, self.vp):
            geometry = getattr(source, "fold_geometry", None)
            if geometry is not None:
                idx, tag = geometry()
                idx_pairs.extend(idx)
                tag_pairs.extend(tag)
        self.hists = FoldedHistorySet(640, 64, idx_pairs, tag_pairs)
        self.bhist = self.hists.branch
        self.phist = self.hists.path
        #: Peak summed size of the per-cycle occupancy dicts, sampled at
        #: every prune during :meth:`run` (diagnostics only — never feeds
        #: back into timing or :class:`SimStats`).
        self.debug_state_peak = 0

    # -- the main walk -------------------------------------------------------

    def run(
        self,
        trace: Trace,
        warmup_uops: int = 0,
        timeline: list | None = None,
        cpi: "CPIStackCollector | None" = None,
        recorder: "TimelineRecorder | None" = None,
        attrib: "PCAttribution | None" = None,
        banks: "BankTelemetry | None" = None,
    ) -> SimStats:
        """Simulate a trace; statistics cover µ-ops after ``warmup_uops``.

        When ``timeline`` is a list, one ``(seq, pc, dispatch, complete,
        commit)`` tuple per processed µ-op is appended — used by tests and
        examples to inspect the schedule directly.

        When ``cpi`` is a :class:`repro.obs.CPIStackCollector`, every
        advance of the commit front over the measured window is attributed
        to a cause (see :mod:`repro.obs.cpi`); the collector is passive, so
        the returned stats are bit-identical with and without it.

        When ``recorder`` is a :class:`repro.obs.TimelineRecorder`, every
        processed µ-op (warmup and re-fetched instances included) gets a
        full per-stage timeline plus, for value-predicted µ-ops, a
        provenance record filled in by the VP adapter and finalised here at
        commit (see :mod:`repro.obs.timeline`).  Also passive: stats are
        bit-identical with and without it.

        When ``attrib`` is a :class:`repro.obs.PCAttribution`, every
        recovery cycle the CPI stack would charge to ``vp_squash`` or
        ``branch_redirect`` is additionally charged to the static PC of
        the mispredicting µ-op: the cause-propagation chain below is
        shadowed by an owning-PC chain under the same gating, so per-PC
        cycles sum exactly to those two stack components.  Passive like
        ``cpi``.

        When ``banks`` is a :class:`repro.obs.BankTelemetry`, the VP
        adapter's ``table_banks()`` hook (if any) is attached and the
        banks are snapshotted every ``banks.interval`` µ-ops plus once at
        the end of the run.  Read-only, so also stats-passive.
        """
        cfg = self.config
        uops = trace.uops
        stats = SimStats(workload=trace.name, config=cfg.name)
        if not uops:
            return stats

        # Per-µop timeline tracing (see repro.obs.timeline).  `rec` gates
        # every site like `track` does; adapters that can attribute
        # predictions to their producing component opt in via the
        # set_provenance hook and fill GroupHandle.prov at fetch.
        rec = recorder
        apc = attrib is not None
        if self.vp is not None:
            # Attribution wants the providing component per attempt, so it
            # turns provenance on even without a recorder.
            set_prov = getattr(self.vp, "set_provenance", None)
            if set_prov is not None:
                set_prov(rec is not None or apc)
            if banks is not None:
                bank_source = getattr(self.vp, "table_banks", None)
                if bank_source is not None:
                    banks.attach(bank_source())
        bank_next = banks.interval if banks is not None else 0

        groups = group_block_instances(uops)
        # --- machine state ---------------------------------------------------
        fetch_cycle = 0
        blocks_in_cycle = 0
        taken_in_cycle = 0
        next_fetch_min = 0
        last_dispatch = 0
        dispatch_cnt: dict[int, int] = {}
        issue_cnt: dict[int, int] = {}
        fu_cnt: dict[tuple[int, LatencyClass], int] = {}
        div_free = 0            # the single MulDiv unit, not pipelined for DIV
        fpdiv_free = 0          # FPMulDiv units, not pipelined for FPDIV
        last_commit = 0
        commit_cnt: dict[int, int] = {}
        # Per-µ-op event series are only ever read a fixed distance back
        # (the structural occupancy bounds index exactly rob/fq/iq/lq/sq
        # entries behind the append point), so fixed-size ring buffers
        # replace the append-only lists; the counters stand in for the
        # unbounded len().  Once a counter reaches the capacity, the old
        # ``series[n - size]`` read is exactly ``ring[0]``.
        rob_commits: deque[int] = deque(maxlen=cfg.rob_size)
        dispatch_cycles: deque[int] = deque(maxlen=cfg.fetch_queue_uops)
        iq_issues: deque[int] = deque(maxlen=cfg.iq_size)
        lq_completes: deque[int] = deque(maxlen=cfg.lq_size)
        sq_completes: deque[int] = deque(maxlen=cfg.sq_size)
        rob_count = 0           # µ-ops committed-scheduled (old len(rob_commits))
        fq_count = 0            # µ-ops dispatched (old len(dispatch_cycles))
        iq_count = 0            # IQ-entering µ-ops (old len(iq_issues))
        lq_count = 0
        sq_count = 0
        reg_avail: dict[int, int] = {}
        store_ready: dict[int, int] = {}
        deferred_bp: deque = deque()    # (apply_cycle, pc, hist, taken, meta)
        next_prune = _PRUNE_INTERVAL
        state_peak = 0

        # FU issue-bandwidth pools per class.
        fu_pool = {
            LatencyClass.ALU: cfg.alu_count,
            LatencyClass.BRANCH: cfg.alu_count,
            LatencyClass.MUL: cfg.muldiv_count,
            LatencyClass.FP: cfg.fp_count,
            LatencyClass.FPMUL: cfg.fpmuldiv_count,
            LatencyClass.NONE: cfg.alu_count,
        }

        # CPI-stack attribution (see repro.obs.cpi).  `track` gates every
        # instrumentation block so the disabled path costs one boolean
        # check per site; none of these variables feed back into timing.
        # Per-PC attribution (repro.obs.attrib) shadows each cause variable
        # with the static PC that owns it, updated under exactly the same
        # conditions, so whenever a cause variable holds "vp_squash" or
        # "branch_redirect" its *_pc twin holds the mispredicting µ-op's PC.
        track = cpi is not None or apc
        redirect_cause = "base"         # cause of the current fetch barrier
        fe_cause = "base"               # cause of the current block's fetch time
        disp_cause = "base"
        exec_cause = "base"
        reg_cause: dict[int, str] = {}  # why each register's value is late
        redirect_pc = -1
        fe_pc = -1
        disp_pc = -1
        exec_pc = -1
        reg_pc: dict[int, int] = {}
        l1d_hit_lat = self.memory.l1d.latency

        # Warmup bookkeeping.
        measuring = warmup_uops == 0
        base_cycle = 0
        uop_index = 0

        def start_measuring() -> None:
            nonlocal measuring, base_cycle
            measuring = True
            base_cycle = last_commit

        def apply_deferred_bp(cycle: int) -> None:
            bp = self.branch_predictor
            while deferred_bp and deferred_bp[0][0] <= cycle:
                _, pc, hist, taken, meta = deferred_bp.popleft()
                bp.train(pc, hist, taken, meta)

        gi = 0
        pending_refetch: tuple[list[DynMicroOp], GroupHandle] | None = None
        reuse_next_group: GroupHandle | None = None
        reuse_block_pc = -1

        while gi < len(groups) or pending_refetch is not None:
            if pending_refetch is not None:
                guops, reuse = pending_refetch
                pending_refetch = None
            else:
                start, end = groups[gi]
                gi += 1
                guops = uops[start:end]
                reuse = None
                if reuse_next_group is not None:
                    if guops[0].block_pc == reuse_block_pc:
                        reuse = reuse_next_group
                    reuse_next_group = None

            block_pc = guops[0].block_pc

            # ---- fetch ------------------------------------------------------
            c = max(fetch_cycle, next_fetch_min)
            # Fetch-queue backpressure: this block's first µ-op can only be
            # fetched once the µ-op fetch_queue_uops earlier has dispatched.
            if fq_count >= cfg.fetch_queue_uops:
                c = max(c, dispatch_cycles[0])
            if track:
                # The block's fetch is redirect-bound when the fetch
                # barrier is what it waited on; fetch-queue backpressure
                # and plain fetch flow are baseline behaviour.
                if next_fetch_min > fetch_cycle and next_fetch_min >= c:
                    fe_cause = redirect_cause
                    fe_pc = redirect_pc
                else:
                    fe_cause = "base"
                    fe_pc = -1
            if c > fetch_cycle:
                fetch_cycle = c
                blocks_in_cycle = 0
                taken_in_cycle = 0
            if blocks_in_cycle >= cfg.fetch_blocks_per_cycle:
                fetch_cycle += 1
                blocks_in_cycle = 0
                taken_in_cycle = 0
            if rec is not None:
                # Fetch start of the block, before any I-cache stall.
                block_fetch = fetch_cycle
            ifetch_lat = self.memory.ifetch_latency(block_pc)
            block_avail = fetch_cycle + ifetch_lat - 1
            blocks_in_cycle += 1
            if ifetch_lat > 1:
                # An I-cache miss stalls fetch until the block arrives.
                fetch_cycle = block_avail
                blocks_in_cycle = 1
                taken_in_cycle = 0
                fe_cause = "icache"
                fe_pc = -1

            # ---- value prediction (block granularity) -----------------------
            hist = self.hists.state()
            handle: GroupHandle | None = None
            if self.vp is not None:
                handle = self.vp.fetch_group(guops, fetch_cycle, hist, reuse)

            group_broken = False
            for k, uop in enumerate(guops):
                pred = handle.preds[k] if handle is not None else None
                predicted_used = pred is not None and pred.confident
                eligible = uop.is_vp_eligible

                # ---- dispatch ------------------------------------------------
                d = max(block_avail + cfg.front_end_depth, last_dispatch)
                while dispatch_cnt.get(d, 0) >= cfg.decode_width:
                    d += 1
                rob_full = rob_count >= cfg.rob_size
                if rob_full:
                    d = max(d, rob_commits[0] + 1)
                if uop.is_load and lq_count >= cfg.lq_size:
                    d = max(d, lq_completes[0])
                if uop.is_store and sq_count >= cfg.sq_size:
                    d = max(d, sq_completes[0])

                srcs_ready = 0
                for src in uop.srcs:
                    t = reg_avail.get(src, 0)
                    if t > srcs_ready:
                        srcs_ready = t

                free_li = (
                    cfg.free_load_immediates and uop.is_load_imm and not cfg.eole
                )
                # Early Execution is a single stage in parallel with rename
                # (§V-A): operands must already be in the PRF *before* this
                # µ-op dispatches, so same-cycle chains of early-executed
                # µ-ops are not allowed (strict <).
                eole_early = (
                    cfg.eole
                    and uop.latency_class in _EARLY_EXECUTABLE
                    and not uop.is_load
                    and not uop.is_store
                    and srcs_ready < d
                )
                eole_late = (
                    cfg.eole
                    and predicted_used
                    and uop.latency_class in _EARLY_EXECUTABLE
                    and not uop.is_load
                    and not uop.is_store
                )
                if cfg.eole and uop.is_load_imm:
                    eole_early = True

                bypass_ooo = free_li or eole_early or eole_late
                iq_full = iq_count >= cfg.iq_size
                if not bypass_ooo:
                    if iq_full:
                        d = max(d, iq_issues[0])
                    while dispatch_cnt.get(d, 0) >= cfg.decode_width:
                        d += 1
                if track:
                    # Which constraint set the dispatch cycle?  The largest
                    # candidate wins; occupancy bounds win ties because a
                    # full backend is the scarcer resource.  (Decode-width
                    # bumps past the max keep the winner's cause.)
                    cand = block_avail + cfg.front_end_depth
                    disp_cause = fe_cause
                    disp_pc = fe_pc
                    if last_dispatch > cand:
                        cand, disp_cause, disp_pc = last_dispatch, "base", -1
                    if rob_full:
                        t = rob_commits[0] + 1
                        if t >= cand:
                            cand, disp_cause, disp_pc = t, "backend_full", -1
                    if uop.is_load and lq_count >= cfg.lq_size:
                        t = lq_completes[0]
                        if t >= cand:
                            cand, disp_cause, disp_pc = t, "backend_full", -1
                    if uop.is_store and sq_count >= cfg.sq_size:
                        t = sq_completes[0]
                        if t >= cand:
                            cand, disp_cause, disp_pc = t, "backend_full", -1
                    if not bypass_ooo and iq_full:
                        t = iq_issues[0]
                        if t >= cand:
                            cand, disp_cause, disp_pc = t, "backend_full", -1
                dispatch_cnt[d] = dispatch_cnt.get(d, 0) + 1
                last_dispatch = d
                dispatch_cycles.append(d)
                fq_count += 1

                # ---- execute -------------------------------------------------
                if free_li or eole_early:
                    complete = d
                    if measuring and eole_early:
                        stats.early_executed += 1
                elif eole_late:
                    # Validated/executed just before commit; consumers read
                    # the predicted value from the PRF at dispatch.
                    complete = d
                    if measuring:
                        stats.late_executed += 1
                else:
                    ready = max(d + 1, srcs_ready)
                    lat_class = uop.latency_class
                    if uop.is_load and uop.mem_addr is not None:
                        t = store_ready.get(uop.mem_addr, 0)
                        if t > ready:
                            ready = t
                    c2 = ready
                    if lat_class is LatencyClass.DIV:
                        c2 = max(c2, div_free)
                        while issue_cnt.get(c2, 0) >= cfg.issue_width:
                            c2 += 1
                        lat = _LATENCY[lat_class]
                        div_free = c2 + lat
                    elif lat_class is LatencyClass.FPDIV:
                        c2 = max(c2, fpdiv_free)
                        while issue_cnt.get(c2, 0) >= cfg.issue_width:
                            c2 += 1
                        lat = _LATENCY[lat_class]
                        fpdiv_free = c2 + lat
                    elif lat_class is LatencyClass.MEM:
                        ports = cfg.load_ports if uop.is_load else cfg.store_ports
                        while (
                            issue_cnt.get(c2, 0) >= cfg.issue_width
                            or fu_cnt.get((c2, lat_class), 0) >= ports
                        ):
                            c2 += 1
                        fu_cnt[(c2, lat_class)] = fu_cnt.get((c2, lat_class), 0) + 1
                        if uop.is_load:
                            lat = self.memory.load_latency(uop.mem_addr or 0)
                        else:
                            lat = 1
                    else:
                        pool = fu_pool[lat_class]
                        while (
                            issue_cnt.get(c2, 0) >= cfg.issue_width
                            or fu_cnt.get((c2, lat_class), 0) >= pool
                        ):
                            c2 += 1
                        fu_cnt[(c2, lat_class)] = fu_cnt.get((c2, lat_class), 0) + 1
                        lat = _LATENCY[lat_class]
                    issue_cnt[c2] = issue_cnt.get(c2, 0) + 1
                    iq_issues.append(c2)
                    iq_count += 1
                    complete = c2 + lat

                if track:
                    if bypass_ooo:
                        exec_cause = disp_cause
                        exec_pc = disp_pc
                    else:
                        # Dominant stall component behind `complete`:
                        # operand wait (inheriting the producer's cause),
                        # issue/FU contention, or execution latency.
                        dep_wait = ready - (d + 1)
                        dep_cause = "base"
                        dep_pc = -1
                        if dep_wait > 0:
                            if (
                                uop.is_load
                                and uop.mem_addr is not None
                                and ready > srcs_ready
                            ):
                                dep_cause = "memory"  # store-forward wait
                            else:
                                smax = 0
                                for src in uop.srcs:
                                    t = reg_avail.get(src, 0)
                                    if t > smax:
                                        smax = t
                                        dep_cause = reg_cause.get(src, "base")
                                        dep_pc = reg_pc.get(src, -1)
                        cont_wait = c2 - ready
                        cont_cause = "base"
                        if cont_wait > 0:
                            if lat_class is LatencyClass.MEM:
                                limit = (
                                    cfg.load_ports if uop.is_load
                                    else cfg.store_ports
                                )
                                if fu_cnt.get((c2 - 1, lat_class), 0) >= limit:
                                    cont_cause = "fu"
                            elif (
                                lat_class is LatencyClass.DIV
                                or lat_class is LatencyClass.FPDIV
                            ):
                                # Bumps past `ready` are issue-width; the
                                # max() against the busy unit is the FU.
                                if issue_cnt.get(c2 - 1, 0) < cfg.issue_width:
                                    cont_cause = "fu"
                            elif (
                                fu_cnt.get((c2 - 1, lat_class), 0)
                                >= fu_pool[lat_class]
                            ):
                                cont_cause = "fu"
                        if uop.is_load:
                            lat_cause = (
                                "memory" if lat > l1d_hit_lat else "base"
                            )
                        else:
                            lat_cause = "fu" if lat > 1 else "base"
                        exec_cause = disp_cause
                        exec_pc = disp_pc
                        w = 0
                        if dep_wait > w:
                            w, exec_cause, exec_pc = dep_wait, dep_cause, dep_pc
                        if cont_wait > w:
                            w, exec_cause, exec_pc = cont_wait, cont_cause, -1
                        if lat - 1 > w:
                            w, exec_cause, exec_pc = lat - 1, lat_cause, -1

                if uop.is_load:
                    lq_completes.append(complete)
                    lq_count += 1
                if uop.is_store:
                    sq_completes.append(complete)
                    sq_count += 1
                    if uop.mem_addr is not None:
                        store_ready[uop.mem_addr] = complete

                # ---- destination availability --------------------------------
                if uop.dest is not None:
                    if predicted_used or free_li or (cfg.eole and uop.is_load_imm):
                        reg_avail[uop.dest] = d
                    else:
                        reg_avail[uop.dest] = complete
                    if track:
                        reg_cause[uop.dest] = exec_cause
                        reg_pc[uop.dest] = exec_pc

                if handle is not None and uop.is_vp_eligible:
                    self.vp.result_uop(handle, k, uop, complete)

                # ---- branches -------------------------------------------------
                mispredicted_branch = False
                if uop.is_branch:
                    if uop.is_cond_branch:
                        apply_deferred_bp(fetch_cycle)
                        bp_hist = self.hists.state()
                        pred_taken, bmeta = self.branch_predictor.predict(
                            uop.pc, bp_hist
                        )
                        mispredicted_branch = pred_taken != uop.branch_taken
                        if measuring:
                            stats.branches += 1
                    btb_miss = False
                    if uop.branch_taken:
                        target = self.btb.lookup(uop.pc)
                        if target != uop.branch_target:
                            btb_miss = True
                            self.btb.install(uop.pc, uop.branch_target)
                    if uop.is_cond_branch:
                        self.hists.push_outcome(uop.branch_taken)
                    if uop.branch_taken:
                        self.hists.push_path(uop.branch_target)

                # ---- commit ----------------------------------------------------
                cc = max(complete + cfg.back_end_depth, last_commit)
                while commit_cnt.get(cc, 0) >= cfg.commit_width:
                    cc += 1
                commit_cnt[cc] = commit_cnt.get(cc, 0) + 1
                if track and measuring and cc > last_commit:
                    # Commit-front advance: `stats.cycles` is exactly the
                    # sum of these deltas over the measured window, so
                    # attributing each delta once keeps the stack exact.
                    cause = (
                        exec_cause
                        if complete + cfg.back_end_depth > last_commit
                        else "base"         # pure commit-bandwidth bumps
                    )
                    if cpi is not None:
                        cpi.account(cause, cc - last_commit)
                    if apc and (
                        cause == "vp_squash" or cause == "branch_redirect"
                    ):
                        # Same delta, charged to the owning static PC —
                        # per-PC sums equal the two stack components.
                        attrib.account(exec_pc, cause, cc - last_commit)
                last_commit = cc
                rob_commits.append(cc)
                rob_count += 1

                if uop.is_cond_branch:
                    deferred_bp.append(
                        (cc + 1, uop.pc, bp_hist, uop.branch_taken, bmeta)
                    )
                    if apc and measuring:
                        attrib.branch(uop.pc, mispredicted_branch)
                    if mispredicted_branch:
                        if measuring:
                            stats.branch_mispredicts += 1
                        if rec is not None:
                            rec.instant(
                                "branch_redirect", complete + 1,
                                seq=uop.seq, pc=uop.pc,
                            )
                        if complete + 1 > next_fetch_min:
                            next_fetch_min = complete + 1
                            redirect_cause = "branch_redirect"
                            redirect_pc = uop.pc
                        if self.vp is not None:
                            self.vp.branch_squash(uop.seq, complete)
                elif uop.is_branch and uop.branch_taken:
                    if btb_miss:
                        if measuring:
                            stats.btb_misses += 1
                        if block_avail + 2 > next_fetch_min:
                            next_fetch_min = block_avail + 2
                            redirect_cause = "btb_redirect"
                            redirect_pc = uop.pc

                if timeline is not None:
                    timeline.append((uop.seq, uop.pc, d, complete, cc))
                if rec is not None:
                    prov = (
                        handle.prov[k]
                        if handle is not None and handle.prov is not None
                        else None
                    )
                    if prov is not None:
                        prov.used = predicted_used
                        # Final verdict; the recorder keeps the reference,
                        # so exports after the run see it.
                        if not prov.tag_match:
                            pass            # stays "no_prediction"
                        elif uop.value is None:
                            prov.verdict = "unknown"
                        elif pred.value == uop.value:
                            prov.verdict = (
                                "correct" if predicted_used
                                else "correct_unused"
                            )
                        else:
                            prov.verdict = (
                                "squash" if predicted_used
                                else "incorrect_unused"
                            )
                    rec.record_uop(
                        uop.seq, uop.pc, block_pc,
                        block_fetch, block_avail, d,
                        d if bypass_ooo else c2,
                        complete, cc, prov,
                    )

                # ---- VP validation at commit -----------------------------------
                if handle is not None:
                    self.vp.commit_uop(handle, k, uop, cc)
                if measuring and eligible:
                    stats.vp_eligible += 1
                    if pred is not None:
                        stats.vp_predicted += 1
                        if apc:
                            a_prov = (
                                handle.prov[k]
                                if handle is not None
                                and handle.prov is not None
                                else None
                            )
                            attrib.vp_attempt(
                                uop.pc,
                                a_prov.provider if a_prov is not None else -1,
                                predicted_used,
                            )
                if predicted_used and eligible and uop.value is not None:
                    correct = pred.value == uop.value
                    if measuring:
                        stats.vp_used += 1
                        if correct:
                            stats.vp_used_correct += 1
                    if not correct:
                        # Commit-time squash: everything younger refetches.
                        if measuring:
                            stats.vp_squashes += 1
                            if apc:
                                attrib.vp_squash(uop.pc)
                        if rec is not None:
                            # Cost = result computed → refetch barrier: the
                            # latency of detecting the misprediction at
                            # commit rather than repairing at execute.
                            rec.squash(
                                uop.seq, uop.pc, cc, cc + 1 - complete,
                                prov.policy if prov is not None else "",
                            )
                        reg_avail[uop.dest] = cc
                        if track:
                            reg_cause[uop.dest] = "vp_squash"
                            reg_pc[uop.dest] = uop.pc
                        if cc + 1 > next_fetch_min:
                            next_fetch_min = cc + 1
                            redirect_cause = "vp_squash"
                            redirect_pc = uop.pc
                        remainder = guops[k + 1:]
                        if remainder:
                            next_block_pc = remainder[0].block_pc
                        elif gi < len(groups):
                            next_block_pc = uops[groups[gi][0]].block_pc
                        else:
                            next_block_pc = None
                        if self.vp is not None:
                            self.vp.vp_squash(handle, uop.seq, next_block_pc, cc)
                        if remainder:
                            # Same-block refetch: the Bnew == Bflush case.
                            pending_refetch = (remainder, handle)
                            group_broken = True
                        elif (
                            next_block_pc is not None
                            and next_block_pc == uop.block_pc
                        ):
                            reuse_next_group = handle
                            reuse_block_pc = next_block_pc
                        if group_broken:
                            break

                # ---- stats -----------------------------------------------------
                uop_index += 1
                if measuring:
                    stats.uops += 1
                    if uop.is_last_uop:
                        stats.insts += 1
                elif uop_index >= warmup_uops:
                    start_measuring()

            if handle is not None and not group_broken:
                self.vp.finish_group(handle, last_commit)

            # ---- bank-telemetry cadence -------------------------------------
            # Group-granular check: one `is None` test per fetch group when
            # disabled, and sampling reads bank state without touching it.
            if banks is not None and uop_index >= bank_next:
                banks.sample(uop_index)
                bank_next = uop_index + banks.interval

            # ---- occupancy-state prune --------------------------------------
            # The dispatch and commit fronts are monotone and every probe of
            # the occupancy dicts happens at or ahead of them, so entries
            # behind the fronts are dead; likewise a store's forwarding
            # window closed once the dispatch front passed its completion.
            # Dropping them periodically keeps peak state bounded by the
            # live window plus one prune interval, independent of trace
            # length, without changing any timing decision.
            if uop_index >= next_prune:
                next_prune = uop_index + _PRUNE_INTERVAL
                size = (
                    len(dispatch_cnt) + len(issue_cnt) + len(fu_cnt)
                    + len(commit_cnt) + len(store_ready)
                )
                if size > state_peak:
                    state_peak = size
                dispatch_cnt = {
                    k: v for k, v in dispatch_cnt.items() if k >= last_dispatch
                }
                issue_cnt = {
                    k: v for k, v in issue_cnt.items() if k >= last_dispatch
                }
                fu_cnt = {
                    k: v for k, v in fu_cnt.items() if k[0] >= last_dispatch
                }
                commit_cnt = {
                    k: v for k, v in commit_cnt.items() if k >= last_commit
                }
                store_ready = {
                    a: t for a, t in store_ready.items() if t > last_dispatch
                }

        size = (
            len(dispatch_cnt) + len(issue_cnt) + len(fu_cnt)
            + len(commit_cnt) + len(store_ready)
        )
        self.debug_state_peak = max(state_peak, size)
        stats.cycles = max(1, last_commit - base_cycle)
        stats.l1d_misses = self.memory.l1d.misses
        stats.l2_misses = self.memory.l2.misses
        if cpi is not None:
            cpi.finish(stats)
        if attrib is not None:
            attrib.finish(stats)
        if banks is not None:
            banks.sample(uop_index, final=True)
        return stats
