"""Value-prediction adapters between the pipeline and the predictors.

The timing model is agnostic of predictor organisation: it talks to an
adapter object once per fetched block instance and once per committed µ-op.
Two adapters exist:

* :class:`InstructionVPAdapter` — one prediction per µ-op, indexed by
  PC ⊕ µ-op-index (the paper's baseline VP of §V-B, used in Fig 5a/5b);
* :class:`repro.bebop.engine.BeBoPEngine` — block-based prediction with the
  speculative window, FIFO update queue and recovery policies.

Both defer predictor *training* to the commit cycle of the producing µ-op:
the trace is walked µ-op by µ-op, so without deferral a predictor would see
updates from instructions that are architecturally younger than the fetch
being predicted.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from repro.isa.instruction import DynMicroOp
from repro.obs.timeline import Provenance
from repro.predictors.base import HistoryState, Prediction, ValuePredictor


class PredUse:
    """A per-µ-op prediction as the pipeline sees it."""

    __slots__ = ("value", "confident", "slot", "meta")

    def __init__(
        self, value: int, confident: bool, slot: int = -1, meta: object = None
    ) -> None:
        self.value = value
        self.confident = confident
        self.slot = slot          # BeBoP prediction slot, -1 otherwise
        self.meta = meta


class GroupHandle:
    """Prediction context of one fetched block instance."""

    __slots__ = ("preds", "hist", "ctx", "prov")

    def __init__(
        self,
        preds: list[PredUse | None],
        hist: HistoryState,
        ctx: object = None,
        prov: list[Provenance | None] | None = None,
    ) -> None:
        self.preds = preds        # parallel to the group's µ-ops
        self.hist = hist
        self.ctx = ctx            # adapter-private (e.g. the pending block)
        self.prov = prov          # timeline provenance, parallel to preds


class VPAdapter(Protocol):
    """What the pipeline requires of a value-prediction organisation."""

    def fetch_group(
        self,
        uops: list[DynMicroOp],
        cycle: int,
        hist: HistoryState,
        reuse: GroupHandle | None = None,
    ) -> GroupHandle:
        """Predict for a fetched block instance.  ``reuse`` is the handle of
        the flushed instance when refetching the same block after a value
        misprediction (the Bnew == Bflush case of §IV-A)."""
        ...

    def fold_geometry(
        self,
    ) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
        """(idx_pairs, tag_pairs) the underlying predictor indexes with."""
        ...

    def storage_backend(self) -> str:
        """Name of the :mod:`repro.common.tables` backend holding the
        predictor's table state (``python`` or ``numpy``)."""
        ...

    def result_uop(
        self, handle: GroupHandle, pos: int, uop: DynMicroOp, complete_cycle: int
    ) -> None:
        """A µ-op's result finished computing (writeback)."""
        ...

    def commit_uop(
        self, handle: GroupHandle, pos: int, uop: DynMicroOp, cycle: int
    ) -> None:
        """A µ-op of the group committed (actual value is ``uop.value``)."""
        ...

    def finish_group(self, handle: GroupHandle, cycle: int) -> None:
        """All µ-ops of the instance committed: release/schedule training."""
        ...

    def vp_squash(
        self, handle: GroupHandle, flush_seq: int, next_block_pc: int | None,
        cycle: int
    ) -> None:
        """Commit-time squash triggered by a wrong used prediction."""
        ...

    def branch_squash(self, flush_seq: int, cycle: int) -> None:
        """Squash from a branch misprediction."""
        ...


class InstructionVPAdapter:
    """Instruction-based VP: the predictor of §V-B without BeBoP."""

    def __init__(self, predictor: ValuePredictor) -> None:
        self.predictor = predictor
        self._prov = False        # fill GroupHandle.prov for the recorder
        # (apply_cycle, pc, uop_index, hist, actual, prediction) in commit
        # order; applied lazily before later predictions.
        self._deferred: deque[
            tuple[int, int, int, HistoryState, int, Prediction | None]
        ] = deque()

    def set_provenance(self, enabled: bool) -> None:
        """Toggle provenance collection (called by the pipeline when a
        :class:`~repro.obs.timeline.TimelineRecorder` rides the run)."""
        self._prov = enabled

    def fold_geometry(
        self,
    ) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
        return self.predictor.fold_geometry()

    def storage_backend(self) -> str:
        return getattr(self.predictor, "table_backend", "python")

    def _apply_until(self, cycle: int) -> None:
        q = self._deferred
        predictor = self.predictor
        while q and q[0][0] <= cycle:
            _, pc, uop_index, hist, actual, prediction = q.popleft()
            predictor.train(pc, uop_index, hist, actual, prediction)

    def flush_training(self) -> None:
        """Apply all deferred updates (end of simulation)."""
        self._apply_until(1 << 62)

    def fetch_group(
        self,
        uops: list[DynMicroOp],
        cycle: int,
        hist: HistoryState,
        reuse: GroupHandle | None = None,
    ) -> GroupHandle:
        self._apply_until(cycle)
        preds: list[PredUse | None] = []
        provs: list[Provenance | None] | None = [] if self._prov else None
        for uop in uops:
            if not uop.is_vp_eligible:
                preds.append(None)
                if provs is not None:
                    provs.append(None)
                continue
            p = self.predictor.predict(uop.pc, uop.uop_index, hist)
            if p is None:
                preds.append(None)
                if provs is not None:
                    provs.append(None)
            else:
                preds.append(PredUse(p.value, p.confident, meta=p))
                if provs is not None:
                    provs.append(Provenance(
                        provider=p.provider,
                        conf=p.conf,
                        source="inst",
                        value=p.value,
                        confident=p.confident,
                    ))
        return GroupHandle(preds, hist, prov=provs)

    def result_uop(
        self, handle: GroupHandle, pos: int, uop: DynMicroOp, complete_cycle: int
    ) -> None:
        """Writeback corrections only matter for the block-based window;
        the instruction-based speculative history is instance-counted."""
        return None

    def commit_uop(
        self, handle: GroupHandle, pos: int, uop: DynMicroOp, cycle: int
    ) -> None:
        if not uop.is_vp_eligible or uop.value is None:
            return
        pred = handle.preds[pos]
        prediction = pred.meta if pred is not None else None
        self._deferred.append(
            (cycle + 1, uop.pc, uop.uop_index, handle.hist, uop.value, prediction)
        )

    def finish_group(self, handle: GroupHandle, cycle: int) -> None:
        return None

    def _surviving_counts(self) -> dict[tuple[int, int], int]:
        """Older-than-flush instances still awaiting training.

        Everything younger than the flush point never reached this adapter
        (trace processing is in program order), so the deferred-training
        queue is exactly the set of surviving in-flight instances.
        """
        counts: dict[tuple[int, int], int] = {}
        for _, pc, uop_index, _hist, _actual, _pred in self._deferred:
            key = (pc, uop_index)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def vp_squash(
        self,
        handle: GroupHandle,
        flush_seq: int,
        next_block_pc: int | None,
        cycle: int,
    ) -> None:
        # Squashed speculative chains die; surviving in-flight instances
        # are restored from the checkpoint (paper §IV).
        self.predictor.squash(self._surviving_counts())

    def branch_squash(self, flush_seq: int, cycle: int) -> None:
        self.predictor.squash(self._surviving_counts())
