"""Cycle-approximate superscalar pipeline timing model.

This is the substitution for the paper's gem5 setup (DESIGN.md §2): a
trace-driven timing model that walks the dynamic µ-op trace in program order
and computes fetch/dispatch/issue/complete/commit timestamps under the
Table I resource constraints — fetch-block bandwidth, front-end width and
depth, ROB/IQ/LSQ occupancy, issue width, functional-unit pools, cache and
DRAM latencies, branch- and value-misprediction squashes.

Entry points:

* :class:`~repro.pipeline.config.CoreConfig` with the named configurations
  ``BASELINE_6_60``, ``BASELINE_VP_6_60``, ``EOLE_4_60``;
* :class:`~repro.pipeline.core.PipelineModel` — ``run(trace)`` returns a
  :class:`~repro.pipeline.stats.SimStats` with IPC and predictor statistics.
"""

from repro.pipeline.config import (
    BASELINE_6_60,
    ConfigError,
    CoreConfig,
    baseline_vp_6_60,
    eole_4_60,
)
from repro.pipeline.core import PipelineModel
from repro.pipeline.stats import SimStats

__all__ = [
    "ConfigError",
    "CoreConfig",
    "BASELINE_6_60",
    "baseline_vp_6_60",
    "eole_4_60",
    "PipelineModel",
    "SimStats",
]
