"""Cache hierarchy and DRAM latency model (Table I).

Set-associative LRU caches: L1I 8-way 32KB (1 cycle), L1D 8-way 32KB
(4 cycles), unified L2 16-way 1MB (12 cycles) with a degree-8 stream
prefetcher, and DDR3-like main memory with a 75..185-cycle read latency
picked by row-buffer locality (same DRAM row as the previous access ->
minimum latency, otherwise a deterministic mid/max pick).
"""

from __future__ import annotations

LINE_BYTES = 64
_LINE_SHIFT = 6


class Cache:
    """A set-associative cache with LRU replacement.

    Tracks only presence (tags), not data — the timing model needs hit/miss
    decisions, not contents.
    """

    def __init__(self, size_bytes: int, ways: int, latency: int, name: str = "") -> None:
        lines = size_bytes // LINE_BYTES
        if lines % ways:
            raise ValueError(f"{lines} lines not divisible by {ways} ways")
        self.sets = lines // ways
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError(f"set count must be a power of two, got {self.sets}")
        self.size_bytes = size_bytes
        self.ways = ways
        self.latency = latency
        self.name = name
        self._index_mask = self.sets - 1
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def _set_and_tag(self, addr: int) -> tuple[list[int], int]:
        line = addr >> _LINE_SHIFT
        return self._sets[line & self._index_mask], line >> self.sets.bit_length() - 1

    def access(self, addr: int) -> bool:
        """Access (and allocate on miss). Returns True on hit."""
        ways, tag = self._set_and_tag(addr)
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.ways:
            ways.pop(0)
        ways.append(tag)
        return False

    def probe(self, addr: int) -> bool:
        """Check presence without allocating or touching LRU state."""
        ways, tag = self._set_and_tag(addr)
        return tag in ways

    def fill(self, addr: int) -> None:
        """Install a line (prefetch path) without counting a demand access."""
        ways, tag = self._set_and_tag(addr)
        if tag in ways:
            return
        if len(ways) >= self.ways:
            ways.pop(0)
        ways.append(tag)


class MemoryHierarchy:
    """L1I + L1D + unified L2 + DRAM, with an L2 stream prefetcher."""

    def __init__(
        self,
        l1i_size: int = 32 * 1024,
        l1d_size: int = 32 * 1024,
        l1_ways: int = 8,
        l1i_latency: int = 1,
        l1d_latency: int = 4,
        l2_size: int = 1024 * 1024,
        l2_ways: int = 16,
        l2_latency: int = 12,
        dram_min_latency: int = 75,
        dram_max_latency: int = 185,
        prefetch_degree: int = 8,
        row_bytes: int = 8192,
    ) -> None:
        self.l1i = Cache(l1i_size, l1_ways, l1i_latency, "L1I")
        self.l1d = Cache(l1d_size, l1_ways, l1d_latency, "L1D")
        self.l2 = Cache(l2_size, l2_ways, l2_latency, "L2")
        self.dram_min_latency = dram_min_latency
        self.dram_max_latency = dram_max_latency
        self.prefetch_degree = prefetch_degree
        self._row_shift = row_bytes.bit_length() - 1
        self._last_dram_row = -1
        self.dram_accesses = 0

    def _dram_latency(self, addr: int) -> int:
        """Row-buffer hit -> min latency; row conflict -> max latency."""
        self.dram_accesses += 1
        row = addr >> self._row_shift
        if row == self._last_dram_row:
            latency = self.dram_min_latency
        else:
            latency = self.dram_max_latency
        self._last_dram_row = row
        return latency

    def _prefetch(self, addr: int) -> None:
        """Degree-N stream prefetch of the following lines into L2."""
        for i in range(1, self.prefetch_degree + 1):
            self.l2.fill(addr + i * LINE_BYTES)

    def load_latency(self, addr: int) -> int:
        """Latency of a demand data load through the hierarchy."""
        if self.l1d.access(addr):
            return self.l1d.latency
        if self.l2.access(addr):
            self._prefetch(addr)
            return self.l1d.latency + self.l2.latency
        self._prefetch(addr)
        return self.l1d.latency + self.l2.latency + self._dram_latency(addr)

    def store_latency(self, addr: int) -> int:
        """Stores allocate in L1D; latency only matters for SQ drain."""
        if self.l1d.access(addr):
            return self.l1d.latency
        if self.l2.access(addr):
            return self.l1d.latency + self.l2.latency
        return self.l1d.latency + self.l2.latency + self._dram_latency(addr)

    def ifetch_latency(self, block_pc: int) -> int:
        """Latency of fetching an instruction block."""
        if self.l1i.access(block_pc):
            return self.l1i.latency
        if self.l2.access(block_pc):
            self._prefetch(block_pc)
            return self.l1i.latency + self.l2.latency
        self._prefetch(block_pc)
        return self.l1i.latency + self.l2.latency + self._dram_latency(block_pc)
