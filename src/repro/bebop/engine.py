"""The BeBoP engine: predictor + speculative window + FIFO update queue.

Implements the pipeline-facing :class:`~repro.pipeline.vp.VPAdapter`
protocol at the fetch-block granularity:

* ``fetch_group`` reads the block-based D-VTAGE, substitutes speculative
  last values from the window when a more recent instance of the block is
  in flight, composes the ``Npred`` predictions, pushes the block to the
  window and the FIFO update queue, and attributes predictions to the
  group's µ-ops by byte-index tags;
* ``commit_uop``/``finish_group`` accumulate retired results and schedule
  the predictor update one cycle after the block retires (§V-B);
* ``vp_squash``/``branch_squash`` roll both structures back by sequence
  number and arm the §IV-A recovery policy for the Bnew == Bflush refetch.
"""

from __future__ import annotations

import heapq
from collections import deque

import repro.obs as obs
from repro.obs.timeline import Provenance, provider_label
from repro.isa.instruction import DynMicroOp
from repro.predictors.base import HistoryState
from repro.bebop.attribution import attribute_predictions
from repro.bebop.predictor import BlockDVTAGE, BlockReadout
from repro.bebop.recovery import RecoveryPolicy
from repro.bebop.spec_window import SpeculativeWindow
from repro.bebop.update_queue import FifoUpdateQueue, PendingBlock
from repro.pipeline.vp import GroupHandle, PredUse


class BeBoPEngine:
    """Block-based value prediction infrastructure (adapter protocol)."""

    def __init__(
        self,
        predictor: BlockDVTAGE,
        window: SpeculativeWindow | None = None,
        policy: RecoveryPolicy = RecoveryPolicy.DNRDNR,
    ) -> None:
        self.predictor = predictor
        self.window = window if window is not None else SpeculativeWindow(32)
        self.fifo = FifoUpdateQueue()
        self.policy = policy
        # (apply_cycle, pending) in commit order.
        self._deferred: deque[tuple[int, PendingBlock]] = deque()
        # Writeback fixups: (cycle, tiebreak, pending, slot, value) heap —
        # results patch the window entry as they compute (§I "last
        # computed/predicted values").
        self._result_fixups: list[tuple[int, int, PendingBlock, int, int]] = []
        self._fixup_counter = 0
        self.spec_window_hits = 0
        self.spec_window_uses = 0
        self.cold_blocks = 0
        # Namespaced metrics, hoisted once from the current registry (one
        # engine per run; run_job creates it under the per-job registry).
        # `_m_on` gates the per-fetch observations so a disabled registry
        # costs one attribute check per prediction block.
        reg = obs.registry()
        self._reg = reg
        self._m_on = reg.enabled
        self._m_window_uses = reg.counter("bebop/spec_window/uses")
        self._m_cold_blocks = reg.counter("bebop/spec_window/cold_blocks")
        self._m_occupancy = reg.histogram("bebop/spec_window/occupancy")
        self._m_uq_depth = reg.histogram("bebop/update_queue/depth")
        self._m_attr_requests = reg.counter("bebop/attribution/requests")
        self._m_attr_misses = reg.counter("bebop/attribution/misses")
        # Lazily created `bebop/provider/<name>/predictions` counters, one
        # per D-VTAGE component that ever provided an attributed prediction.
        self._m_providers: dict[int, object] = {}
        self._prov = False        # fill GroupHandle.prov for the recorder

    def set_provenance(self, enabled: bool) -> None:
        """Toggle provenance collection (called by the pipeline when a
        :class:`~repro.obs.timeline.TimelineRecorder` rides the run)."""
        self._prov = enabled

    def fold_geometry(
        self,
    ) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
        return self.predictor.fold_geometry()

    def storage_backend(self) -> str:
        return self.predictor.table_backend

    def table_banks(self) -> tuple[dict, ...]:
        """Bank descriptions for :class:`repro.obs.BankTelemetry` — the
        pipeline attaches these when a run carries a ``banks`` collector."""
        return self.predictor.table_banks()

    def _provider_counter(self, provider: int):
        m = self._m_providers.get(provider)
        if m is None:
            m = self._reg.counter(
                f"bebop/provider/{provider_label(provider)}/predictions"
            )
            self._m_providers[provider] = m
        return m

    # -- training application -------------------------------------------------

    def _apply_until(self, cycle: int) -> None:
        fixups = self._result_fixups
        while fixups and fixups[0][0] <= cycle:
            _, _, pending, slot, value = heapq.heappop(fixups)
            self.window.correct_entry(pending.block_pc, pending.seq, {slot: value})
        q = self._deferred
        while q and q[0][0] <= cycle:
            _, pending = q.popleft()
            self.predictor.update(pending.readout, pending.retired)
            # Retire-time invalidation: the LVT now holds this instance's
            # architectural values, so the window entry (predicted values)
            # must stop shadowing it — see SpeculativeWindow.retire.
            self.window.retire(pending.block_pc, pending.seq)

    def flush_training(self) -> None:
        """Apply every deferred update (end of simulation)."""
        self._apply_until(1 << 62)

    # -- fetch ------------------------------------------------------------------

    def _predict_block(
        self,
        uops: list[DynMicroOp],
        cycle: int,
        hist: HistoryState,
        mask_use: bool,
    ) -> GroupHandle:
        block_pc = uops[0].block_pc
        first_seq = uops[0].seq
        readout = self.predictor.read(block_pc, hist)
        spec_entry = self.window.lookup_entry(block_pc)
        spec_values = spec_entry.values if spec_entry is not None else None
        spec_seq = spec_entry.seq if spec_entry is not None else None
        if spec_values is not None:
            self.spec_window_uses += 1
            last_values = spec_values
            usable = True
            source = "spec_window"
        elif readout.lvt_hit:
            last_values = readout.lvt_last
            usable = True
            source = "lvt"
        else:
            last_values = readout.lvt_last  # zeros; entry is cold
            usable = False
            self.cold_blocks += 1
            source = "cold"
        if self._m_on:
            # Occupancy sampled before this block's insert: what the
            # hardware's associative probe actually searched.
            self._m_occupancy.observe(len(self.window))
            self._m_uq_depth.observe(len(self.fifo))
            if spec_values is not None:
                self._m_window_uses.inc()
            elif not readout.lvt_hit:
                self._m_cold_blocks.inc()
        values = self.predictor.compose(readout, last_values)
        self.window.insert(block_pc, first_seq, values)
        pending = PendingBlock(first_seq, block_pc, hist, readout, values)
        pending.use_masked = mask_use
        self.fifo.push(pending)
        preds, provs = self._attribute(
            uops, readout, values, usable and not mask_use,
            source=source, spec_seq=spec_seq,
        )
        return GroupHandle(preds, hist, ctx=pending, prov=provs)

    def _attribute(
        self,
        uops: list[DynMicroOp],
        readout: BlockReadout,
        values: list[int],
        usable: bool,
        source: str = "lvt",
        spec_seq: int | None = None,
    ) -> tuple[list[PredUse | None], list[Provenance | None] | None]:
        eligible = [
            (pos, uop) for pos, uop in enumerate(uops) if uop.is_vp_eligible
        ]
        slots = attribute_predictions(
            readout.byte_tags, [uop.boundary for _pos, uop in eligible]
        )
        n_matched = sum(1 for slot in slots if slot is not None)
        if self._m_on and eligible:
            # An attribution miss: a VP-eligible µ-op whose byte boundary
            # matched no prediction slot (§V-B's tag-mismatch case).
            self._m_attr_requests.inc(len(eligible))
            missed = len(eligible) - n_matched
            if missed:
                self._m_attr_misses.inc(missed)
            if n_matched:
                self._provider_counter(readout.provider).inc(n_matched)
        preds: list[PredUse | None] = [None] * len(uops)
        provs: list[Provenance | None] | None = (
            [None] * len(uops) if self._prov else None
        )
        policy = self.policy.value if provs is not None else ""
        for (pos, _uop), slot in zip(eligible, slots):
            if slot is None:
                if provs is not None:
                    # Attribution miss: record it so the timeline can show
                    # which eligible µ-ops the block tags failed to cover.
                    provs[pos] = Provenance(
                        provider=readout.provider,
                        source=source,
                        spec_seq=spec_seq,
                        tag_match=False,
                        policy=policy,
                        verdict="no_prediction",
                    )
                continue
            confident = usable and self.predictor.is_confident(readout, slot)
            preds[pos] = PredUse(values[slot], confident, slot=slot)
            if provs is not None:
                provs[pos] = Provenance(
                    provider=readout.provider,
                    conf=readout.conf[slot],
                    source=source,
                    spec_seq=spec_seq,
                    slot=slot,
                    value=values[slot],
                    confident=confident,
                    policy=policy,
                )
        return preds, provs

    def fetch_group(
        self,
        uops: list[DynMicroOp],
        cycle: int,
        hist: HistoryState,
        reuse: GroupHandle | None = None,
    ) -> GroupHandle:
        self._apply_until(cycle)
        if reuse is None or self.policy.repredicts:
            # Normal fetch, or a policy that generates a new prediction
            # block for the refetched instructions (Ideal / Repred).
            return self._predict_block(uops, cycle, hist, mask_use=False)
        # DnRR / DnRDnR: reuse the flushed block's prediction block.  The
        # kept pending block keeps accumulating the refetched µ-ops' results.
        pending: PendingBlock = reuse.ctx  # type: ignore[assignment]
        mask_use = not self.policy.reuses_predictions
        if mask_use:
            pending.use_masked = True
        usable = not mask_use
        preds, provs = self._attribute(
            uops, pending.readout, pending.values, usable, source="reuse"
        )
        return GroupHandle(preds, hist, ctx=pending, prov=provs)

    # -- commit -------------------------------------------------------------------

    def result_uop(
        self, handle: GroupHandle, pos: int, uop: DynMicroOp, complete_cycle: int
    ) -> None:
        """A µ-op's result computed: patch its slot in the window entry."""
        pred = handle.preds[pos]
        if pred is None or pred.slot < 0 or uop.value is None:
            return
        pending: PendingBlock = handle.ctx  # type: ignore[assignment]
        self._fixup_counter += 1
        heapq.heappush(
            self._result_fixups,
            (complete_cycle + 1, self._fixup_counter, pending, pred.slot, uop.value),
        )

    def commit_uop(
        self, handle: GroupHandle, pos: int, uop: DynMicroOp, cycle: int
    ) -> None:
        if not uop.is_vp_eligible or uop.value is None:
            return
        pending: PendingBlock = handle.ctx  # type: ignore[assignment]
        pending.retired.append((uop.boundary, uop.value))

    def finish_group(self, handle: GroupHandle, cycle: int) -> None:
        """The block instance fully retired: pop it from the FIFO and apply
        the update one cycle later (§V-B: 'updated in the cycle following
        retirement')."""
        pending: PendingBlock = handle.ctx  # type: ignore[assignment]
        self.fifo.remove(pending)  # may already be gone after a Repred squash
        self._deferred.append((cycle + 1, pending))

    # -- squash ---------------------------------------------------------------------

    def vp_squash(
        self,
        handle: GroupHandle,
        flush_seq: int,
        next_block_pc: int | None,
        cycle: int,
    ) -> None:
        pending: PendingBlock = handle.ctx  # type: ignore[assignment]
        same_block = next_block_pc is not None and next_block_pc == pending.block_pc
        drop_head = same_block and self.policy.squashes_head
        self.window.squash(pending.seq, drop_equal=drop_head)
        self.fifo.squash(pending.seq, drop_equal=drop_head)
        if same_block and self.policy is RecoveryPolicy.IDEAL:
            # Ideal keeps the predictions older than the flush point and
            # tracks them at instruction granularity: the flushed instance
            # trains with what it retired before the flush, and the refetch
            # will get a brand-new prediction block.  Instruction-granular
            # consistency also means the kept window entry reflects the
            # architectural values of everything retired so far.
            self.fifo.remove(pending)
            self._deferred.append((cycle + 1, pending))
            readout: BlockReadout = pending.readout
            slots = attribute_predictions(
                readout.byte_tags, [b for b, _ in pending.retired]
            )
            fixups = {
                slot: value
                for slot, (_b, value) in zip(slots, pending.retired)
                if slot is not None
            }
            if fixups:
                self.window.correct_entry(pending.block_pc, pending.seq, fixups)

    def branch_squash(self, flush_seq: int, cycle: int) -> None:
        self.window.squash(flush_seq)
        self.fifo.squash(flush_seq)

    # -- reporting ---------------------------------------------------------------

    def storage_bits(self) -> int:
        """Predictor + speculative window storage (Table III)."""
        bits = self.predictor.storage_bits()
        if self.window.capacity:
            bits += self.window.storage_bits(self.predictor.config.npred)
        return bits

    def storage_kb(self) -> float:
        return self.storage_bits() / 8 / 1000
