"""Speculative-window / update-queue recovery policies (paper §IV-A).

On a pipeline flush, entries younger than the flushing instruction are
discarded from both the speculative window and the FIFO update queue.  When
the first instruction fetched after the flush (``Inew``) belongs to the same
fetch block as the flushing instruction (``Bnew == Bflush`` — the typical
value-misprediction case), four policies are defined:

* ``DNRR`` — *Do not Repredict and Reuse*: keep the flushed block's
  prediction block and let the refetched instructions use it.
* ``DNRDNR`` — *Do not Repredict and do not Reuse*: keep it for training but
  forbid the refetched instructions from using the predictions (if one
  prediction in the block was wrong, the rest probably are too).
* ``REPRED`` — squash the head and generate a fresh prediction block.
* ``IDEAL`` — instruction-granularity tracking: keep predictions older than
  the flush point, generate fresh ones for the rest; the speculative state
  is always consistent.  (Idealistic reference, not implementable as is.)
"""

from __future__ import annotations

import enum


class RecoveryPolicy(enum.Enum):
    """How the BeBoP engine handles a flush with ``Bnew == Bflush``."""

    IDEAL = "ideal"
    REPRED = "repred"
    DNRDNR = "dnrdnr"
    DNRR = "dnrr"

    @property
    def repredicts(self) -> bool:
        """Does the refetched block get a freshly generated prediction?"""
        return self in (RecoveryPolicy.IDEAL, RecoveryPolicy.REPRED)

    @property
    def reuses_predictions(self) -> bool:
        """May the refetched instructions *use* the kept predictions?"""
        return self in (RecoveryPolicy.IDEAL, RecoveryPolicy.REPRED, RecoveryPolicy.DNRR)

    @property
    def squashes_head(self) -> bool:
        """Is the flushed block's own window/queue entry discarded?"""
        return self is RecoveryPolicy.REPRED
