"""Prediction attribution by byte-index tags (paper §II-B1, Fig 2).

A BeBoP entry holds ``Npred`` prediction slots, each tagged with the
low-order byte index (the *boundary*) of the instruction the slot was
attributed to the last time the block retired.  At fetch, predictions flow
out of the predictor and are matched, in order, against the boundaries of
the decoded µ-ops: a µ-op at boundary ``b`` takes the first remaining slot
whose tag equals ``b``.  This prevents *false sharing* when a block is
entered at different instructions (taken-branch targets): slots tagged with
bytes before the entry point simply never match.

At update, the tags learn the block's layout under the monotonic rule of
§II-B1 — a slot's tag may be lowered (an earlier entry point teaches the
entry about earlier instructions) but never raised, except when the whole
entry is freshly allocated.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Tag value of a never-assigned prediction slot (matches nothing).
FREE_TAG = -1


def attribute_predictions(
    slot_tags: Sequence[int],
    boundaries: Sequence[int],
) -> list[int | None]:
    """Match µ-op boundaries against prediction-slot tags.

    ``slot_tags`` are the entry's per-slot byte tags; ``boundaries`` the
    byte index of the parent instruction of each result-producing µ-op, in
    fetch order.  Returns, per µ-op, the slot index it consumes or None.

    Slots are consumed left to right: a µ-op takes the first unconsumed slot
    whose tag equals its boundary, searching from just past the previously
    consumed slot (predictions flow out in order, as in Fig 2).

    >>> attribute_predictions([0, 3], [3])      # block entered at byte 3
    [1]
    >>> attribute_predictions([0, 3], [0, 3])   # entered at byte 0
    [0, 1]
    >>> attribute_predictions([0, 3], [5])      # unknown instruction
    [None]
    """
    result: list[int | None] = []
    cursor = 0
    n = len(slot_tags)
    for boundary in boundaries:
        assigned = None
        for slot in range(cursor, n):
            if slot_tags[slot] == boundary:
                assigned = slot
                cursor = slot + 1
                break
        result.append(assigned)
    return result


def update_tag_assignment(
    slot_tags: Sequence[int],
    boundaries: Sequence[int],
    fresh_allocation: bool,
    monotonic: bool = True,
) -> tuple[list[int | None], list[int]]:
    """Assign retired results to slots and evolve the tags.

    Returns ``(assignment, new_tags)`` where ``assignment[i]`` is the slot
    trained by the i-th retired result µ-op (or None if the entry has no
    room for it) and ``new_tags`` the updated per-slot tags.

    * On a **fresh allocation** the tags are simply the boundaries of the
      retired results, in order.
    * Otherwise results first match existing tags exactly (like at fetch);
      an unmatched result may claim the first remaining slot whose tag is
      *greater* than its boundary or still free, re-tagging it downward —
      a greater tag never replaces a lesser one, so the entry converges on
      the earliest entry point's layout (Fig 2's P1/I1 pairing survives
      entries through I2).

    With ``monotonic=False`` (the ablation of the §II-B1 rule) an unmatched
    result simply overwrites the next slot's tag, whatever its value — the
    entry then thrashes between entry points instead of converging.
    """
    n = len(slot_tags)
    if fresh_allocation:
        tags = [FREE_TAG] * n
        assignment: list[int | None] = []
        for i, boundary in enumerate(boundaries):
            if i < n:
                tags[i] = boundary
                assignment.append(i)
            else:
                assignment.append(None)
        return assignment, tags

    tags = list(slot_tags)
    assignment = []
    cursor = 0
    for boundary in boundaries:
        assigned = None
        # Exact match first, in slot order.
        for slot in range(cursor, n):
            if tags[slot] == boundary:
                assigned = slot
                cursor = slot + 1
                break
        if assigned is None:
            if monotonic:
                # Claim the first slot whose tag is greater (or free): the
                # tag is lowered to this boundary, never raised.
                for slot in range(cursor, n):
                    if tags[slot] == FREE_TAG or tags[slot] > boundary:
                        tags[slot] = boundary
                        assigned = slot
                        cursor = slot + 1
                        break
            elif cursor < n:
                # Ablation: overwrite unconditionally.
                tags[cursor] = boundary
                assigned = cursor
                cursor += 1
        assignment.append(assigned)
    return assignment, tags
