"""FIFO update queue (paper §III-D-c).

Predictions are made at fetch but the predictor is trained at retire, so
every in-flight prediction block — with everything visible at prediction
time that update needs (provider component, strides, confidences, the last
values the adders consumed) — waits in a FIFO queue.  Blocks are pushed at
prediction time and popped at validation time; each entry is tagged with
the sequence number of its block's first instruction so the queue can be
rolled back on pipeline flushes (§IV-A).

The queue is dimensioned so that prediction information is never lost
(§III-D-c); we model it unbounded and report the high-water mark so the
paper's ~116-blocks-in-flight estimate can be checked.
"""

from __future__ import annotations

from typing import Any


class PendingBlock:
    """One in-flight prediction block awaiting validation.

    ``readout`` is the opaque predictor-side context captured at prediction
    time; ``retired`` accumulates ``(boundary, actual)`` pairs as the
    block's result-producing µ-ops commit.
    """

    __slots__ = (
        "seq",
        "block_pc",
        "hist",
        "readout",
        "values",
        "retired",
        "use_masked",
    )

    def __init__(
        self,
        seq: int,
        block_pc: int,
        hist: Any,
        readout: Any,
        values: list[int],
    ) -> None:
        self.seq = seq
        self.block_pc = block_pc
        self.hist = hist
        self.readout = readout
        self.values = values
        self.retired: list[tuple[int, int]] = []
        # DnRDnR: refetched instructions may not *use* these predictions.
        self.use_masked = False


class FifoUpdateQueue:
    """FIFO of :class:`PendingBlock`, with sequence-number rollback."""

    def __init__(self) -> None:
        self._queue: list[PendingBlock] = []
        self.high_water_mark = 0
        self.pushes = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, block: PendingBlock) -> None:
        self._queue.append(block)
        self.pushes += 1
        if len(self._queue) > self.high_water_mark:
            self.high_water_mark = len(self._queue)

    def head(self) -> PendingBlock | None:
        return self._queue[0] if self._queue else None

    def tail(self) -> PendingBlock | None:
        """The most recently pushed (youngest) block."""
        return self._queue[-1] if self._queue else None

    def pop(self) -> PendingBlock:
        if not self._queue:
            raise IndexError("pop from an empty update queue")
        return self._queue.pop(0)

    def remove(self, block: PendingBlock) -> bool:
        """Drop a specific block (validation popped it). Returns whether it
        was still queued — it may have been squashed away already."""
        for i, queued in enumerate(self._queue):
            if queued is block:
                del self._queue[i]
                return True
        return False

    def squash(self, flush_seq: int, drop_equal: bool = False) -> int:
        """Roll back entries younger than the flush point.

        Same semantics as the speculative window: ``seq > flush_seq`` always
        dropped, ``seq == flush_seq`` (the flushing instruction's own block)
        dropped only when the Repred policy squashes the head.
        """
        kept = [
            b
            for b in self._queue
            if b.seq < flush_seq or (not drop_equal and b.seq == flush_seq)
        ]
        dropped = len(self._queue) - len(kept)
        self._queue = kept
        return dropped
