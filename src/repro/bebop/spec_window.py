"""The block-based speculative window (paper §IV, Fig 4).

A small buffer holding, per recently fetched block instance, the predicted
values the predictor produced for it.  Reads are associative on a 15-bit
partial tag of the block PC, prioritised by internal sequence number (most
recent wins); writes are a plain circular append because the buffer is
chronologically ordered — no tag match needed, and if the head overruns the
tail the oldest entry is simply lost.  On pipeline flushes, entries younger
than the flushing instruction are discarded.

``capacity=None`` models the infinite window of Fig 7b's ``∞`` point;
``capacity=0`` models ``None`` (no speculative window at all).
"""

from __future__ import annotations

from repro.common.bits import fold_bits


def window_tag(block_pc: int, tag_bits: int = 15) -> int:
    """Partial tag of a fetch-block PC (false positives are allowed: value
    prediction is speculative by nature, §IV)."""
    return fold_bits(block_pc >> 4, 60, tag_bits)


class _WindowEntry:
    __slots__ = ("tag", "seq", "values")

    def __init__(self, tag: int, seq: int, values: list[int]) -> None:
        self.tag = tag
        self.seq = seq
        self.values = values


class SpeculativeWindow:
    """N-way associative-read / circular-write speculative window."""

    def __init__(self, capacity: int | None = 32, tag_bits: int = 15) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0 or None, got {capacity}")
        self.capacity = capacity
        self.tag_bits = tag_bits
        self._entries: list[_WindowEntry] = []
        self.lookups = 0
        self.hits = 0

    @property
    def enabled(self) -> bool:
        return self.capacity is None or self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, block_pc: int, seq: int, values: list[int]) -> None:
        """Append a newly predicted block instance at the head."""
        if not self.enabled:
            return
        self._entries.append(
            _WindowEntry(window_tag(block_pc, self.tag_bits), seq, list(values))
        )
        if self.capacity is not None and len(self._entries) > self.capacity:
            # Head overlaps tail: advance both (the oldest entry is lost).
            self._entries.pop(0)

    def lookup(self, block_pc: int) -> list[int] | None:
        """Predicted values of the most recent in-window instance, if any.

        The hardware probes all entries in parallel and a priority encoder
        picks the matching entry with the highest sequence number (Fig 4);
        entries are kept in insertion order here, so the last match wins.
        """
        entry = self.lookup_entry(block_pc)
        return entry.values if entry is not None else None

    def lookup_entry(self, block_pc: int) -> _WindowEntry | None:
        """Like :meth:`lookup` but returns the whole matching entry, so the
        caller can also see *which* in-flight instance (``seq``) provided
        the values — the timeline provenance needs it.  Counts one lookup
        (and possibly one hit) exactly like :meth:`lookup`."""
        if not self.enabled:
            return None
        self.lookups += 1
        tag = window_tag(block_pc, self.tag_bits)
        for entry in reversed(self._entries):
            if entry.tag == tag:
                self.hits += 1
                return entry
        return None

    def correct_entry(
        self, block_pc: int, seq: int, slot_values: dict[int, int]
    ) -> bool:
        """Write *computed* values into an in-flight instance's entry.

        The paper's window provides "last computed/predicted values" (§I):
        an entry starts out holding the predictions made at fetch and is
        patched with actual results as the instance's µ-ops write back
        (a result-bus write port, like IQ wakeup).  This is what re-anchors
        a mispredicted chain without waiting for a full pipeline drain.
        Returns whether the instance was still in the window.
        """
        if not self.enabled:
            return False
        tag = window_tag(block_pc, self.tag_bits)
        for entry in reversed(self._entries):
            if entry.tag == tag and entry.seq == seq:
                for slot, value in slot_values.items():
                    if 0 <= slot < len(entry.values):
                        entry.values[slot] = value
                return True
        return False

    def retire(self, block_pc: int, seq: int) -> bool:
        """Invalidate a block instance's entry once it retires.

        The window's job is to supply last values for *in-flight* instances;
        once an instance retires, the LVT holds its architectural values.
        Without invalidation, a wrong (unused, hence unflushed) prediction
        stays in the window and wrongly anchors every chained prediction of
        this block until capacity evicts it.  One associative invalidate per
        retired block (the update queue pop knows the sequence number, and
        the write can steal the circular write port) keeps the window
        meaning "speculative instances only".  Returns whether the instance
        was still present.
        """
        if not self.enabled:
            return False
        tag = window_tag(block_pc, self.tag_bits)
        for i in range(len(self._entries) - 1, -1, -1):
            entry = self._entries[i]
            if entry.tag == tag and entry.seq == seq:
                del self._entries[i]
                return True
        return False

    def squash(self, flush_seq: int, drop_equal: bool = False) -> int:
        """Discard entries younger than the flushing instruction.

        Entries with ``seq > flush_seq`` are always dropped; with
        ``drop_equal`` the entry whose first instruction *is* the flush
        point goes too (the Repred policy squashes the head block itself,
        §IV-A).  Returns the number of dropped entries.
        """
        kept = [
            e
            for e in self._entries
            if e.seq < flush_seq or (not drop_equal and e.seq == flush_seq)
        ]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        return dropped

    def storage_bits(self, npred: int, value_bits: int = 64) -> int:
        """Storage of a ``capacity``-entry window (Table III accounting:
        per entry, a 15-bit partial tag plus ``npred`` full values; the
        sequence-number cost is called marginal in §VI-C and not counted)."""
        if self.capacity is None:
            raise ValueError("infinite window has no meaningful storage cost")
        return self.capacity * (self.tag_bits + npred * value_bits)
