"""Block-based D-VTAGE (papers §II-§III combined).

The predictor is keyed on the fetch-block PC.  Per block entry it holds
``npred`` prediction slots:

* the **LVT** (direct-mapped, 5-bit block tags) stores ``npred`` retired
  last values and the per-slot byte-index tags used for attribution;
* **VT0** (the base stride component) stores ``npred`` strides with their
  FPC confidence;
* six partially tagged components store ``npred`` strides + FPC per slot,
  a 13..18-bit block tag and one per-block usefulness bit, indexed VTAGE
  style by block PC and folded global branch/path history.

``read`` performs the fetch-time table reads and provider selection;
composing predictions (last value + stride per slot) is left to the caller
because the last values may come from the speculative window rather than the
LVT.  ``update`` implements the block-based training of §III-D-b: byte tags
evolve under the monotonic rule, the provider's per-slot strides/confidence
train on the retired results, and on any wrong slot a new tagged entry is
allocated with the provider's confidence counters *propagated* so the
correct slots of the block keep their coverage.

Table state lives in :mod:`repro.common.tables` banks with *vector*
fields: the per-slot arrays (last values, byte tags, strides, confidence)
are ``width == npred`` columns addressed ``entry * npred + slot``, and the
tagged components share one flat bank addressed
``comp * tagged_entries + index``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import mask, to_signed, to_unsigned
from repro.common.rng import XorShift64
from repro.common.errors import (
    ConfigError,
    require_positive,
    require_power_of_two,
)
from repro.common.tables import Field, make_bank
from repro.predictors.base import (
    HistoryState,
    table_index,
    tagged_index,
    tagged_tag,
)
from repro.predictors.confidence import FPCPolicy
from repro.predictors.vtage import geometric_history_lengths
from repro.bebop.attribution import FREE_TAG, update_tag_assignment


@dataclass(frozen=True)
class BlockDVTAGEConfig:
    """Geometry of a block-based D-VTAGE (Table III rows are instances)."""

    npred: int = 6
    base_entries: int = 2048        # LVT + VT0 entries
    tagged_entries: int = 256       # per tagged component
    components: int = 6
    first_tag_bits: int = 13
    lvt_tag_bits: int = 5
    byte_tag_bits: int = 4          # log2(16-byte fetch block)
    stride_bits: int = 64
    min_history: int = 2
    max_history: int = 64
    useful_reset_period: int = 8192
    propagate_confidence: bool = True
    #: §II-B1's "greater tag never replaces a lesser" rule; False is the
    #: always-overwrite ablation (DESIGN.md §7).
    monotonic_byte_tags: bool = True

    def __post_init__(self) -> None:
        """Reject impossible geometries, listing every violation at once
        (one :class:`~repro.common.errors.ConfigError`, same contract
        as :class:`~repro.pipeline.config.CoreConfig`)."""
        violations: list[str] = []
        require_positive(
            violations, self,
            "npred", "base_entries", "tagged_entries", "components",
            "first_tag_bits", "lvt_tag_bits", "byte_tag_bits",
            "stride_bits", "min_history", "max_history",
            "useful_reset_period",
        )
        require_power_of_two(violations, self, "base_entries",
                             "tagged_entries")
        if self.stride_bits > 64:
            violations.append(
                f"stride_bits must be <= 64, got {self.stride_bits}"
            )
        if 0 < self.max_history <= self.min_history:
            violations.append(
                f"min_history ({self.min_history}) must be smaller than "
                f"max_history ({self.max_history})"
            )
        if violations:
            raise ConfigError("BlockDVTAGEConfig", violations)


class BlockReadout:
    """Everything the fetch-time read produced, kept for update time."""

    __slots__ = (
        "block_pc",
        "hist",
        "lvt_index",
        "lvt_tag",
        "lvt_hit",
        "lvt_last",
        "byte_tags",
        "provider",         # 0 = VT0, i+1 = tagged component i
        "provider_index",   # VT0 entry, or flat index into the tagged bank
        "provider_tag",
        "strides",          # provider strides (raw stored form)
        "conf",             # provider confidence levels at read time
        "alt_strides",
        "last_used",        # last values the adders consumed (may be spec)
        "values",           # composed predictions, filled by compose()
    )

    def __init__(self) -> None:
        self.values: list[int] = []
        self.last_used: list[int] = []


def dvtage_bank_fields(
    npred: int,
) -> tuple[tuple[Field, ...], tuple[Field, ...], tuple[Field, ...]]:
    """(lvt, vt0, tagged) field declarations for an ``npred``-wide D-VTAGE.

    The single source of truth for the predictor's bank layout — the
    batched sweep engine allocates variant-stacked banks from the same
    declarations so per-variant views are indistinguishable from the
    banks a scalar predictor would build.
    """
    lvt = (
        Field("tag", default=-1),
        Field("last", width=npred, unsigned=True),
        Field("byte_tags", default=FREE_TAG, width=npred),
    )
    vt0 = (
        Field("strides", width=npred, unsigned=True),
        Field("conf", width=npred),
    )
    tagged = (
        Field("tag", default=-1),
        Field("strides", width=npred, unsigned=True),
        Field("conf", width=npred),
        Field("useful"),
        # Generation the useful bit was last written in; a stale
        # generation reads as useful == 0 (O(1) periodic reset).
        Field("useful_gen"),
    )
    return lvt, vt0, tagged


class BlockDVTAGE:
    """The block-based Differential VTAGE predictor."""

    def __init__(
        self,
        config: BlockDVTAGEConfig | None = None,
        fpc: FPCPolicy | None = None,
        seed: int = 0xBEB0,
        table_backend: str | None = None,
        banks=None,
    ) -> None:
        self.config = config if config is not None else BlockDVTAGEConfig()
        c = self.config
        self.fpc = fpc if fpc is not None else FPCPolicy()
        self.base_index_bits = c.base_entries.bit_length() - 1
        self.tagged_index_bits = c.tagged_entries.bit_length() - 1
        self.tag_bits = tuple(c.first_tag_bits + i for i in range(c.components))
        self.history_lengths = geometric_history_lengths(
            c.components, c.min_history, c.max_history
        )
        lvt_fields, vt0_fields, tagged_fields = dvtage_bank_fields(c.npred)
        if banks is not None:
            # Caller-provided storage (e.g. per-variant views of a
            # variant-stacked bank from batch_stack); shapes must match
            # what this config would have allocated.
            self._lvt, self._vt0, self._tagged = banks
            if (
                self._lvt.entries != c.base_entries
                or self._vt0.entries != c.base_entries
                or self._tagged.entries != c.components * c.tagged_entries
            ):
                raise ValueError(
                    "injected banks do not match the predictor geometry"
                )
        else:
            self._lvt = make_bank(
                c.base_entries, lvt_fields, backend=table_backend
            )
            self._vt0 = make_bank(
                c.base_entries, vt0_fields, backend=table_backend
            )
            self._tagged = make_bank(
                c.components * c.tagged_entries,
                tagged_fields,
                backend=table_backend,
            )
        self.table_backend = self._lvt.backend
        self._l_tag = self._lvt.col("tag")
        self._l_last = self._lvt.col("last")
        self._v_strides = self._vt0.col("strides")
        self._v_conf = self._vt0.col("conf")
        self._t_tag = self._tagged.col("tag")
        self._t_strides = self._tagged.col("strides")
        self._t_conf = self._tagged.col("conf")
        self._t_useful = self._tagged.col("useful")
        self._t_ugen = self._tagged.col("useful_gen")
        self._rng = XorShift64(seed)
        self._updates_since_reset = 0
        self._useful_gen = 0

    def fold_geometry(
        self,
    ) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
        """(idx_pairs, tag_pairs) for the pipeline's folded-history set."""
        idx = tuple(
            (length, self.tagged_index_bits) for length in self.history_lengths
        )
        tag = tuple(zip(self.history_lengths, self.tag_bits))
        return idx, tag

    # -- indexing ------------------------------------------------------------

    @staticmethod
    def _key(block_pc: int) -> int:
        return block_pc >> 4

    def _lvt_slot(self, key: int) -> tuple[int, int]:
        index = table_index(key, self.base_index_bits)
        tag = (key >> self.base_index_bits) & mask(self.config.lvt_tag_bits)
        return index, tag

    def _component_slot(
        self, comp: int, key: int, hist: HistoryState
    ) -> tuple[int, int]:
        """(flat index into the tagged bank, tag)."""
        length = self.history_lengths[comp]
        index = tagged_index(key, hist, length, self.tagged_index_bits)
        tag = tagged_tag(key, hist, length, self.tag_bits[comp])
        return comp * self.config.tagged_entries + index, tag

    def _stride_value(self, stored: int) -> int:
        return to_signed(stored, self.config.stride_bits)

    def _truncate(self, stride: int) -> int:
        return to_unsigned(to_signed(stride, self.config.stride_bits),
                           self.config.stride_bits)

    # -- fetch-time read -----------------------------------------------------

    def read(self, block_pc: int, hist: HistoryState) -> BlockReadout:
        """Read LVT and stride components for a fetch block."""
        key = self._key(block_pc)
        c = self.config
        out = BlockReadout()
        out.block_pc = block_pc
        out.hist = hist
        lvt_index, lvt_tag = self._lvt_slot(key)
        out.lvt_index = lvt_index
        out.lvt_tag = lvt_tag
        out.lvt_hit = bool(self._l_tag[lvt_index] == lvt_tag)
        if out.lvt_hit:
            out.lvt_last = self._lvt.read_vec("last", lvt_index)
            out.byte_tags = self._lvt.read_vec("byte_tags", lvt_index)
        else:
            out.lvt_last = [0] * c.npred
            out.byte_tags = [FREE_TAG] * c.npred
        hits: list[tuple[int, int, int]] = []
        t_tag = self._t_tag
        for comp in range(c.components):
            index, tag = self._component_slot(comp, key, hist)
            if t_tag[index] == tag:
                hits.append((comp, index, tag))
        if hits:
            comp, index, tag = hits[-1]
            out.provider = comp + 1
            out.provider_index = index
            out.provider_tag = tag
            out.strides = self._tagged.read_vec("strides", index)
            out.conf = self._tagged.read_vec("conf", index)
            if len(hits) > 1:
                _alt_comp, alt_index, _ = hits[-2]
                out.alt_strides = self._tagged.read_vec("strides", alt_index)
            else:
                out.alt_strides = self._vt0.read_vec(
                    "strides", table_index(key, self.base_index_bits)
                )
        else:
            index = table_index(key, self.base_index_bits)
            out.provider = 0
            out.provider_index = index
            out.provider_tag = 0
            out.strides = self._vt0.read_vec("strides", index)
            out.conf = self._vt0.read_vec("conf", index)
            out.alt_strides = list(out.strides)
        return out

    def compose(self, readout: BlockReadout, last_values: list[int]) -> list[int]:
        """Predictions = last values (LVT or speculative window) + strides."""
        readout.last_used = list(last_values)
        readout.values = [
            to_unsigned(last_values[m] + self._stride_value(readout.strides[m]), 64)
            for m in range(self.config.npred)
        ]
        return readout.values

    def is_confident(self, readout: BlockReadout, slot: int) -> bool:
        return self.fpc.is_confident(readout.conf[slot])

    # -- retire-time update ---------------------------------------------------

    def update(
        self,
        readout: BlockReadout,
        retired: list[tuple[int, int]],
    ) -> dict[int, int]:
        """Train the predictor with a retired block.

        ``retired`` holds ``(boundary, actual_value)`` for every VP-eligible
        result-producing µ-op of the block instance, in retire order.
        Returns the per-slot actual values (slot -> value), which the engine
        uses to correct the retired instance's speculative-window entry.
        """
        if not retired:
            return {}
        c = self.config
        npred = c.npred
        key = self._key(readout.block_pc)
        lvt_index, lvt_tag = self._lvt_slot(key)
        lvt_base = lvt_index * npred
        fresh = bool(self._l_tag[lvt_index] != lvt_tag)
        boundaries = [boundary for boundary, _ in retired]
        byte_tags = self._lvt.read_vec("byte_tags", lvt_index)
        assignment, new_tags = update_tag_assignment(
            byte_tags if not fresh else [FREE_TAG] * npred,
            boundaries,
            fresh_allocation=fresh,
            monotonic=c.monotonic_byte_tags,
        )
        retagged = [
            s
            for s in range(npred)
            if not fresh and new_tags[s] != byte_tags[s]
        ]

        # Locate the provider entry (it may have been reallocated since the
        # read; in that case only the LVT is trained).
        if readout.provider == 0:
            provider_live = True
            p_strides, p_conf = self._v_strides, self._v_conf
        else:
            provider_live = bool(
                self._t_tag[readout.provider_index] == readout.provider_tag
            )
            p_strides, p_conf = self._t_strides, self._t_conf
        p_base = readout.provider_index * npred

        l_last = self._l_last
        any_wrong = False
        any_useful = False
        observed: dict[int, int] = {}
        slot_actuals: dict[int, int] = {}
        correct_slots: set[int] = set()
        for (boundary, actual), slot in zip(retired, assignment):
            if slot is None:
                continue  # more results than prediction slots: coverage lost
            slot_actuals[slot] = actual
            prev_last = int(l_last[lvt_base + slot])
            observed[slot] = self._truncate(actual - prev_last)
            predicted = readout.values[slot] if readout.values else None
            correct = (not fresh) and predicted is not None and predicted == actual
            if correct:
                correct_slots.add(slot)
                if readout.alt_strides[slot] != readout.strides[slot]:
                    any_useful = True
            else:
                any_wrong = True
            if fresh:
                # First contact with this block: install the last values
                # below; there is no meaningful stride to train yet.
                l_last[lvt_base + slot] = actual
                continue
            if provider_live and slot not in retagged:
                if correct:
                    p_conf[p_base + slot] = self.fpc.advance(
                        int(p_conf[p_base + slot])
                    )
                else:
                    p_conf[p_base + slot] = self.fpc.reset_level()
                    p_strides[p_base + slot] = observed[slot]
            elif provider_live:
                # The slot now belongs to a different instruction: retrain.
                p_conf[p_base + slot] = self.fpc.reset_level()
                p_strides[p_base + slot] = observed[slot]
            l_last[lvt_base + slot] = actual

        # Per-block usefulness (§III-D-b): one bit for the whole entry.
        if provider_live and readout.provider > 0:
            if any_wrong:
                self._t_useful[readout.provider_index] = 0
                self._t_ugen[readout.provider_index] = self._useful_gen
            elif any_useful:
                self._t_useful[readout.provider_index] = 1
                self._t_ugen[readout.provider_index] = self._useful_gen

        self._l_tag[lvt_index] = lvt_tag
        self._lvt.write_vec("byte_tags", lvt_index, new_tags)

        if any_wrong and not fresh:
            self._allocate(key, readout, observed, correct_slots)
        self._tick_useful_reset()
        return slot_actuals

    def _allocate(
        self,
        key: int,
        readout: BlockReadout,
        observed: dict[int, int],
        correct_slots: set[int],
    ) -> None:
        """Allocate a longer-history entry, propagating confidence
        (§III-D-b): correct slots keep the provider's counters and strides,
        wrong slots get the observed stride with reset confidence."""
        c = self.config
        gen = self._useful_gen
        t_useful, t_ugen = self._t_useful, self._t_ugen
        candidates = []
        slots = []
        for comp in range(readout.provider, c.components):
            index, tag = self._component_slot(comp, key, readout.hist)
            slots.append((comp, index, tag))
            if t_useful[index] == 0 or t_ugen[index] != gen:
                candidates.append((comp, index, tag))
        if not candidates:
            for _comp, index, _tag in slots:
                t_useful[index] = 0
                t_ugen[index] = gen
            return
        _comp, index, tag = candidates[self._rng.next_below(len(candidates))]
        self._t_tag[index] = tag
        t_useful[index] = 0
        t_ugen[index] = gen
        base = index * c.npred
        t_strides, t_conf = self._t_strides, self._t_conf
        for m in range(c.npred):
            if m in correct_slots:
                t_strides[base + m] = readout.strides[m]
                t_conf[base + m] = (
                    readout.conf[m] if c.propagate_confidence else 0
                )
            elif m in observed:
                t_strides[base + m] = observed[m]
                t_conf[base + m] = 0
            else:
                # Slot not exercised by this instance: inherit the provider.
                t_strides[base + m] = readout.strides[m]
                t_conf[base + m] = (
                    readout.conf[m] if c.propagate_confidence else 0
                )

    def _tick_useful_reset(self) -> None:
        # O(1) periodic reset: bumping the generation makes every entry's
        # stale useful bit read as 0 without walking the tables.
        self._updates_since_reset += 1
        if self._updates_since_reset >= self.config.useful_reset_period:
            self._updates_since_reset = 0
            self._useful_gen += 1

    # -- reporting -------------------------------------------------------------

    def _current_useful_gen(self) -> int:
        return self._useful_gen

    def table_banks(self) -> tuple[dict, ...]:
        """Bank descriptions for :class:`repro.obs.BankTelemetry`
        (kwargs dicts its ``register()`` accepts): the LVT, the VT-0 base
        component, and the flat tagged bank sliced per component, with
        useful-bit mass gated by the live generation counter."""
        return (
            {
                "name": "lvt",
                "bank": self._lvt,
                "tag_field": "tag",
                "tag_invalid": -1,
            },
            {"name": "vt0", "bank": self._vt0},
            {
                "name": "tagged",
                "bank": self._tagged,
                "components": self.config.components,
                "tag_field": "tag",
                "tag_invalid": -1,
                "useful_field": "useful",
                "useful_gen_field": "useful_gen",
                "gen": self._current_useful_gen,
            },
        )

    # -- batched sweeps -------------------------------------------------------

    @classmethod
    def batch_stack(
        cls,
        configs,
        seed: int = 0xBEB0,
        table_backend: str | None = None,
    ):
        """N predictors over variant-stacked banks, one stack per bank.

        Every config must share the bank shapes (npred, base_entries,
        tagged_entries, components) so the variants can stack; other
        knobs (confidence propagation, tag monotonicity, histories) may
        differ freely.  Each predictor gets its own RNG/FPC streams —
        exactly what N independently constructed predictors would have —
        and a per-variant ``view`` of the shared stacks, so scalar
        ``read``/``update`` code mutates stacked storage in place.

        Returns ``(predictors, (lvt, vt0, tagged))`` with the stacked
        banks exposed for vector expressions over ``col()`` and for
        telemetry.
        """
        configs = [
            c if c is not None else BlockDVTAGEConfig() for c in configs
        ]
        if not configs:
            raise ValueError("batch_stack needs at least one config")
        c0 = configs[0]
        shape = (c0.npred, c0.base_entries, c0.tagged_entries, c0.components)
        for c in configs[1:]:
            if (c.npred, c.base_entries, c.tagged_entries,
                    c.components) != shape:
                raise ValueError(
                    "configs with different bank shapes cannot share a "
                    f"stack: {shape} != "
                    f"{(c.npred, c.base_entries, c.tagged_entries, c.components)}"
                )
        lvt_fields, vt0_fields, tagged_fields = dvtage_bank_fields(c0.npred)
        n = len(configs)
        lvt = make_bank(
            c0.base_entries, lvt_fields, backend=table_backend, variants=n
        )
        vt0 = make_bank(
            c0.base_entries, vt0_fields, backend=table_backend, variants=n
        )
        tagged = make_bank(
            c0.components * c0.tagged_entries,
            tagged_fields,
            backend=table_backend,
            variants=n,
        )
        predictors = [
            cls(
                config=c,
                seed=seed,
                banks=(lvt.view(v), vt0.view(v), tagged.view(v)),
            )
            for v, c in enumerate(configs)
        ]
        return predictors, (lvt, vt0, tagged)

    @staticmethod
    def batch_step(
        predictors,
        block_pc: int,
        hists,
        retired,
    ) -> list[tuple[BlockReadout, dict[int, int]]]:
        """One fetch read + compose + retire update across every variant.

        ``hists`` holds the per-variant :class:`HistoryState` (histories
        may diverge across variants once predictions alter branch
        resolution timing); ``retired`` the shared
        ``(boundary, actual)`` list.  This loop-of-views walk over
        :meth:`batch_stack` predictors is the authoritative batched
        reference for D-VTAGE — the fused walk in
        :mod:`repro.batch.runner` is the performance path and is held
        bit-identical to the scalar engine by the parity suite.

        Returns ``(readout, slot_actuals)`` per variant, predictions
        composed against the committed LVT last values.
        """
        out = []
        for v, pred in enumerate(predictors):
            readout = pred.read(block_pc, hists[v])
            pred.compose(readout, readout.lvt_last)
            out.append((readout, pred.update(readout, retired)))
        return out

    def storage_bits(self) -> int:
        """Bit-exact Table III accounting (without the speculative window —
        see :meth:`repro.bebop.spec_window.SpeculativeWindow.storage_bits`)."""
        c = self.config
        lvt_entry = c.npred * (64 + c.byte_tag_bits) + c.lvt_tag_bits
        vt0_entry = c.npred * (c.stride_bits + self.fpc.bits)
        bits = c.base_entries * (lvt_entry + vt0_entry)
        for comp in range(c.components):
            tagged_entry = (
                c.npred * (c.stride_bits + self.fpc.bits)
                + self.tag_bits[comp]
                + 1
            )
            bits += c.tagged_entries * tagged_entry
        return bits
