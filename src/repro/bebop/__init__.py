"""BeBoP: Block-Based value Prediction (paper §II and §IV).

Instead of one predictor entry per instruction, BeBoP keys the predictor on
the 16-byte *fetch block* PC; each entry holds ``Npred`` predictions that
are attributed to the block's result-producing µ-ops after decode by
matching instruction-boundary byte indexes against small per-prediction tags
(:mod:`repro.bebop.attribution`).  This reduces predictor ports to those of
a block-based branch predictor and makes a realistic *speculative window*
possible (:mod:`repro.bebop.spec_window`): a small chronologically ordered
associative buffer holding the predicted values of in-flight block
instances, which stride-based prediction needs when several instances of a
loop body are in flight.

:class:`~repro.bebop.predictor.BlockDVTAGE` is the block-based D-VTAGE;
:class:`~repro.bebop.engine.BeBoPEngine` glues predictor + speculative
window + FIFO update queue + recovery policy behind the pipeline-facing
adapter protocol.
"""

from repro.bebop.attribution import attribute_predictions
from repro.bebop.recovery import RecoveryPolicy
from repro.bebop.spec_window import SpeculativeWindow
from repro.bebop.update_queue import FifoUpdateQueue
from repro.bebop.predictor import BlockDVTAGE, BlockDVTAGEConfig
from repro.bebop.engine import BeBoPEngine

__all__ = [
    "attribute_predictions",
    "RecoveryPolicy",
    "SpeculativeWindow",
    "FifoUpdateQueue",
    "BlockDVTAGE",
    "BlockDVTAGEConfig",
    "BeBoPEngine",
]
