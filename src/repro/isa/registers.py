"""Architectural register namespace.

Sixteen integer registers (``r0``-``r15``) and sixteen floating-point
registers (``f0``-``f15``), identified by small integers ``0..31``.  FP
registers occupy the upper half of the id space.  There is no hardwired zero
register; workload kernels initialise what they use.
"""

from __future__ import annotations

NUM_INT_REGS = 16
NUM_FP_REGS = 16
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Integer register ids.
INT_REGS = tuple(range(NUM_INT_REGS))
#: Floating-point register ids.
FP_REGS = tuple(range(NUM_INT_REGS, NUM_ARCH_REGS))


def int_reg(index: int) -> int:
    """Return the register id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"FP register index out of range: {index}")
    return NUM_INT_REGS + index


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` names a floating-point register."""
    return reg >= NUM_INT_REGS


def reg_name(reg: int) -> str:
    """Human-readable name of a register id.

    >>> reg_name(3)
    'r3'
    >>> reg_name(17)
    'f1'
    """
    if not 0 <= reg < NUM_ARCH_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if is_fp_reg(reg):
        return f"f{reg - NUM_INT_REGS}"
    return f"r{reg}"
