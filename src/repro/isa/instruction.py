"""Static instructions, µ-op cracking and dynamic µ-ops.

An x86-like instruction is described statically (:class:`StaticInst`) by its
opcode, operands, byte length and PC.  At decode it *cracks* into a fixed
per-opcode sequence of µ-op templates (:func:`crack`), and at trace-generation
time each template instance becomes a :class:`DynMicroOp` carrying the actual
produced value, memory address or branch outcome — everything the timing model
and the value predictor need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Operation kinds of the synthetic ISA."""

    # Integer ALU (1-cycle).
    ADD = enum.auto()       # rd = ra + rb
    SUB = enum.auto()       # rd = ra - rb
    AND = enum.auto()       # rd = ra & rb
    OR = enum.auto()        # rd = ra | rb
    XOR = enum.auto()       # rd = ra ^ rb
    SHL = enum.auto()       # rd = ra << (rb & 63)
    SHR = enum.auto()       # rd = ra >> (rb & 63)
    ADDI = enum.auto()      # rd = ra + imm
    ANDI = enum.auto()      # rd = ra & imm
    XORI = enum.auto()      # rd = ra ^ imm
    # Load immediate (the "free load immediate prediction" case, §II-B3).
    LI = enum.auto()        # rd = imm
    # Integer multiply / divide.
    MUL = enum.auto()       # rd = ra * rb (low 64 bits)
    DIV = enum.auto()       # rd = ra / rb (0 if rb == 0)
    # divmod produces TWO results (quotient and remainder): exercises
    # multi-result instructions inside one fetch block.
    DIVMOD = enum.auto()    # rd = ra / rb ; rd2 = ra % rb
    # Floating point (modelled on 64-bit integers with FP latencies).
    FADD = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    # Memory.
    LOAD = enum.auto()      # rd = mem[ra + imm]
    STORE = enum.auto()     # mem[ra + imm] = rb     (cracks to 2 µ-ops)
    LOADADD = enum.auto()   # rd = mem[ra + imm] + rb (load-op, 2 µ-ops)
    # Control flow.  Targets are basic-block names resolved at layout time.
    BEQ = enum.auto()       # if ra == rb goto target
    BNE = enum.auto()
    BLT = enum.auto()       # signed <
    BGE = enum.auto()
    JMP = enum.auto()       # unconditional
    # Unpredictable value source (models data-dependent computation the
    # predictor cannot learn: hashing, RNG, compression state...).
    RAND = enum.auto()      # rd = next deterministic-pseudo-random value
    NOP = enum.auto()


class LatencyClass(enum.Enum):
    """Functional-unit classes (Table I of the paper).

    The latencies themselves (ALU 1c; Mul 3c / Div 25c not pipelined;
    FP 3c; FPMul 5c / FPDiv 10c not pipelined; loads from the cache model)
    live in the pipeline model, which owns unit counts and pipelining.
    """

    ALU = enum.auto()       # 4 units, 1 cycle
    MUL = enum.auto()       # the MulDiv unit, 3 cycles pipelined
    DIV = enum.auto()       # the MulDiv unit, 25 cycles, not pipelined
    FP = enum.auto()        # 2 units, 3 cycles
    FPMUL = enum.auto()     # 2 FPMulDiv units, 5 cycles
    FPDIV = enum.auto()     # FPMulDiv, 10 cycles, not pipelined
    MEM = enum.auto()       # loads/stores; latency from the cache model
    BRANCH = enum.auto()    # resolves on an ALU-like port, 1 cycle
    NONE = enum.auto()      # no execution (NOP)


#: Opcodes whose semantics are conditional branches.
CONDITIONAL_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
#: All control-flow opcodes.
BRANCH_OPCODES = CONDITIONAL_BRANCHES | {Opcode.JMP}


@dataclass(frozen=True)
class StaticInst:
    """One static instruction of a program.

    ``length`` is the encoded size in bytes (1-15): with 16-byte fetch blocks
    this is what makes boundary discovery non-trivial, as in x86.  ``pc`` is
    assigned when the enclosing :class:`~repro.isa.program.Program` is laid
    out.
    """

    opcode: Opcode
    dests: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    imm: int = 0
    target: str | None = None       # basic-block name for branches
    length: int = 4                 # encoded bytes, 1..15
    pc: int = -1                    # filled in by Program.layout()
    static_id: int = -1             # dense id, filled in by Program.layout()

    def __post_init__(self) -> None:
        if not 1 <= self.length <= 15:
            raise ValueError(f"instruction length must be 1..15, got {self.length}")
        if self.opcode in BRANCH_OPCODES and self.target is None:
            raise ValueError(f"{self.opcode.name} requires a target block")

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPCODES

    @property
    def is_conditional(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES


@dataclass(frozen=True)
class MicroOpTemplate:
    """One µ-op of a cracked instruction (static side).

    ``dest`` is the architectural destination register or ``None``.
    ``uop_index`` is the µ-op's position inside its parent instruction, used
    to XOR into predictor indexes for instruction-based VP (Section V-B).
    """

    uop_index: int
    dest: int | None
    srcs: tuple[int, ...]
    latency_class: LatencyClass
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_load_imm: bool = False

    @property
    def produces_value(self) -> bool:
        """True if this µ-op writes a register readable by later µ-ops,
        i.e. it is *eligible* for value prediction (Section V-B)."""
        return self.dest is not None


# Temporary (micro-architectural) registers used between µ-ops of one
# instruction; they live outside the architectural namespace.
TEMP_REG_BASE = 1000


def crack(inst: StaticInst) -> tuple[MicroOpTemplate, ...]:
    """Crack a static instruction into its µ-op templates.

    Mirrors typical x86 decomposition: plain ALU ops are one µ-op, stores
    split into address-generation and data µ-ops, load-op instructions split
    into a load and a dependent ALU op, ``DIVMOD`` emits two result-producing
    µ-ops.
    """
    op = inst.opcode
    if op is Opcode.NOP:
        return (MicroOpTemplate(0, None, (), LatencyClass.NONE),)
    if op in BRANCH_OPCODES:
        return (
            MicroOpTemplate(
                0, None, inst.srcs, LatencyClass.BRANCH, is_branch=True
            ),
        )
    if op is Opcode.LI:
        return (
            MicroOpTemplate(
                0, inst.dests[0], (), LatencyClass.ALU, is_load_imm=True
            ),
        )
    if op is Opcode.LOAD:
        return (
            MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.MEM, is_load=True),
        )
    if op is Opcode.STORE:
        # Address generation µ-op, then the store-data µ-op. Neither produces
        # a register value visible to later instructions.
        return (
            MicroOpTemplate(0, None, (inst.srcs[0],), LatencyClass.ALU),
            MicroOpTemplate(1, None, inst.srcs, LatencyClass.MEM, is_store=True),
        )
    if op is Opcode.LOADADD:
        temp = TEMP_REG_BASE
        return (
            MicroOpTemplate(0, temp, (inst.srcs[0],), LatencyClass.MEM, is_load=True),
            MicroOpTemplate(1, inst.dests[0], (temp, inst.srcs[1]), LatencyClass.ALU),
        )
    if op is Opcode.DIVMOD:
        return (
            MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.DIV),
            MicroOpTemplate(1, inst.dests[1], inst.srcs, LatencyClass.DIV),
        )
    if op is Opcode.MUL:
        return (MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.MUL),)
    if op is Opcode.DIV:
        return (MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.DIV),)
    if op is Opcode.FADD:
        return (MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.FP),)
    if op is Opcode.FMUL:
        return (MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.FPMUL),)
    if op is Opcode.FDIV:
        return (MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.FPDIV),)
    # Remaining integer ALU forms (ADD..XORI, RAND).
    return (MicroOpTemplate(0, inst.dests[0], inst.srcs, LatencyClass.ALU),)


class DynMicroOp:
    """One dynamic µ-op of the executed trace.

    This is the unit the pipeline model retires and the unit BeBoP attributes
    predictions to.  ``block_pc`` is the 16-byte-aligned fetch-block address
    and ``boundary`` the byte offset of the parent instruction inside that
    block — the tag BeBoP matches per-prediction tags against (§II-B1).
    """

    __slots__ = (
        "seq",
        "pc",
        "static_id",
        "uop_index",
        "inst_length",
        "block_pc",
        "boundary",
        "dest",
        "srcs",
        "value",
        "latency_class",
        "is_load",
        "is_store",
        "is_branch",
        "is_cond_branch",
        "is_load_imm",
        "mem_addr",
        "branch_taken",
        "branch_target",
        "is_first_uop",
        "is_last_uop",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        static_id: int,
        uop_index: int,
        inst_length: int,
        block_pc: int,
        boundary: int,
        dest: int | None,
        srcs: tuple[int, ...],
        value: int | None,
        latency_class: LatencyClass,
        is_load: bool = False,
        is_store: bool = False,
        is_branch: bool = False,
        is_cond_branch: bool = False,
        is_load_imm: bool = False,
        mem_addr: int | None = None,
        branch_taken: bool = False,
        branch_target: int = 0,
        is_first_uop: bool = True,
        is_last_uop: bool = True,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.static_id = static_id
        self.uop_index = uop_index
        self.inst_length = inst_length
        self.block_pc = block_pc
        self.boundary = boundary
        self.dest = dest
        self.srcs = srcs
        self.value = value
        self.latency_class = latency_class
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.is_cond_branch = is_cond_branch
        self.is_load_imm = is_load_imm
        self.mem_addr = mem_addr
        self.branch_taken = branch_taken
        self.branch_target = branch_target
        self.is_first_uop = is_first_uop
        self.is_last_uop = is_last_uop

    @property
    def produces_value(self) -> bool:
        """Eligible for value prediction: writes a 64-bit-or-less register."""
        return self.dest is not None

    @property
    def is_vp_eligible(self) -> bool:
        """Predictable by the value predictor.

        Load-immediates are excluded: their result is available in the
        front-end for free (§II-B3), so the predictor is neither trained nor
        queried for them.
        """
        return self.dest is not None and not self.is_load_imm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynMicroOp(seq={self.seq}, pc={self.pc:#x}.{self.uop_index}, "
            f"dest={self.dest}, value={self.value})"
        )
