"""A synthetic variable-length ISA in the spirit of x86_64.

BeBoP exists because real ISAs are messy: instructions have variable byte
lengths, are cracked into a variable number of µ-ops, and may produce several
results — so there is no natural one-to-one mapping between predictor entries
and PCs.  This package defines a compact ISA with exactly those properties:

* instructions are 1-15 bytes long, so a 16-byte fetch block holds a variable
  number of them and an instruction's byte offset inside its block (its
  *boundary*) is only known after pre-decode;
* each instruction cracks into 1-3 µ-ops, zero or more of which produce a
  64-bit register result (the value-predictable ones);
* conditional branches, loads/stores, integer and FP arithmetic with
  distinct latency classes are all present.

The static side (:class:`~repro.isa.instruction.StaticInst`,
:class:`~repro.isa.program.Program`) is what workload kernels are written in;
the dynamic side (:class:`~repro.isa.instruction.DynMicroOp`) is what the
trace generator emits and the pipeline model consumes.
"""

from repro.isa.instruction import (
    DynMicroOp,
    LatencyClass,
    MicroOpTemplate,
    Opcode,
    StaticInst,
    crack,
)
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import (
    FP_REGS,
    INT_REGS,
    NUM_ARCH_REGS,
    fp_reg,
    int_reg,
    reg_name,
)

__all__ = [
    "Opcode",
    "LatencyClass",
    "StaticInst",
    "MicroOpTemplate",
    "DynMicroOp",
    "crack",
    "BasicBlock",
    "Program",
    "INT_REGS",
    "FP_REGS",
    "NUM_ARCH_REGS",
    "int_reg",
    "fp_reg",
    "reg_name",
]
