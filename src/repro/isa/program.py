"""Static program representation: basic blocks laid out in memory.

A :class:`Program` is an ordered collection of named basic blocks.  Layout
assigns byte addresses to every instruction (respecting their variable
encoded lengths) and resolves branch targets from block names to PCs.  The
functional interpreter in :mod:`repro.workloads.trace` then walks the laid
out program to produce dynamic µ-op traces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.isa.instruction import StaticInst

#: Code starts here; a non-zero base catches accidental PC/index confusion.
CODE_BASE_ADDRESS = 0x40_0000


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending the block.

    Control can only enter at the first instruction.  If the last instruction
    is not a branch, control falls through to ``fallthrough`` (or the next
    block in program order when ``fallthrough`` is None).
    """

    name: str
    insts: list[StaticInst] = field(default_factory=list)
    fallthrough: str | None = None

    def add(self, inst: StaticInst) -> None:
        self.insts.append(inst)


class Program:
    """A laid-out program: blocks, PC-resolved instructions, entry point."""

    def __init__(self, blocks: list[BasicBlock], entry: str | None = None) -> None:
        if not blocks:
            raise ValueError("a program needs at least one basic block")
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate basic-block names in {names}")
        self.blocks = blocks
        self.entry = entry if entry is not None else blocks[0].name
        if self.entry not in set(names):
            raise ValueError(f"entry block {self.entry!r} not defined")
        self._block_by_name: dict[str, BasicBlock] = {b.name: b for b in blocks}
        self.block_start_pc: dict[str, int] = {}
        #: instructions in layout order with pc/static_id filled in
        self.insts: list[StaticInst] = []
        #: pc -> laid-out instruction
        self.inst_at: dict[int, StaticInst] = {}
        #: pc -> pc of the next instruction in layout order (fallthrough)
        self.next_pc: dict[int, int] = {}
        #: pc -> name of the fallthrough successor block for block enders
        self.block_fallthrough: dict[str, str | None] = {}
        self._layout()

    def _layout(self) -> None:
        """Assign PCs sequentially and resolve branch targets.

        Each block's instruction list is rewritten in place with the
        laid-out (pc- and id-carrying) copies, so walking either
        ``self.insts`` or ``block.insts`` sees the same objects.
        """
        pc = CODE_BASE_ADDRESS
        static_id = 0
        for index, block in enumerate(self.blocks):
            if not block.insts:
                raise ValueError(f"basic block {block.name!r} is empty")
            self.block_start_pc[block.name] = pc
            fall = block.fallthrough
            if fall is None and index + 1 < len(self.blocks):
                fall = self.blocks[index + 1].name
            self.block_fallthrough[block.name] = fall
            laid_out = []
            for inst in block.insts:
                if inst.target is not None and inst.target not in self._block_by_name:
                    raise ValueError(
                        f"branch in block {block.name!r} targets unknown "
                        f"block {inst.target!r}"
                    )
                laid_out.append(
                    dataclasses.replace(inst, pc=pc, static_id=static_id)
                )
                pc += inst.length
                static_id += 1
            block.insts[:] = laid_out
            self.insts.extend(laid_out)
        for i, inst in enumerate(self.insts):
            self.inst_at[inst.pc] = inst
            if i + 1 < len(self.insts):
                self.next_pc[inst.pc] = self.insts[i + 1].pc

    def target_pc(self, inst: StaticInst) -> int:
        """Resolved PC of a branch instruction's target block."""
        if inst.target is None:
            raise ValueError(f"instruction at {inst.pc:#x} has no target")
        return self.block_start_pc[inst.target]

    def successor_pc(self, inst: StaticInst) -> int:
        """PC control reaches when ``inst`` does not (or cannot) jump.

        For the last instruction of a block this follows the block's
        fallthrough edge; mid-block it is simply the next instruction.
        """
        if inst.pc in self.next_pc:
            nxt = self.next_pc[inst.pc]
            # Fallthrough must not silently cross into a block that is not
            # the declared successor; find the block this inst belongs to.
            return nxt
        raise ValueError(f"instruction at {inst.pc:#x} falls off the program")

    @property
    def entry_pc(self) -> int:
        return self.block_start_pc[self.entry]

    def code_bytes(self) -> int:
        """Total encoded size of the program."""
        return sum(inst.length for inst in self.insts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(blocks={len(self.blocks)}, insts={len(self.insts)}, "
            f"bytes={self.code_bytes()})"
        )
