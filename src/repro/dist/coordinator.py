"""The lease-based coordinator: work queue, expiry reaper, HTTP service.

:class:`LeaseQueue` is the whole distributed-correctness story in one
pure, single-threaded state machine: jobs move ``queued → leased → done``
(or ``failed`` once the retry budget is spent), a lease is held only as
long as its heartbeats keep arriving, and every transition is counted.
Time is an injectable ``clock`` callable, so lease expiry, backoff gating
and worker liveness are unit-testable by advancing a fake clock instead of
sleeping.

:class:`DistCoordinator` wraps the queue in the same hand-rolled
asyncio HTTP/1.1 shell :mod:`repro.serve.server` uses (stdlib only).  All
queue state is touched exclusively from the event loop — workers and the
driver interact over the ``/v1/dist/*`` routes, never by sharing memory —
which is what makes the coordinator equally correct embedded in the
driver process (:class:`CoordinatorThread`) or standing alone on another
host (``python -m repro.dist coordinator``).

Chaos verdicts are drawn **here**, at lease-grant time, from the
coordinator's own :class:`repro.chaos.FaultPlan`: the fault a job absorbs
is a pure function of ``(seed, digest, per-job ordinal)`` no matter which
worker steals the job or how often it is re-leased, and the plan's
``exec/fault/*`` accounting (including recoveries via ``note_outcome``)
lives in one place.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Callable, Sequence

import repro.obs as obs
from repro.common.rng import deterministic_backoff
from repro.exec.jobs import JobSpec
from repro.serve import protocol

#: HTTP reason phrases for the statuses the coordinator emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 502: "Bad Gateway",
}

#: Job states.
QUEUED, LEASED, DONE, FAILED = "queued", "leased", "done", "failed"


class _Job:
    """One cell's place in the queue (internal to :class:`LeaseQueue`)."""

    __slots__ = ("spec", "digest", "attempts", "not_before", "state",
                 "worker", "last_worker", "lease_expires", "error")

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.digest = spec.digest()
        self.attempts = 0          # leases charged against the retry budget
        self.not_before = 0.0      # backoff gate for the next lease
        self.state = QUEUED
        self.worker: str | None = None
        self.last_worker: str | None = None
        self.lease_expires = 0.0
        self.error: str | None = None


class LeaseQueue:
    """Pull-model work queue with heartbeat leases and bounded retry.

    Semantics:

    * :meth:`lease` hands out the oldest queued job whose backoff gate has
      passed; the job is **stolen**, not assigned — any worker may take it,
      and a job re-leased to a different worker than last time counts as a
      steal.
    * :meth:`heartbeat` extends a held lease by ``lease_seconds``; a lease
      whose holder stops heartbeating is expired by :meth:`reap`, charged
      one attempt, and re-queued behind
      :func:`~repro.common.rng.deterministic_backoff` — until the job has
      burned ``retries`` re-queues, after which it is terminally failed.
    * :meth:`complete` is **idempotent**: results are pure functions of
      their spec, so the first completion wins and any later one (a worker
      whose lease had already been stolen) is accepted as a no-op and
      counted ``stale_completions``.

    Every transition is mirrored into plain-int :attr:`counters` (always
    on) and ``dist/*`` obs counters (when the obs layer is enabled),
    including per-worker ``jobs`` / ``steals`` / ``lease_expired``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        lease_seconds: float = 30.0,
        retries: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        worker_ttl: float | None = None,
        chaos=None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.clock = clock
        self.lease_seconds = lease_seconds
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.worker_ttl = (worker_ttl if worker_ttl is not None
                           else 2.0 * lease_seconds)
        self.chaos = chaos
        self._jobs: dict[str, _Job] = {}
        self._order: list[str] = []            # submission order
        self._workers: dict[str, float] = {}   # worker id -> last seen
        self._fresh_results: list[dict] = []   # result docs not yet collected
        self._fresh_failures: list[dict] = []
        self.counters: dict[str, int] = {}
        self.worker_counters: dict[str, dict[str, int]] = {}

    # -- accounting --------------------------------------------------------

    def _count(self, name: str, worker: str | None = None) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1
        obs.counter(f"dist/{name}").inc()
        if worker is not None:
            per = self.worker_counters.setdefault(worker, {})
            per[name] = per.get(name, 0) + 1
            obs.counter(f"dist/worker/{worker}/{name}").inc()

    def touch_worker(self, worker: str) -> None:
        self._workers[worker] = self.clock()

    def live_workers(self) -> int:
        now = self.clock()
        return sum(1 for seen in self._workers.values()
                   if now - seen <= self.worker_ttl)

    # -- driver side -------------------------------------------------------

    def submit(self, specs: Sequence[JobSpec]) -> int:
        """Enqueue cells; digests already known are skipped.  Returns the
        number actually accepted."""
        accepted = 0
        for spec in specs:
            digest = spec.digest()
            if digest in self._jobs:
                continue
            self._jobs[digest] = _Job(spec)
            self._order.append(digest)
            accepted += 1
            self._count("jobs")
        return accepted

    def collect(self) -> tuple[list[dict], list[dict], int, int]:
        """Drain fresh outcomes: ``(result docs, failure docs, outstanding,
        live workers)``.  Each outcome is delivered exactly once."""
        results, self._fresh_results = self._fresh_results, []
        failures, self._fresh_failures = self._fresh_failures, []
        outstanding = sum(1 for job in self._jobs.values()
                          if job.state in (QUEUED, LEASED))
        return results, failures, outstanding, self.live_workers()

    def cancel(self) -> list[str]:
        """Terminally drop every unfinished job (driver gave up on the
        distributed path).  Returns the cancelled digests; cancelled jobs
        are *not* reported through :meth:`collect` — the canceller already
        knows."""
        cancelled = []
        for job in self._jobs.values():
            if job.state in (QUEUED, LEASED):
                job.state = FAILED
                job.error = "cancelled"
                cancelled.append(job.digest)
                self._count("cancelled")
        return cancelled

    # -- worker side -------------------------------------------------------

    def lease(self, worker: str) -> dict | None:
        """Grant the oldest ready job to ``worker``; ``None`` when idle.

        The chaos verdicts (job fault + cache-corruption mode) are drawn
        here and shipped inside the grant, so injection is independent of
        which worker asks.
        """
        self.touch_worker(worker)
        now = self.clock()
        for digest in self._order:
            job = self._jobs[digest]
            if job.state != QUEUED or job.not_before > now:
                continue
            job.state = LEASED
            job.worker = worker
            job.lease_expires = now + self.lease_seconds
            if job.last_worker is not None and job.last_worker != worker:
                self._count("steals", worker)
            self._count("leases", worker)
            fault = corrupt = None
            if self.chaos is not None:
                fault = self.chaos.job_fault(digest)
                corrupt = self.chaos.corrupt_verdict(digest)
            return protocol.encode_lease_grant(
                job.spec, job.attempts, self.lease_seconds,
                fault=fault, corrupt=corrupt,
            )
        return None

    def heartbeat(self, worker: str, digest: str) -> bool:
        """Extend a held lease; ``False`` when the lease is no longer
        this worker's (expired and stolen, or the job finished)."""
        self.touch_worker(worker)
        job = self._jobs.get(digest)
        if job is None or job.state != LEASED or job.worker != worker:
            return False
        job.lease_expires = self.clock() + self.lease_seconds
        return True

    def complete(self, worker: str, digest: str, result_doc: dict) -> str:
        """Record a verified completion; returns ``"ok"`` or ``"stale"``."""
        self.touch_worker(worker)
        job = self._jobs.get(digest)
        if job is None or job.state in (DONE, FAILED):
            self._count("stale_completions", worker)
            return "stale"
        # Accept even when the lease moved on: the result is deterministic,
        # and first-completion-wins is exactly the idempotence we want.
        job.state = DONE
        job.worker = None
        self._fresh_results.append(result_doc)
        self._count("completions", worker)
        if self.chaos is not None:
            self.chaos.note_outcome(digest)
        return "ok"

    def fail(self, worker: str, digest: str, error: str) -> None:
        """A worker reports a job raised; charge the attempt and re-queue."""
        self.touch_worker(worker)
        job = self._jobs.get(digest)
        if job is None or job.state in (DONE, FAILED):
            self._count("stale_completions", worker)
            return
        self._requeue(job, error)

    # -- expiry ------------------------------------------------------------

    def reap(self) -> int:
        """Expire leases whose heartbeats stopped; returns how many."""
        now = self.clock()
        expired = 0
        for job in self._jobs.values():
            if job.state == LEASED and job.lease_expires < now:
                self._count("lease_expired", job.worker)
                self._requeue(job, f"lease expired on {job.worker}")
                expired += 1
        for worker, seen in list(self._workers.items()):
            if now - seen > self.worker_ttl:
                del self._workers[worker]
        return expired

    def _requeue(self, job: _Job, error: str) -> None:
        job.attempts += 1
        job.last_worker, job.worker = job.worker, None
        if job.attempts > self.retries:
            job.state = FAILED
            job.error = error
            self._fresh_failures.append(
                {"digest": job.digest, "error": error}
            )
            self._count("failures")
            return
        job.state = QUEUED
        job.not_before = self.clock() + deterministic_backoff(
            job.digest, job.attempts, self.backoff_base, self.backoff_cap
        )
        self._count("requeues")

    # -- reporting ---------------------------------------------------------

    def leased(self) -> list[dict]:
        """The currently held leases (for status and leak checks)."""
        now = self.clock()
        return [
            {"digest": job.digest, "worker": job.worker,
             "expires_in": round(job.lease_expires - now, 3),
             "attempts": job.attempts}
            for job in self._jobs.values() if job.state == LEASED
        ]

    def status(self) -> dict:
        states: dict[str, int] = {QUEUED: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for job in self._jobs.values():
            states[job.state] += 1
        return {
            "v": protocol.PROTOCOL_VERSION,
            "jobs": states,
            "leases": self.leased(),
            "live_workers": self.live_workers(),
            "counters": dict(self.counters),
            "workers": {w: dict(c) for w, c in self.worker_counters.items()},
        }


class DistCoordinator:
    """The :class:`LeaseQueue` as an asyncio HTTP service.

    All queue mutation happens on the event loop; the only concurrency in
    the process is asyncio's own.  A background reaper expires leases
    every quarter lease period even when no request traffic arrives.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 30.0,
        retries: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        worker_ttl: float | None = None,
        chaos=None,
    ) -> None:
        self.queue = LeaseQueue(
            lease_seconds=lease_seconds, retries=retries,
            backoff_base=backoff_base, backoff_cap=backoff_cap,
            worker_ttl=worker_ttl, chaos=chaos,
        )
        self.host = host
        self.port = port
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._reaper: asyncio.Task | None = None
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, backlog=1024
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.get_running_loop().create_task(
            self._reap_forever()
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        self._closing = True
        self.draining = True
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close idle keep-alive connections at the transport so their
        # handlers see EOF and exit the read loop instead of being
        # cancelled by the closing event loop.
        for writer in list(self._connections.values()):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if self._connections:
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)

    async def _reap_forever(self) -> None:
        period = max(0.05, self.queue.lease_seconds / 4.0)
        while True:
            await asyncio.sleep(period)
            self.queue.reap()

    # -- HTTP plumbing (same shape as repro.serve.server) ------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections[task] = writer
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep = headers.get("connection", "").lower() != "close"
                await self._dispatch(method, path, body, writer)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            if len(headers) < 100:
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > protocol.MAX_BODY_BYTES:
            return method, path, headers, b"\x00" * (protocol.MAX_BODY_BYTES + 1)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        path, _, _query = path.partition("?")
        queue = self.queue
        try:
            queue.reap()  # lazy expiry: every request is a clock tick
            if path == protocol.ROUTE_DIST_SUBMIT:
                self._need(method, "POST")
                specs = protocol.decode_sweep(protocol.parse_json(body))
                accepted = queue.submit(specs)
                await self._send_json(writer, 200, {
                    "v": protocol.PROTOCOL_VERSION, "accepted": accepted,
                })
            elif path == protocol.ROUTE_DIST_LEASE:
                self._need(method, "POST")
                worker = protocol.decode_worker_doc(
                    protocol.parse_json(body), "lease"
                )
                grant = None if self.draining else queue.lease(worker)
                if grant is None:
                    grant = protocol.encode_lease_idle(drain=self.draining)
                await self._send_json(writer, 200, grant)
            elif path == protocol.ROUTE_DIST_HEARTBEAT:
                self._need(method, "POST")
                worker, digest = protocol.decode_heartbeat(
                    protocol.parse_json(body)
                )
                held = queue.heartbeat(worker, digest)
                await self._send_json(writer, 200, {
                    "v": protocol.PROTOCOL_VERSION, "held": held,
                })
            elif path == protocol.ROUTE_DIST_COMPLETE:
                self._need(method, "POST")
                worker, spec, _stats, result_doc, metrics = (
                    protocol.decode_complete(protocol.parse_json(body))
                )
                outcome = queue.complete(worker, spec.digest(), result_doc)
                if metrics and obs.enabled():
                    obs.registry().merge(metrics)
                await self._send_json(writer, 200, {
                    "v": protocol.PROTOCOL_VERSION, "outcome": outcome,
                })
            elif path == protocol.ROUTE_DIST_FAIL:
                self._need(method, "POST")
                worker, digest, error = protocol.decode_fail(
                    protocol.parse_json(body)
                )
                queue.fail(worker, digest, error)
                await self._send_json(writer, 200, {
                    "v": protocol.PROTOCOL_VERSION, "outcome": "ok",
                })
            elif path == protocol.ROUTE_DIST_COLLECT:
                self._need(method, "POST")
                results, failed, outstanding, live = queue.collect()
                await self._send_json(
                    writer, 200,
                    protocol.encode_collect_response(
                        results, failed, outstanding, live
                    ),
                )
            elif path == protocol.ROUTE_DIST_CANCEL:
                self._need(method, "POST")
                cancelled = queue.cancel()
                await self._send_json(writer, 200, {
                    "v": protocol.PROTOCOL_VERSION, "cancelled": cancelled,
                })
            elif path == protocol.ROUTE_DIST_STATUS:
                self._need(method, "GET")
                await self._send_json(writer, 200, queue.status())
            else:
                raise protocol.ProtocolError(f"no such route: {path}",
                                             status=404)
        except protocol.ProtocolError as exc:
            await self._send_json(writer, exc.status,
                                  protocol.encode_error(exc.status, str(exc)))
        except Exception as exc:
            await self._send_json(
                writer, 500,
                protocol.encode_error(500, f"{type(exc).__name__}: {exc}"),
            )

    def _need(self, method: str, expected: str) -> None:
        if method != expected:
            raise protocol.ProtocolError(
                f"method {method} not allowed (use {expected})", status=405
            )

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()


class CoordinatorThread:
    """A :class:`DistCoordinator` on a background thread (driver, tests).

    Usage::

        with CoordinatorThread(lease_seconds=5, chaos=plan) as coord:
            backend = DistBackend(coord.url)
            ...

    Entry guarantees the port is bound; exit tears down the loop (and
    flips the coordinator into drain mode, so polling workers exit).
    """

    def __init__(self, **kwargs) -> None:
        self.coordinator = DistCoordinator(**kwargs)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._main, name="dist-coordinator", daemon=True
        )
        self._error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.coordinator.url

    @property
    def queue(self) -> LeaseQueue:
        return self.coordinator.queue

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.coordinator.start()
        self._ready.set()
        await self._stop.wait()
        await self.coordinator.stop()

    def start(self) -> "CoordinatorThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("coordinator failed to start") from self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=30)

    def __enter__(self) -> "CoordinatorThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
