"""Pull-model distributed workers and their subprocess supervisor.

A :class:`DistWorker` is one consumer loop against a coordinator: lease a
job, heartbeat the lease from a side thread while computing, write the
result into the shared content-addressed cache and the worker's own
:class:`~repro.chaos.RunJournal`, then report completion — or report
failure and let the coordinator's retry machinery decide.  The loop is
deliberately run-anywhere: in a thread for tests (``in_process=True``
downgrades shipped crash/hang verdicts to transient exceptions, exactly
like the scheduler's serial path), or as a ``python -m repro.dist worker``
subprocess managed by :class:`WorkerPool`.

The chaos contract on the distributed path mirrors the local one, with
the *decision* made coordinator-side and shipped inside the lease:

* a ``crash`` verdict kills the worker process hard (``os._exit``) — no
  completion, no heartbeat, lease expires, job is re-queued elsewhere;
* a ``hang`` verdict sleeps past its budget and then surfaces as a
  transient failure (heartbeats keep the lease alive meanwhile — a
  sleeping worker is slow, not dead);
* a cache-corruption verdict is applied by the worker **after** storing
  its blob, then *proven handled*: the worker re-reads the blob (which
  quarantines it, counting ``exec/cache/corrupt``) and re-stores the
  clean result, so a corrupt blob is never served to anyone.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro.obs as obs
from repro.chaos.journal import RunJournal
from repro.chaos.plan import InjectedFault, apply_fault, corrupt_file
from repro.exec.cache import ResultCache
from repro.exec.jobs import run_job, run_job_observed
from repro.serve import protocol

#: Consecutive coordinator round-trip failures a worker tolerates before
#: giving up (the client's own retry/backoff runs *inside* each of these).
MAX_COORDINATOR_FAILURES = 5


class DistWorker:
    """One lease → compute → complete loop against a coordinator.

    Parameters
    ----------
    url:
        The coordinator's base URL.
    worker_id:
        Stable identity used for lease bookkeeping and per-worker metrics.
    cache:
        The shared :class:`ResultCache` results are written into (and
        consulted first — a job another worker already finished is served
        from disk, not recomputed).  ``None`` disables caching.
    journal:
        Optional per-worker :class:`RunJournal`; merged into the driver's
        resume state by :func:`repro.chaos.merge_journals`.
    job_fn:
        The cell executor (tests substitute counters/sleepers here).
    in_process:
        True when the worker runs as a thread of a larger process: crash
        and hang verdicts are downgraded to transient exceptions, since
        ``os._exit`` would take the host process with it.
    slowdown:
        Extra seconds slept inside every job — a testing knob that widens
        the window for SIGKILL/lease-expiry drills.
    max_idle:
        Exit after this many consecutive idle seconds (``None`` = wait for
        the coordinator's drain signal forever).
    """

    def __init__(
        self,
        url: str,
        worker_id: str,
        cache: ResultCache | None = None,
        journal: RunJournal | None = None,
        job_fn=run_job,
        poll_interval: float = 0.05,
        in_process: bool = False,
        slowdown: float = 0.0,
        max_idle: float | None = None,
    ) -> None:
        from repro.dist.backend import DistClient

        self.url = url
        self.worker_id = protocol.validate_worker(worker_id)
        self.cache = cache
        self.journal = journal
        self.job_fn = job_fn
        self.poll_interval = poll_interval
        self.in_process = in_process
        self.slowdown = slowdown
        self.max_idle = max_idle
        self.client = DistClient(url)
        # Heartbeats ride their own connection: the main client is busy
        # holding no request while computing, but keeping the two streams
        # separate means a slow completion upload never delays a beat.
        self._hb_client = DistClient(url)
        self._stop = threading.Event()
        self.completed = 0
        self.failed = 0

    def stop(self) -> None:
        self._stop.set()

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Consume jobs until drained/stopped; returns jobs completed."""
        idle_since: float | None = None
        coordinator_failures = 0
        while not self._stop.is_set():
            try:
                order, drain = self.client.dist_lease(self.worker_id)
                coordinator_failures = 0
            except Exception:
                coordinator_failures += 1
                if coordinator_failures >= MAX_COORDINATOR_FAILURES:
                    break
                time.sleep(self.poll_interval)
                continue
            if order is None:
                if drain:
                    break
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (self.max_idle is not None
                      and now - idle_since > self.max_idle):
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            self._run_order(order)
        self.client.close()
        self._hb_client.close()
        return self.completed

    def _run_order(self, order: protocol.WorkOrder) -> None:
        digest = order.digest
        beat = self._start_heartbeat(digest, order.lease_seconds)
        try:
            stats, metrics = self._execute(order)
            if self.journal is not None:
                self.journal.record(order.spec, stats)
            self.client.dist_complete(self.worker_id, order.spec, stats,
                                      metrics)
            self.completed += 1
        except Exception as exc:
            self.failed += 1
            try:
                self.client.dist_fail(self.worker_id, digest, repr(exc))
            except Exception:
                pass  # coordinator gone; the lease will expire on its own
        finally:
            beat.set()

    def _start_heartbeat(self, digest: str, lease_seconds: float
                         ) -> threading.Event:
        """Beat the held lease from a side thread until the event is set."""
        done = threading.Event()
        period = max(0.02, lease_seconds / 3.0)

        def _beat() -> None:
            while not done.wait(period):
                try:
                    if not self._hb_client.dist_heartbeat(self.worker_id,
                                                          digest):
                        return  # lease lost: stop beating a dead horse
                except Exception:
                    return

        threading.Thread(target=_beat, name=f"hb-{self.worker_id}",
                         daemon=True).start()
        return done

    # -- executing one order -----------------------------------------------

    def _execute(self, order: protocol.WorkOrder):
        """Run one leased job; returns ``(stats, metrics snapshot)``."""
        if order.fault is not None:
            action = order.fault
            if self.in_process and action.kind in ("crash", "hang"):
                # A threaded worker cannot survive os._exit / a long sleep;
                # downgrade like the scheduler's serial path does.
                raise InjectedFault(
                    f"injected {action.kind} (downgraded in-process)"
                )
            apply_fault(action)   # crash never returns; hang raises late
        if self.slowdown > 0:
            time.sleep(self.slowdown)
        spec = order.spec
        hit = self.cache.get(spec) if self.cache is not None else None
        if hit is not None:
            return hit, {}
        if obs.enabled():
            stats, metrics = run_job_observed(self.job_fn, spec)
        else:
            stats, metrics = self.job_fn(spec), {}
        if self.cache is not None:
            self.cache.put(spec, stats)
            if order.corrupt is not None:
                self._prove_corruption_handled(spec, order.corrupt)
        return stats, metrics

    def _prove_corruption_handled(self, spec, mode: str) -> None:
        """Apply the shipped corruption verdict, then repair through the
        cache's own integrity machinery.

        The re-read *must* miss (quarantining the damaged blob into
        ``corrupt/`` and counting ``exec/cache/corrupt``); the clean
        result is then re-stored, so no reader anywhere can ever be served
        the corrupted bytes.
        """
        corrupt_file(self.cache.blob_path(spec.digest()), mode)
        reread = self.cache.get(spec)   # quarantines; returns None
        if reread is None:
            self.cache.put(spec, self.job_fn(spec))


class WorkerPool:
    """Spawn + supervise ``python -m repro.dist worker`` subprocesses.

    A monitor thread respawns workers that exit unexpectedly (each
    respawn gets a fresh worker id, so the dead incarnation's leases are
    attributed — and expired — under the old name), bounded by
    ``max_respawns`` across the pool.  :meth:`kill` SIGKILLs one worker,
    which is how the chaos drills and the CI smoke simulate hard node
    loss.
    """

    def __init__(
        self,
        url: str,
        workers: int,
        cache_root: str | None = None,
        journal_dir: str | Path | None = None,
        respawn: bool = True,
        max_respawns: int = 3,
        poll_interval: float = 0.05,
        slowdown: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.url = url
        self.workers = workers
        self.cache_root = cache_root
        self.journal_dir = Path(journal_dir) if journal_dir else None
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.poll_interval = poll_interval
        self.slowdown = slowdown
        self.respawns = 0
        self._procs: list[subprocess.Popen | None] = [None] * workers
        self._incarnation = [0] * workers
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, idx: int) -> subprocess.Popen:
        incarnation = self._incarnation[idx]
        worker_id = (f"w{idx}" if incarnation == 0
                     else f"w{idx}r{incarnation}")
        import repro
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable, "-m", "repro.dist", "worker",
            "--coordinator-url", self.url,
            "--worker-id", worker_id,
            "--poll-interval", str(self.poll_interval),
        ]
        if self.cache_root:
            cmd += ["--cache-dir", str(self.cache_root)]
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            cmd += ["--journal", str(self.journal_dir / f"{worker_id}.jsonl")]
        if self.slowdown > 0:
            cmd += ["--slowdown", str(self.slowdown)]
        return subprocess.Popen(cmd, env=env)

    def start(self) -> "WorkerPool":
        for idx in range(self.workers):
            self._procs[idx] = self._spawn(idx)
        self._monitor = threading.Thread(
            target=self._monitor_main, name="dist-worker-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _monitor_main(self) -> None:
        while not self._stopping.wait(0.2):
            for idx, proc in enumerate(self._procs):
                if proc is None or proc.poll() is None:
                    continue
                if not self.respawn or self.respawns >= self.max_respawns:
                    self._procs[idx] = None
                    continue
                self.respawns += 1
                obs.counter("dist/worker_respawns").inc()
                self._incarnation[idx] += 1
                self._procs[idx] = self._spawn(idx)

    def live_count(self) -> int:
        return sum(1 for p in self._procs
                   if p is not None and p.poll() is None)

    def kill(self, idx: int = 0) -> int | None:
        """SIGKILL one worker (hard node loss); returns its pid."""
        proc = self._procs[idx]
        if proc is None or proc.poll() is not None:
            return None
        proc.kill()
        proc.wait(timeout=30)
        return proc.pid

    def stop(self) -> None:
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
        for proc in self._procs:
            if proc is None:
                continue
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            if proc is None:
                continue
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - wedged
                proc.kill()
                proc.wait(timeout=10)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
