"""Command line entry points for the distributed sweep layer.

Two subcommands::

    # A standalone coordinator (the driver usually embeds one instead):
    python -m repro.dist coordinator --port 8200 --lease-seconds 30

    # One pull-model worker against a coordinator:
    python -m repro.dist worker --coordinator-url http://host:8200 \
        --cache-dir /shared/cache --journal /shared/journals/w0.jsonl

Workers exit on the coordinator's drain signal, after ``--max-idle``
seconds without work, or on SIGTERM; their exit code is 0 when every job
they took either completed or was handed back through the retry
machinery.  ``examples/run_experiments.py --dist-workers N`` wires all of
this together (embedded coordinator + local worker pool) in one flag.
"""

from __future__ import annotations

import argparse
import asyncio
import sys


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.chaos.journal import RunJournal
    from repro.dist.worker import DistWorker
    from repro.exec.cache import ResultCache

    cache = (ResultCache(root=args.cache_dir) if args.cache_dir
             else ResultCache())
    journal = RunJournal(args.journal) if args.journal else None
    worker = DistWorker(
        args.coordinator_url,
        args.worker_id,
        cache=cache,
        journal=journal,
        poll_interval=args.poll_interval,
        slowdown=args.slowdown,
        max_idle=args.max_idle,
    )
    try:
        completed = worker.run()
    finally:
        if journal is not None:
            journal.close()
    print(f"[dist] worker {args.worker_id}: {completed} job(s) completed, "
          f"{worker.failed} failure(s) reported", file=sys.stderr)
    return 0


def _cmd_coordinator(args: argparse.Namespace) -> int:
    from repro.chaos import FaultPlan, parse_chaos_spec
    from repro.dist.coordinator import DistCoordinator

    chaos = (FaultPlan(parse_chaos_spec(args.chaos))
             if args.chaos else None)
    coordinator = DistCoordinator(
        host=args.host, port=args.port,
        lease_seconds=args.lease_seconds, retries=args.retries,
        backoff_base=args.backoff_base, backoff_cap=args.backoff_cap,
        chaos=chaos,
    )

    async def _serve() -> None:
        await coordinator.start()
        print(f"[dist] coordinator listening on {coordinator.url}",
              file=sys.stderr)
        try:
            await asyncio.Event().wait()
        finally:
            await coordinator.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist",
        description="distributed sweep coordinator and workers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="run one pull-model worker")
    worker.add_argument("--coordinator-url", required=True,
                        help="base URL of the coordinator")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker identity (default: host-pid)")
    worker.add_argument("--cache-dir", default=None,
                        help="shared result-cache root")
    worker.add_argument("--journal", default=None,
                        help="per-worker run journal path")
    worker.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between idle lease polls")
    worker.add_argument("--slowdown", type=float, default=0.0,
                        help="extra seconds slept per job (testing knob)")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many idle seconds")
    worker.set_defaults(func=_cmd_worker)

    coord = sub.add_parser("coordinator", help="run a standalone coordinator")
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=8200)
    coord.add_argument("--lease-seconds", type=float, default=30.0)
    coord.add_argument("--retries", type=int, default=3,
                       help="re-queues per job before terminal failure")
    coord.add_argument("--backoff-base", type=float, default=0.5)
    coord.add_argument("--backoff-cap", type=float, default=30.0)
    coord.add_argument("--chaos", default=None, metavar="SPEC",
                       help="fault plan, e.g. 'crash=0.2,corrupt=0.3,seed=7'")
    coord.set_defaults(func=_cmd_coordinator)

    args = parser.parse_args(argv)
    if args.command == "worker" and args.worker_id is None:
        import os
        import socket
        args.worker_id = f"{socket.gethostname()[:40]}-{os.getpid()}"
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
