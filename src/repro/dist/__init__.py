"""Distributed work-stealing sweep execution with lease-based fault tolerance.

The local :class:`repro.exec.Scheduler` fans cells out over one machine's
process pool; this package fans the *same* cells out over any number of
worker processes — on this host or others sharing the cache root — while
keeping every guarantee the local path has (determinism, bounded failure,
zero recompute, crash-safe resume).  Three pieces:

* :mod:`repro.dist.coordinator` — :class:`LeaseQueue`, a pure in-memory
  lease state machine (injectable clock, so expiry is unit-testable
  without sleeping), wrapped by :class:`DistCoordinator`, an asyncio HTTP
  service speaking the ``/v1/dist/*`` routes of
  :mod:`repro.serve.protocol`.
* :mod:`repro.dist.worker` — :class:`DistWorker`, the pull-model worker
  loop (lease → heartbeat → compute → cache → journal → complete), and
  :class:`WorkerPool`, a subprocess supervisor that spawns and respawns
  ``python -m repro.dist worker`` processes.
* :mod:`repro.dist.backend` — :class:`DistBackend`, a
  :class:`repro.exec.SchedulerBackend` that submits a scheduler's pending
  cells to a coordinator and collects verified results, plus
  :class:`DistClient`, the :class:`repro.serve.ServeClient` subclass
  carrying the dist routes.

The fault model is **pull + lease**: workers *steal* jobs (no static
sharding — a slow or dead worker never strands its share), prove liveness
by heartbeating each held lease, and a lease whose heartbeats stop is
expired by the coordinator's reaper and re-queued behind a deterministic
exponential backoff, up to a bounded retry budget.  Results are verified
end to end (the completion document carries the cache blob's own sha256
payload checksum) and completions are idempotent: a job is a pure
function of its spec, so a completion arriving after the lease was stolen
is simply accepted once and counted ``dist/stale_completions`` after
that.  Losing *every* worker degrades the driver gracefully back to the
local pool with a warning — a distributed sweep can end slow, but not
wrong and not wedged.
"""

from repro.dist.backend import DistBackend, DistClient
from repro.dist.coordinator import (
    CoordinatorThread,
    DistCoordinator,
    LeaseQueue,
)
from repro.dist.worker import DistWorker, WorkerPool

__all__ = [
    "CoordinatorThread",
    "DistBackend",
    "DistClient",
    "DistCoordinator",
    "DistWorker",
    "LeaseQueue",
    "WorkerPool",
]
