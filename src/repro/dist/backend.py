"""The driver's side of a distributed sweep: client + scheduler backend.

:class:`DistClient` extends :class:`repro.serve.ServeClient` with the
``/v1/dist/*`` routes, inheriting its keep-alive connection, its bounded
backoff retry policy for transient failures, and its verify-everything
decoding discipline.

:class:`DistBackend` plugs into :class:`repro.exec.Scheduler` through the
:class:`~repro.exec.SchedulerBackend` seam: the scheduler still owns
every policy decision (cache/journal pre-checks, completion checkpoints,
progress), and this backend only changes *where* the pending cells
execute.  It submits them to a coordinator, then polls ``collect`` —
verifying each returned result document end to end — and feeds finished
cells back through ``sched._complete`` exactly like the local paths do,
so reports stay byte-identical to a serial run.

Degradation is explicit and total-ordered: a job the coordinator
terminally failed, or every job still outstanding once no live worker has
been seen for ``degrade_after`` seconds, is cancelled remotely and
recomputed through the ordinary :class:`~repro.exec.LocalPoolBackend` —
with a warning on stderr and a ``dist/fallback_jobs`` count, never
silently.
"""

from __future__ import annotations

import sys
import time
from typing import Sequence

import repro.obs as obs
from repro.exec.jobs import JobSpec
from repro.exec.scheduler import LocalPoolBackend, SchedulerBackend
from repro.serve import protocol
from repro.serve.client import ServeClient


class DistClient(ServeClient):
    """A :class:`ServeClient` that also speaks the coordinator routes."""

    # -- driver side -------------------------------------------------------

    def dist_submit(self, specs: Sequence[JobSpec]) -> int:
        """Enqueue cells on the coordinator; returns how many were new."""
        doc = self._request("POST", protocol.ROUTE_DIST_SUBMIT,
                            protocol.encode_sweep(list(specs)))
        return int(doc.get("accepted", 0))

    def dist_collect(self):
        """Poll finished work: ``(verified (spec, stats) pairs,
        (digest, error) failures, outstanding, live_workers)``."""
        doc = self._request("POST", protocol.ROUTE_DIST_COLLECT,
                            {"v": protocol.PROTOCOL_VERSION})
        return protocol.decode_collect_response(doc)

    def dist_cancel(self) -> list[str]:
        doc = self._request("POST", protocol.ROUTE_DIST_CANCEL,
                            {"v": protocol.PROTOCOL_VERSION})
        cancelled = doc.get("cancelled")
        return [d for d in cancelled if protocol.is_digest(d)] \
            if isinstance(cancelled, list) else []

    def dist_status(self) -> dict:
        return self._request("GET", protocol.ROUTE_DIST_STATUS)

    # -- worker side -------------------------------------------------------

    def dist_lease(self, worker: str):
        """Ask for work: ``(WorkOrder or None, drain flag)``."""
        doc = self._request("POST", protocol.ROUTE_DIST_LEASE,
                            protocol.encode_worker_doc(worker))
        return protocol.decode_lease(doc)

    def dist_heartbeat(self, worker: str, digest: str) -> bool:
        doc = self._request("POST", protocol.ROUTE_DIST_HEARTBEAT,
                            protocol.encode_heartbeat(worker, digest))
        return bool(doc.get("held"))

    def dist_complete(self, worker: str, spec: JobSpec, stats,
                      metrics: dict | None = None) -> str:
        doc = self._request(
            "POST", protocol.ROUTE_DIST_COMPLETE,
            protocol.encode_complete(worker, spec, stats, metrics),
        )
        return str(doc.get("outcome", "ok"))

    def dist_fail(self, worker: str, digest: str, error: str) -> None:
        self._request("POST", protocol.ROUTE_DIST_FAIL,
                      protocol.encode_fail(worker, digest, error))


class DistBackend(SchedulerBackend):
    """Execute a scheduler's pending cells on distributed workers.

    ``writes_cache`` is set: workers store results into the shared cache
    root themselves, so the scheduler must not double-store (and the
    driver's cache instance would be writing blobs that already exist).
    ``supports_batch`` is not: the fused batched walk assumes local
    execution; distributed cells go through the per-job boundary workers
    own.
    """

    name = "dist"
    writes_cache = True
    supports_batch = False

    def __init__(self, coordinator_url: str, poll_interval: float = 0.05,
                 degrade_after: float = 15.0) -> None:
        self.coordinator_url = coordinator_url
        self.poll_interval = poll_interval
        self.degrade_after = degrade_after
        self._client: DistClient | None = None

    @property
    def client(self) -> DistClient:
        if self._client is None:
            self._client = DistClient(self.coordinator_url)
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    # -- the backend contract ---------------------------------------------

    def execute(self, sched, specs, pending, results) -> None:
        client = self.client
        by_digest: dict[str, list[int]] = {}
        for i in pending:
            by_digest.setdefault(specs[i].digest(), []).append(i)
        client.dist_submit([specs[idxs[0]] for idxs in by_digest.values()])

        done: set[str] = set()
        fallback: list[int] = []
        stall_since: float | None = None
        while len(done) < len(by_digest):
            fresh, failed, _outstanding, live = self._absorb(
                client.dist_collect(), by_digest, done, fallback,
                sched, specs, results,
            )
            if len(done) >= len(by_digest):
                break
            if live > 0 or fresh or failed:
                stall_since = None
            else:
                now = time.monotonic()
                if stall_since is None:
                    stall_since = now
                elif now - stall_since >= self.degrade_after:
                    self._degrade(client, by_digest, done, fallback,
                                  sched, specs, results)
                    break
            time.sleep(self.poll_interval)

        if fallback:
            self._run_fallback(sched, specs, sorted(fallback), results)

    # -- pieces ------------------------------------------------------------

    def _absorb(self, collected, by_digest, done, fallback,
                sched, specs, results):
        """Fold one collect response into the result slots."""
        res, failed, outstanding, live = collected
        for spec, stats in res:
            digest = spec.digest()
            if digest not in by_digest or digest in done:
                continue
            done.add(digest)
            for i in by_digest[digest]:
                results[i] = stats
                sched._complete(i, specs, results)
        for digest, error in failed:
            if digest not in by_digest or digest in done:
                continue
            done.add(digest)
            # The coordinator exhausted this job's distributed retry
            # budget; recompute locally rather than losing the sweep.
            print(f"[dist] job {digest[:12]}… failed remotely ({error}); "
                  f"recomputing locally", file=sys.stderr)
            fallback.extend(by_digest[digest])
        return res, failed, outstanding, live

    def _degrade(self, client, by_digest, done, fallback,
                 sched, specs, results) -> None:
        """All workers lost: cancel outstanding work, finish locally."""
        outstanding = len(by_digest) - len(done)
        print(f"[dist] no live workers for {self.degrade_after:.1f}s with "
              f"{outstanding} job(s) outstanding — degrading to the local "
              f"pool backend", file=sys.stderr)
        obs.counter("dist/degraded").inc()
        client.dist_cancel()
        # Scoop results that completed between the last poll and the
        # cancel, so nothing already computed is recomputed.
        self._absorb(client.dist_collect(), by_digest, done, fallback,
                     sched, specs, results)
        for digest, idxs in by_digest.items():
            if digest not in done:
                done.add(digest)
                fallback.extend(idxs)

    def _run_fallback(self, sched, specs, fallback, results) -> None:
        obs.counter("dist/fallback_jobs").inc(len(fallback))
        LocalPoolBackend().execute(sched, specs, fallback, results)
        # This backend declares writes_cache, so the scheduler will not
        # store these locally computed cells; do it here.
        if sched.cache is not None:
            for i in fallback:
                sched.cache.put(specs[i], results[i])
