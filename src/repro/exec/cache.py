"""Content-addressed on-disk result store.

Finished cells never recompute: results are JSON blobs keyed by the
:meth:`JobSpec.digest` under a per-code-version directory, so

* a warm re-run of ``examples/run_experiments.py`` costs file reads only;
* bumping :data:`CODE_VERSION` (whenever simulator semantics change in a
  way that alters results) orphans every old blob instead of serving
  stale numbers — old version directories can simply be deleted;
* ``rm -rf ~/.cache/repro-bebop`` (or the directory named by
  ``$REPRO_BEBOP_CACHE``) is always a safe full invalidation.

Writes are atomic (temp file + rename) so a crashed or parallel writer
can never leave a half-written blob that a later reader trusts; corrupt
blobs are treated as misses and deleted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import repro.obs as obs
from repro.pipeline import SimStats
from repro.exec.jobs import JobSpec, stats_from_dict, stats_to_dict

#: Salt mixed into every cache path.  Bump on any change to the simulator
#: that alters results for an unchanged JobSpec.
CODE_VERSION = "1"

#: Environment variable overriding the default cache root.
CACHE_ENV = "REPRO_BEBOP_CACHE"


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-bebop"


class ResultCache:
    """JSON-blob store consulted before dispatch, written after completion.

    Counters (``hits`` / ``misses`` / ``stores`` / ``evictions``) cover the
    lifetime of this instance; :meth:`summary` renders them for reports.
    ``max_entries`` bounds the version directory — oldest blobs (by mtime)
    are evicted once the bound is exceeded.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        version: str = CODE_VERSION,
        max_entries: int | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.version = version
        self.dir = self.root / f"v{version}"
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _path(self, spec: JobSpec) -> Path:
        return self.dir / f"{spec.digest()}.json"

    def get(self, spec: JobSpec) -> SimStats | None:
        """The cached result of ``spec``, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            with open(path) as f:
                blob = json.load(f)
            stats = stats_from_dict(blob["stats"])
        except FileNotFoundError:
            self.misses += 1
            obs.counter("exec/cache/misses").inc()
            return None
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            # Corrupt or foreign blob: drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            obs.counter("exec/cache/misses").inc()
            return None
        self.hits += 1
        obs.counter("exec/cache/hits").inc()
        return stats

    def put(self, spec: JobSpec, stats: SimStats) -> None:
        """Store a finished result (atomic: temp file + rename)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(spec)
        blob = {"spec": spec.as_dict(), "stats": stats_to_dict(stats)}
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump(blob, f)
        os.replace(tmp, path)
        self.stores += 1
        obs.counter("exec/cache/stores").inc()
        if self.max_entries is not None:
            self.prune(self.max_entries)

    def prune(self, max_entries: int) -> int:
        """Evict oldest blobs until at most ``max_entries`` remain."""
        blobs = sorted(self.dir.glob("*.json"),
                       key=lambda p: (p.stat().st_mtime, p.name))
        evicted = 0
        for path in blobs[: max(0, len(blobs) - max_entries)]:
            path.unlink(missing_ok=True)
            evicted += 1
        self.evictions += evicted
        if evicted:
            obs.counter("exec/cache/evictions").inc(evicted)
        return evicted

    def clear(self) -> int:
        """Remove every blob of this cache's version; returns the count."""
        removed = 0
        if self.dir.is_dir():
            for path in self.dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*.json"))

    def summary(self) -> str:
        return (
            f"cache {self.dir}: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored, {self.evictions} evicted"
        )
