"""Content-addressed on-disk result store with payload integrity checking.

Finished cells never recompute: results are JSON blobs keyed by the
:meth:`JobSpec.digest` under a per-code-version directory, so

* a warm re-run of ``examples/run_experiments.py`` costs file reads only;
* bumping :data:`CODE_VERSION` (whenever simulator semantics change in a
  way that alters results) orphans every old blob instead of serving
  stale numbers — old version directories can simply be deleted;
* ``rm -rf ~/.cache/repro-bebop`` (or the directory named by
  ``$REPRO_BEBOP_CACHE``) is always a safe full invalidation.

Writes are atomic (temp file + rename, with the temp file unlinked even
when serialization dies mid-way) so a crashed or parallel writer can never
leave a half-written blob that a later reader trusts.  Every blob carries
a sha256 checksum of its ``{"spec", "stats"}`` payload, verified on
:meth:`ResultCache.get`: a blob that fails to parse *or* fails its
checksum is treated as a miss and **quarantined** into a ``corrupt/``
subdirectory — never silently deleted — so corruption stays diagnosable
(``exec/cache/corrupt`` counts each quarantine).  The optional ``chaos``
hook lets a :class:`repro.chaos.FaultPlan` corrupt freshly written blobs
on purpose, which is how the chaos suite proves all of the above.

The store is built to be **shared**: blobs are sharded into 256
subdirectories by the first two hex digits of their digest (so thousands
of concurrent :mod:`repro.serve` clients never contend on one flat
directory), legacy flat blobs are migrated into their shards the first
time a cache is opened on an old root, and every maintenance scan
(:meth:`prune`, :meth:`clear`, the stale-tmp sweep) tolerates entries
vanishing underneath it — another process pruning the same root is
ordinary operation, not an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import repro.obs as obs
from repro.pipeline import SimStats
from repro.exec.jobs import JobSpec, stats_from_dict, stats_to_dict

#: Salt mixed into every cache path.  Bump on any change to the simulator
#: that alters results for an unchanged JobSpec, or to the blob format.
#: ("2": blobs gained the sha256 payload checksum.)
CODE_VERSION = "2"

#: Environment variable overriding the default cache root.
CACHE_ENV = "REPRO_BEBOP_CACHE"

#: Generic shared-root override: lets a :mod:`repro.serve` server and its
#: CLI clients point at one cache root without threading ``--cache-dir``
#: through every entry point.  Consulted after :data:`CACHE_ENV`.
CACHE_ENV_SHARED = "REPRO_CACHE_DIR"

#: Subdirectory (under the version dir) quarantined corrupt blobs go to.
QUARANTINE_DIR = "corrupt"

#: Blobs are sharded by this many leading hex digits of the digest.
SHARD_CHARS = 2

#: Glob matching blob paths across every shard directory.
_SHARD_GLOB = "[0-9a-f]" * SHARD_CHARS + "/*.json"


def default_cache_root() -> Path:
    """The cache root, resolved with documented precedence.

    1. an explicit ``root=`` argument (the caller never reaches here);
    2. ``$REPRO_BEBOP_CACHE`` — the project-specific override;
    3. ``$REPRO_CACHE_DIR`` — the generic shared-root override, meant for
       pointing a sweep server and many CLI clients at one root;
    4. ``~/.cache/repro-bebop``.
    """
    for env in (CACHE_ENV, CACHE_ENV_SHARED):
        value = os.environ.get(env)
        if value:
            return Path(value)
    return Path.home() / ".cache" / "repro-bebop"


def payload_checksum(payload: dict) -> str:
    """sha256 over the canonical JSON of a ``{"spec", "stats"}`` payload.

    The same canonicalisation (sorted keys, tight separators) is used by
    the result cache and the run journal, so a record can be verified by
    whichever layer reads it back.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON-blob store consulted before dispatch, written after completion.

    Counters (``hits`` / ``misses`` / ``stores`` / ``evictions`` /
    ``corrupt``) cover the lifetime of this instance; :meth:`summary`
    renders them for reports.  ``max_entries`` bounds the version
    directory — oldest blobs (by mtime) are evicted once the bound is
    exceeded.  ``chaos`` is an optional :class:`repro.chaos.FaultPlan`
    that may deliberately corrupt blobs right after they are stored
    (``None``, the default, costs one attribute check).
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        version: str = CODE_VERSION,
        max_entries: int | None = None,
        chaos=None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.version = version
        self.dir = self.root / f"v{version}"
        self.max_entries = max_entries
        self.chaos = chaos
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        self._migrate_flat_blobs()
        self._sweep_stale_tmp()

    def _migrate_flat_blobs(self) -> None:
        """Move legacy flat ``<digest>.json`` blobs into their shards.

        Caches written before sharding kept every blob directly under the
        version directory; opening such a root migrates them in place
        (atomic per-blob rename) so old results keep being served.  A
        concurrent migrator racing on the same root is harmless: whoever
        renames first wins, the loser's source has simply vanished.
        """
        if not self.dir.is_dir():
            return
        for path in self.dir.glob("*.json"):
            shard = self.dir / path.name[:SHARD_CHARS]
            try:
                shard.mkdir(parents=True, exist_ok=True)
                os.replace(path, shard / path.name)
            except OSError:  # pragma: no cover - racing migrator, fine
                pass

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp<pid>`` litter a crashed writer may have left."""
        if not self.dir.is_dir():
            return
        for pattern in ("*.tmp*", "[0-9a-f]" * SHARD_CHARS + "/*.tmp*"):
            for path in self.dir.glob(pattern):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing writer, fine
                    pass

    def _path(self, spec: JobSpec) -> Path:
        return self.blob_path(spec.digest())

    def blob_path(self, digest: str) -> Path:
        """The sharded on-disk path a digest's blob lives (or would live) at.

        Public because distributed workers need the location of a blob
        they just stored — e.g. to apply a coordinator-shipped chaos
        corruption verdict to the file — without re-deriving the sharding
        rule.  The path is returned whether or not a blob exists there.
        """
        return self.dir / digest[:SHARD_CHARS] / f"{digest}.json"

    def _blobs(self):
        """Every stored blob path, across all shard directories."""
        return self.dir.glob(_SHARD_GLOB)

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt blobs are preserved for diagnosis."""
        return self.dir / QUARANTINE_DIR

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt blob aside (never serve it, never destroy it)."""
        try:
            qdir = self.quarantine_dir
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            # Cannot preserve it (e.g. the file vanished or the move
            # failed): at least make sure it is never read again.
            path.unlink(missing_ok=True)
        self.corrupt += 1
        obs.counter("exec/cache/corrupt").inc()

    def get(self, spec: JobSpec) -> SimStats | None:
        """The cached result of ``spec``, or ``None`` on a miss.

        Integrity is verified end to end: the blob must parse, carry a
        checksum, and the checksum must match the payload.  Anything less
        is quarantined and reported as a miss.
        """
        blob = self._read_verified(self._path(spec))
        if blob is None:
            return None
        return stats_from_dict(blob["stats"])

    def get_blob(self, digest: str) -> dict | None:
        """The verified ``{"spec", "stats", "sha256"}`` blob of a digest.

        The digest-keyed twin of :meth:`get`, for callers — the
        :mod:`repro.serve` result route — that hold only the content
        address, not the spec.  Counts hits/misses exactly like
        :meth:`get`.
        """
        return self._read_verified(self.blob_path(digest))

    def _read_verified(self, path: Path) -> dict | None:
        """Read + integrity-check one blob; quarantine anything broken."""
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            self.misses += 1
            obs.counter("exec/cache/misses").inc()
            return None
        except OSError:  # pragma: no cover - unreadable mount etc.
            self.misses += 1
            obs.counter("exec/cache/misses").inc()
            return None
        try:
            blob = json.loads(raw)
            payload = {"spec": blob["spec"], "stats": blob["stats"]}
            if blob.get("sha256") != payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
            stats_from_dict(blob["stats"])
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError, ValueError):
            # Corrupt, truncated or foreign blob: quarantine + recompute.
            self._quarantine(path)
            self.misses += 1
            obs.counter("exec/cache/misses").inc()
            return None
        self.hits += 1
        obs.counter("exec/cache/hits").inc()
        return blob

    def put(self, spec: JobSpec, stats: SimStats) -> None:
        """Store a finished result (atomic: temp file + rename)."""
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"spec": spec.as_dict(), "stats": stats_to_dict(stats)}
        blob = dict(payload, sha256=payload_checksum(payload))
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            with open(tmp, "w") as f:
                json.dump(blob, f)
            os.replace(tmp, path)
        finally:
            # After a successful replace the temp name is gone; this only
            # fires when serialization or the write itself raised mid-way.
            tmp.unlink(missing_ok=True)
        self.stores += 1
        obs.counter("exec/cache/stores").inc()
        if self.chaos is not None:
            self.chaos.corrupt_blob(path, spec.digest())
        if self.max_entries is not None:
            self.prune(self.max_entries)

    def prune(self, max_entries: int) -> int:
        """Evict oldest blobs until at most ``max_entries`` remain.

        Tolerates concurrent deleters (another client pruning the same
        shared root): a blob that vanishes between the scan and the stat
        or unlink simply does not count as one of *our* evictions.
        """
        blobs = []
        for path in self._blobs():
            try:
                blobs.append((path.stat().st_mtime, path.name, path))
            except FileNotFoundError:
                continue
        blobs.sort()
        evicted = 0
        for _, _, path in blobs[: max(0, len(blobs) - max_entries)]:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            evicted += 1
        self.evictions += evicted
        if evicted:
            obs.counter("exec/cache/evictions").inc(evicted)
        return evicted

    def clear(self) -> int:
        """Remove every blob of this cache's version; returns the count.

        Like :meth:`prune`, entries deleted underneath us by a concurrent
        client are skipped, not fatal.
        """
        removed = 0
        if self.dir.is_dir():
            for path in self._blobs():
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self._blobs())

    def summary(self) -> str:
        text = (
            f"cache {self.dir}: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored, {self.evictions} evicted"
        )
        if self.corrupt:
            text += f", {self.corrupt} quarantined"
        return text
