"""Parallel experiment execution with on-disk result caching.

Section VI of the paper is a grid of independent (workload × config)
simulation cells; this package is the layer that executes that grid:

* :mod:`repro.exec.jobs` — :class:`JobSpec`, the frozen plain-data
  description of one cell, its content digest, and :func:`run_job`;
* :mod:`repro.exec.scheduler` — :class:`Scheduler`, process-pool fan-out
  with deterministic sharding, per-job timeout + bounded retry, and
  ordered collection (parallel output ≡ serial output);
* :mod:`repro.exec.cache` — :class:`ResultCache`, content-addressed JSON
  blobs under ``~/.cache/repro-bebop/`` keyed by digest + code version;
* :mod:`repro.exec.progress` — :class:`ProgressMeter`, the live
  ``[done/total]`` line and throughput accounting.

:func:`configure` installs a process-wide default scheduler that
:func:`run_specs` — the entry point :mod:`repro.eval.experiments` fans
out through — dispatches to.  The default is serial and uncached, i.e.
exactly the semantics the sweeps had before this layer existed.

Resilience (crash-safe checkpoint/resume via a
:class:`~repro.chaos.RunJournal`, deterministic fault injection via a
:class:`~repro.chaos.FaultPlan`, cache-blob integrity checking) lives in
:mod:`repro.chaos` and threads into this layer through the ``journal=``
and ``chaos=`` hooks of :func:`configure` / :class:`Scheduler` /
:class:`ResultCache`.
"""

from __future__ import annotations

from typing import Sequence

from repro.pipeline import SimStats
from repro.exec.cache import (
    CACHE_ENV,
    CACHE_ENV_SHARED,
    CODE_VERSION,
    ResultCache,
    default_cache_root,
    payload_checksum,
)
from repro.exec.jobs import (
    JobSpec,
    baseline_job,
    bebop_job,
    instr_vp_job,
    run_job,
    run_job_observed,
    stats_from_dict,
    stats_to_dict,
)
from repro.exec.progress import ProgressMeter
from repro.exec.scheduler import (
    JobError,
    JobTimeoutError,
    LocalPoolBackend,
    Scheduler,
    SchedulerBackend,
    shard,
)

_default_scheduler = Scheduler()


def configure(
    jobs: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    progress: ProgressMeter | None = None,
    chaos=None,
    journal=None,
    batch: bool = False,
    backend=None,
) -> Scheduler:
    """Install (and return) the process-wide default scheduler.

    ``chaos`` (a :class:`repro.chaos.FaultPlan`) and ``journal`` (a
    :class:`repro.chaos.RunJournal`) switch every subsequent sweep into
    fault-injected and/or crash-safe-resumable execution; both default to
    ``None`` — the zero-overhead path.  ``batch=True`` runs batchable
    shared-front-end groups (BeBoP variant sweeps over one workload —
    :mod:`repro.batch`) in one trace pass each, bit-identically.
    ``backend`` (a :class:`SchedulerBackend`) swaps where pending cells
    execute — ``None`` keeps the historical local serial/pool path; a
    :class:`repro.dist.DistBackend` runs them on distributed workers.
    """
    global _default_scheduler
    _default_scheduler = Scheduler(
        jobs=jobs, cache=cache, timeout=timeout, retries=retries,
        progress=progress, chaos=chaos, journal=journal, batch=batch,
        backend=backend,
    )
    return _default_scheduler


def current_scheduler() -> Scheduler:
    """The scheduler :func:`run_specs` currently dispatches to."""
    return _default_scheduler


def install_scheduler(scheduler):
    """Install an already-built scheduler-like object as the default.

    Anything with the :class:`Scheduler` duck type works — in particular a
    :class:`repro.serve.RemoteScheduler`, which executes sweeps against a
    sweep server over HTTP instead of a local process pool.  It must offer
    ``run(specs, label=...)`` plus the ``jobs`` / ``cache`` / ``journal``
    attributes the experiment metadata reads.
    """
    global _default_scheduler
    _default_scheduler = scheduler
    return scheduler


def reset() -> None:
    """Back to the serial, uncached default (tests use this)."""
    global _default_scheduler
    _default_scheduler = Scheduler()


def run_specs(specs: Sequence[JobSpec], label: str = "") -> list[SimStats]:
    """Execute cells through the configured scheduler, in spec order."""
    return _default_scheduler.run(specs, label=label)


__all__ = [
    "CACHE_ENV",
    "CACHE_ENV_SHARED",
    "CODE_VERSION",
    "JobError",
    "JobSpec",
    "JobTimeoutError",
    "LocalPoolBackend",
    "ProgressMeter",
    "ResultCache",
    "Scheduler",
    "SchedulerBackend",
    "baseline_job",
    "bebop_job",
    "configure",
    "current_scheduler",
    "default_cache_root",
    "install_scheduler",
    "instr_vp_job",
    "payload_checksum",
    "reset",
    "run_job",
    "run_job_observed",
    "run_specs",
    "shard",
    "stats_from_dict",
    "stats_to_dict",
]
