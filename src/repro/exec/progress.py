"""Wall-clock and throughput accounting for sweep execution.

One :class:`ProgressMeter` spans a whole driver run; each scheduler batch
(one sweep's fan-out) opens with :meth:`start` and closes with
:meth:`finish`.  While a batch is live the meter maintains a single
``[done/total]`` line with throughput and the cache-hit count, rewritten
in place on a TTY and emitted sparsely otherwise so logs stay readable.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO


class ProgressMeter:
    """Live ``[done/total]`` line plus cumulative wall-clock counters."""

    def __init__(self, stream: TextIO | None = None, enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        # Batch state.
        self.total = 0
        self.done = 0
        self.cached = 0
        self.label = ""
        self._t0 = 0.0
        self._last_len = 0
        # Cumulative (across batches).
        self.jobs_done = 0
        self.jobs_cached = 0
        self.elapsed = 0.0

    def start(self, total: int, label: str = "") -> None:
        """Open a batch of ``total`` jobs."""
        self.total = total
        self.done = 0
        self.cached = 0
        self.label = label
        self._t0 = time.monotonic()
        self._render()

    def tick(self, cached: bool = False) -> None:
        """One job finished (``cached`` = served from the result store)."""
        self.done += 1
        self.jobs_done += 1
        if cached:
            self.cached += 1
            self.jobs_cached += 1
        self._render()

    def finish(self) -> float:
        """Close the batch; returns its wall-clock seconds."""
        dt = time.monotonic() - self._t0
        self.elapsed += dt
        self._render(final=True)
        return dt

    @property
    def throughput(self) -> float:
        """Jobs per second over the current batch."""
        dt = time.monotonic() - self._t0
        return self.done / dt if dt > 0 else 0.0

    def _line(self) -> str:
        line = f"[{self.done}/{self.total}]"
        if self.label:
            line += f" {self.label}"
        line += f" {self.throughput:.1f} jobs/s"
        if self.cached:
            line += f" ({self.cached} cached)"
        return line

    def _render(self, final: bool = False) -> None:
        if not self.enabled:
            return
        line = self._line()
        if self._isatty:
            pad = " " * max(0, self._last_len - len(line))
            end = "\n" if final else ""
            self.stream.write(f"\r{line}{pad}{end}")
            self._last_len = 0 if final else len(line)
        elif final or self.done == 0:
            # Non-TTY: only batch boundaries, so logs don't drown.
            self.stream.write(line + "\n")
        self.stream.flush()

    def summary(self) -> str:
        """Cumulative one-liner for the end of a driver run."""
        rate = self.jobs_done / self.elapsed if self.elapsed > 0 else 0.0
        return (
            f"{self.jobs_done} jobs in {self.elapsed:.1f}s "
            f"({rate:.1f} jobs/s, {self.jobs_cached} from cache)"
        )
