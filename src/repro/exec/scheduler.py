"""Fan-out of experiment cells over worker processes.

The scheduler turns a list of :class:`JobSpec` into a list of
:class:`SimStats` with four guarantees:

* **Determinism** — results are collected *by submission index*, never by
  completion order, and every cell is a pure function of its spec; the
  output of ``jobs=N`` is bit-identical to ``jobs=1``.  Submission order
  itself is fixed by :func:`shard` (round-robin over workers), so a given
  (specs, jobs) pair always dispatches identically.
* **Bounded failure** — each job gets a wait timeout and a bounded number
  of retries; a hung worker is killed and its pool rebuilt rather than
  wedging the sweep.  A pool that keeps dying degrades gracefully to the
  in-process serial path.
* **Zero recompute** — when a :class:`ResultCache` is attached, cached
  cells are answered before any worker is spawned and fresh results are
  stored as they complete.
* **Crash-safe resume** — when a :class:`repro.chaos.RunJournal` is
  attached, every finished job is journaled (flushed + fsynced) the
  moment it completes, finished jobs of a previous interrupted run are
  answered from the journal instead of re-queued, and SIGINT/SIGTERM are
  trapped to flush the journal and print a resume hint.

A :class:`repro.chaos.FaultPlan` (``chaos=``) injects deterministic worker
crashes, hangs and transient exceptions through this module's retry
machinery — the chaos suite uses it to prove the guarantees above hold
under fire.  Both hooks follow the ``is None`` zero-overhead convention.

The serial path (``jobs=1``) runs in-process with no pickling and is the
reference semantics; the parallel path exists purely to buy wall-clock.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Callable, Sequence

import repro.obs as obs
from repro.pipeline import SimStats
from repro.chaos.journal import resume_guard
from repro.chaos.plan import apply_fault, run_faulted
from repro.exec.cache import ResultCache
from repro.exec.jobs import JobSpec, run_job, run_job_observed
from repro.exec.progress import ProgressMeter

#: Consecutive pool deaths tolerated before falling back to serial.
MAX_POOL_FAILURES = 2


class JobError(RuntimeError):
    """A job exhausted its retry budget raising exceptions."""

    def __init__(self, spec: JobSpec, message: str) -> None:
        super().__init__(f"{spec.label()}: {message}")
        self.spec = spec


class JobTimeoutError(JobError):
    """A job exhausted its retry budget timing out."""

    def __init__(self, spec: JobSpec, timeout: float) -> None:
        super().__init__(spec, f"timed out after {timeout}s (retries exhausted)")


def shard(items: Sequence, nshards: int) -> list[list]:
    """Deterministic round-robin split of ``items`` into ``nshards`` lists.

    ``shard(range(5), 2) == [[0, 2, 4], [1, 3]]``.  Empty shards are kept
    so the shape depends only on ``(len(items), nshards)``.
    """
    if nshards <= 0:
        raise ValueError(f"nshards must be positive, got {nshards}")
    shards: list[list] = [[] for _ in range(nshards)]
    for i, item in enumerate(items):
        shards[i % nshards].append(item)
    return shards


def _interleave(indices: Sequence[int], nshards: int) -> list[int]:
    """Submission order: shard round-robin, then concatenate the shards."""
    return [i for s in shard(indices, nshards) for i in s]


class SchedulerBackend:
    """Where a scheduler's pending (uncached) cells actually execute.

    The :class:`Scheduler` keeps everything that is *policy* — cache and
    journal pre-checks, batched-group fusion, progress, spans, the
    journal-on-completion rule — and delegates raw execution of the
    still-pending indices to a backend.  :class:`LocalPoolBackend` is the
    historical in-process/ProcessPoolExecutor behaviour, bit for bit;
    :class:`repro.dist.DistBackend` farms the same indices out to pull-model
    worker processes behind a lease-based coordinator.

    Contract for :meth:`execute`: fill ``results[i]`` for every ``i`` in
    ``pending`` (or raise), calling ``sched._complete(i, specs, results)``
    exactly once per index as it finishes.  A backend that already
    persisted every result into the scheduler's cache sets
    ``writes_cache`` so the scheduler does not double-store; one that can
    honour the fused batched walk sets ``supports_batch``.
    """

    #: Short name, used in logs and error messages.
    name = "abstract"
    #: The backend stores results in ``sched.cache`` itself.
    writes_cache = False
    #: Shared-front-end batched groups may run before this backend.
    supports_batch = False

    def execute(self, sched: "Scheduler", specs: Sequence[JobSpec],
                pending: list[int], results: list) -> None:
        raise NotImplementedError


class LocalPoolBackend(SchedulerBackend):
    """The historical execution path: in-process serial or a local pool.

    ``jobs <= 1`` (or a single pending cell with no timeout to enforce)
    runs in-process with no pickling — the reference semantics; otherwise
    a :class:`ProcessPoolExecutor` fans out with deterministic sharding,
    per-job timeout + bounded retry, and ordered collection.
    """

    name = "local"
    supports_batch = True

    def execute(self, sched, specs, pending, results) -> None:
        if sched.jobs <= 1 or (len(pending) == 1 and sched.timeout is None):
            sched._run_serial(specs, pending, results)
        else:
            sched._run_parallel(specs, pending, results)


class Scheduler:
    """Runs batches of cells serially or over a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) = in-process serial.
    cache:
        Optional :class:`ResultCache` consulted before dispatch.
    timeout:
        Seconds to wait on each job's result (parallel path only — the
        serial path cannot preempt a running simulation).  ``None`` waits
        forever.
    retries:
        Extra attempts after the first for a job that times out or raises.
    progress:
        Optional :class:`ProgressMeter`; one batch per :meth:`run` call.
    job_fn:
        The cell executor, ``JobSpec -> SimStats``.  Must be a picklable
        top-level callable for the parallel path; tests substitute
        counting/hanging functions here.
    chaos:
        Optional :class:`repro.chaos.FaultPlan` injecting deterministic
        faults into job executions.  A chaos-injected sweep still
        completes (with bit-identical results) as long as
        ``retries >= chaos.config.max_faults_per_job``.
    journal:
        Optional :class:`repro.chaos.RunJournal`; finished jobs are
        checkpointed as they complete and previously journaled jobs are
        not re-run.
    batch:
        When true, batchable cells sharing a front end (BeBoP sweeps on
        the same workload/trace — see :mod:`repro.batch`) run as one
        trace pass per group before the serial/parallel dispatch picks
        up the rest.  Results are bit-identical (parity-suite enforced)
        and land in the same cache cells, so this is purely a wall-clock
        lever.  Ignored when chaos injection or the observability layer
        is active, or when a non-default ``job_fn`` is installed — those
        paths need the per-job execution boundary.
    backend:
        The :class:`SchedulerBackend` pending cells execute on.  ``None``
        (the default) means :class:`LocalPoolBackend` — the behaviour this
        class always had.  A :class:`repro.dist.DistBackend` executes the
        same cells on remote pull-model workers instead.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        retries: int = 1,
        progress: ProgressMeter | None = None,
        job_fn: Callable[[JobSpec], SimStats] = run_job,
        chaos=None,
        journal=None,
        batch: bool = False,
        backend: SchedulerBackend | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.job_fn = job_fn
        self.chaos = chaos
        self.journal = journal
        self.batch = batch
        self.backend = backend if backend is not None else LocalPoolBackend()

    # -- public API -------------------------------------------------------

    def run(self, specs: Sequence[JobSpec], label: str = "") -> list[SimStats]:
        """Execute every spec; results are in spec order."""
        if self.journal is not None:
            # A journaled sweep flushes + prints a resume hint on Ctrl-C,
            # SIGTERM, or any error that aborts the batch.
            with resume_guard(self.journal):
                return self._run_batch(specs, label)
        return self._run_batch(specs, label)

    def _run_batch(self, specs: Sequence[JobSpec], label: str) -> list[SimStats]:
        specs = list(specs)
        if self.progress:
            self.progress.start(len(specs), label)
        results: list[SimStats | None] = [None] * len(specs)

        with obs.span("exec/batch", label=label, jobs=self.jobs) as span:
            pending: list[int] = []
            resumed = 0
            for i, spec in enumerate(specs):
                if self.journal is not None:
                    done = self.journal.get(spec)
                    if done is not None:
                        results[i] = done
                        resumed += 1
                        self._tick(cached=True)
                        continue
                # `is not None`: an empty ResultCache is falsy (has __len__).
                hit = self.cache.get(spec) if self.cache is not None else None
                if hit is not None:
                    results[i] = hit
                    if self.journal is not None:
                        self.journal.record(spec, hit)
                    self._tick(cached=True)
                else:
                    pending.append(i)

            computed = len(pending)
            batched = 0
            if pending and self._batch_eligible():
                before = len(pending)
                pending = self._run_batched_groups(specs, pending, results)
                batched = before - len(pending)
            if pending:
                self.backend.execute(self, specs, pending, results)
                if self.cache is not None and not self.backend.writes_cache:
                    for i in pending:
                        self.cache.put(specs[i], results[i])

            span["total"] = len(specs)
            span["computed"] = computed
            span["batched"] = batched
            span["cached"] = len(specs) - computed - resumed
            span["resumed"] = resumed

        if self.progress:
            self.progress.finish()
        return results  # type: ignore[return-value]

    # -- batched groups ----------------------------------------------------

    def _batch_eligible(self) -> bool:
        """May this run use the fused batched walk at all?

        Chaos injection, per-job observability accounting and substituted
        ``job_fn``s all assume one execution per cell, so any of them
        forces the per-job paths; a backend that does not declare
        ``supports_batch`` (e.g. the distributed one, whose workers own
        the per-job execution boundary) does the same.
        """
        return (
            self.batch
            and self.backend.supports_batch
            and self.chaos is None
            and self.job_fn is run_job
            and not obs.enabled()
        )

    def _run_batched_groups(self, specs, pending, results) -> list[int]:
        """Run shared-front-end groups in one trace pass each.

        Returns the indices the batched walk did not take (non-batchable
        specs, singleton groups, or groups whose batched run failed —
        those fall through to the ordinary per-job dispatch, which is
        also the retry path).
        """
        from repro.batch import batchable_groups, run_batched_group

        groups = batchable_groups([specs[i] for i in pending])
        handled: set[int] = set()
        for positions in groups.values():
            group = [pending[p] for p in positions]
            try:
                stats = run_batched_group([specs[i] for i in group])
            except Exception:
                # The batch is an optimisation, not a semantic: let the
                # per-job machinery run (and retry) these cells.
                continue
            for i, result in zip(group, stats):
                results[i] = result
                if self.cache is not None:
                    self.cache.put(specs[i], result)
                handled.add(i)
                self._complete(i, specs, results)
        return [i for i in pending if i not in handled]

    # -- serial path ------------------------------------------------------

    def _run_serial(self, specs, pending, results) -> None:
        observed = obs.enabled()
        for i in pending:
            last: Exception | None = None
            for attempt in range(1 + self.retries):
                if attempt and observed:
                    obs.counter("exec/job/retries").inc()
                try:
                    if self.chaos is not None:
                        action = self.chaos.job_fault(
                            specs[i].digest(), serial=True
                        )
                        if action is not None:
                            apply_fault(action)   # raises InjectedFault
                    if observed:
                        t0 = time.perf_counter()
                        results[i] = self.job_fn(specs[i])
                        dt = time.perf_counter() - t0
                        reg = obs.registry()
                        reg.counter("exec/job/count").inc()
                        reg.counter("exec/job/seconds").inc(dt)
                        obs.trace().emit(
                            "exec/job",
                            spec=specs[i].label(),
                            seconds=dt,
                            attempt=attempt,
                        )
                    else:
                        results[i] = self.job_fn(specs[i])
                    last = None
                    break
                except Exception as exc:
                    last = exc
            if last is not None:
                raise JobError(specs[i], f"failed after retries: {last!r}") from last
            self._complete(i, specs, results)

    # -- parallel path ----------------------------------------------------

    def _run_parallel(self, specs, pending, results) -> None:
        attempts = dict.fromkeys(pending, 0)
        queue = list(pending)
        pool_failures = 0
        while queue:
            if pool_failures >= MAX_POOL_FAILURES:
                # The pool keeps dying (OOM-killed workers, broken fork
                # environment, ...): finish deterministically in-process.
                self._run_serial(specs, queue, results)
                return
            queue, pool_broke = self._one_pass(specs, queue, attempts, results)
            pool_failures = pool_failures + 1 if pool_broke else 0

    def _one_pass(self, specs, queue, attempts, results) -> tuple[list[int], bool]:
        """One pool lifetime; returns (still-unfinished indices, pool died).

        A timed-out or crashed job poisons the whole pool: waiting is
        abandoned, already-finished survivors are harvested, the workers
        are killed, and the caller re-queues the remainder against a fresh
        pool.  A job that merely *raises* leaves the pool healthy and is
        simply retried on the next pass.
        """
        order = _interleave(queue, self.jobs)
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(order)))
        futures: dict[int, Future] = {}
        done: set[int] = set()
        poisoned = False
        pool_broke = False
        # When observability is on, jobs run wrapped in a per-job worker
        # registry and return (stats, metrics snapshot); snapshots are
        # merged in harvest order — which is the deterministic submission
        # order — so parallel counter totals equal serial totals.
        observed = obs.enabled()
        try:
            for i in order:
                if observed:
                    target, targs = run_job_observed, (self.job_fn, specs[i])
                else:
                    target, targs = self.job_fn, (specs[i],)
                if self.chaos is not None:
                    # The verdict is computed here (parent side, so it is
                    # independent of worker scheduling) and shipped to the
                    # worker as plain data.
                    action = self.chaos.job_fault(specs[i].digest())
                    if action is not None:
                        futures[i] = pool.submit(
                            run_faulted, action, target, *targs
                        )
                        continue
                futures[i] = pool.submit(target, *targs)
            for i in order:
                try:
                    self._harvest(i, futures[i].result(timeout=self.timeout),
                                  specs, results, observed)
                    done.add(i)
                    self._complete(i, specs, results)
                except TimeoutError:
                    # A hung worker: charge the attempt and stop waiting —
                    # the pool is killed below and survivors harvested.
                    attempts[i] += 1
                    poisoned = True
                    if observed:
                        obs.counter("exec/job/retries").inc()
                        obs.trace().emit(
                            "exec/timeout",
                            spec=specs[i].label(),
                            attempt=attempts[i],
                            timeout=self.timeout,
                        )
                    if attempts[i] > self.retries:
                        raise JobTimeoutError(specs[i], self.timeout or 0.0)
                    break
                except BrokenExecutor:
                    poisoned = True
                    pool_broke = True
                    break
                except Exception as exc:
                    attempts[i] += 1
                    if observed:
                        obs.counter("exec/job/retries").inc()
                    if attempts[i] > self.retries:
                        raise JobError(
                            specs[i], f"failed after retries: {exc!r}"
                        ) from exc
        except BrokenExecutor:
            # submit() itself failed: the pool died before dispatch.
            poisoned = True
            pool_broke = True
        finally:
            # Salvage anything that finished before we stopped waiting.
            for i in order:
                if i in done:
                    continue
                fut = futures.get(i)
                if fut is not None and fut.done() and not fut.cancelled():
                    try:
                        if fut.exception() is None:
                            self._harvest(i, fut.result(), specs, results,
                                          observed)
                            done.add(i)
                            self._complete(i, specs, results)
                    except Exception:
                        pass
            if poisoned:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        return [i for i in order if i not in done], pool_broke

    def _harvest(self, i, outcome, specs, results, observed: bool) -> None:
        """Record one finished job, folding worker metrics into the parent."""
        if observed:
            results[i], snapshot = outcome
            obs.registry().merge(snapshot)
            obs.trace().emit(
                "exec/job",
                spec=specs[i].label(),
                seconds=snapshot.get("exec/job/seconds"),
                worker=True,
            )
        else:
            results[i] = outcome

    def _complete(self, i, specs, results) -> None:
        """One job finished for good: checkpoint it, account it, tick.

        The journal append happens *here* — the moment the result exists —
        not after the batch, so a kill mid-sweep loses at most the job in
        flight.
        """
        if self.journal is not None:
            self.journal.record(specs[i], results[i])
        if self.chaos is not None:
            self.chaos.note_outcome(specs[i].digest())
        self._tick()

    def _tick(self, cached: bool = False) -> None:
        if self.progress:
            self.progress.tick(cached=cached)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool whose workers may be hung or dead.

    ``shutdown(wait=True)`` would block forever on a hung worker, so the
    worker processes are terminated first; the subsequent shutdown then
    only reaps corpses.  Uses the executor's private process table — there
    is no public kill switch — guarded so a stdlib change degrades to a
    plain non-waiting shutdown.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
