"""Experiment cells as plain, picklable data.

A :class:`JobSpec` names one (workload × configuration) simulation cell —
the unit every Section VI sweep decomposes into.  Specs are frozen,
hashable and built from plain data only (strings, ints, tuples), so they

* pickle cleanly to :mod:`concurrent.futures` worker processes,
* admit a stable content digest for the on-disk result cache, and
* reconstruct their predictor/engine *inside* the worker, which keeps the
  expensive mutable simulator state out of the inter-process channel.

``run_job`` is the single pure entry point: spec in, :class:`SimStats`
out.  It is a top-level function precisely so ``ProcessPoolExecutor`` can
pickle a reference to it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass

from repro.bebop import BlockDVTAGEConfig, RecoveryPolicy
from repro.common.tables import KNOWN_BACKENDS, get_table_backend, use_table_backend
from repro.pipeline import SimStats
from repro.eval.runner import (
    DEFAULT_TRACE_UOPS,
    DEFAULT_WARMUP_UOPS,
    get_trace,
    make_bebop_engine,
    make_instr_predictor,
    run_baseline,
    run_bebop_eole,
    run_eole_instr_vp,
    run_instr_vp,
)

#: Schema version of the JobSpec encoding itself; bump when the meaning of
#: the fields changes so old digests cannot collide with new ones.
SPEC_SCHEMA = 1

#: Pipelines a job may run on (Table I names).
PIPELINES = ("baseline_6_60", "baseline_vp_6_60", "eole_4_60")


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell, described entirely by plain data.

    ``engine`` is a tagged tuple:

    * ``("none",)`` — no value prediction (baseline core);
    * ``("instr", kind)`` — instruction-based predictor by Fig 5a name;
    * ``("bebop", config_items, window, policy)`` — block-based BeBoP
      engine, where ``config_items`` is the sorted ``(field, value)``
      tuple-of-pairs form of a :class:`BlockDVTAGEConfig`, ``window``
      follows Fig 7b's convention (``None`` = infinite, ``0`` = no
      window) and ``policy`` is a :class:`RecoveryPolicy` value string.

    ``table_backend`` names the :mod:`repro.common.tables` storage backend
    the job runs its predictor tables on.  Any *known* backend is accepted
    (a python-only client may submit a numpy job to a server that has the
    extra installed); availability is checked where the job executes.  The
    backend is deliberately **excluded from the digest**: backends are
    bit-identical by contract, so a cached result computed on one backend
    is valid for the other and cross-backend cache hits are correct.
    """

    workload: str
    uops: int = DEFAULT_TRACE_UOPS
    warmup: int = DEFAULT_WARMUP_UOPS
    pipeline: str = "baseline_6_60"
    engine: tuple = ("none",)
    table_backend: str = "python"

    def __post_init__(self) -> None:
        if self.pipeline not in PIPELINES:
            raise ValueError(
                f"unknown pipeline {self.pipeline!r}; known: {', '.join(PIPELINES)}"
            )
        if not self.engine or self.engine[0] not in ("none", "instr", "bebop"):
            raise ValueError(f"malformed engine description: {self.engine!r}")
        if self.table_backend not in KNOWN_BACKENDS:
            raise ValueError(
                f"unknown table backend {self.table_backend!r}; known: "
                + ", ".join(KNOWN_BACKENDS)
            )

    # -- encoding ---------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready plain-dict form (tuples become lists)."""
        return {
            "schema": SPEC_SCHEMA,
            "workload": self.workload,
            "uops": self.uops,
            "warmup": self.warmup,
            "pipeline": self.pipeline,
            "engine": _jsonable(self.engine),
            "table_backend": self.table_backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            workload=data["workload"],
            uops=data["uops"],
            warmup=data["warmup"],
            pipeline=data["pipeline"],
            engine=_tupled(data["engine"]),
            table_backend=data.get("table_backend", "python"),
        )

    def digest(self) -> str:
        """Stable content digest: equal specs ⇔ equal digests.

        The table backend is *not* part of the digest: both backends are
        bit-identical (the golden suite enforces it), so the same cell
        computed on either backend yields the same stats and may serve
        cache hits for the other.
        """
        payload = self.as_dict()
        del payload["table_backend"]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress/error messages."""
        engine = self.engine[0] if self.engine[0] != "instr" else self.engine[1]
        return f"{self.workload}/{self.pipeline}/{engine}@{self.uops}"


def _jsonable(value):
    """Tuples → lists, recursively (JSON has no tuple type)."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def _tupled(value):
    """Lists → tuples, recursively (the inverse of :func:`_jsonable`)."""
    if isinstance(value, (tuple, list)):
        return tuple(_tupled(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# Spec builders — the vocabulary experiments.py sweeps are written in.
# ---------------------------------------------------------------------------

def baseline_job(
    workload: str,
    uops: int = DEFAULT_TRACE_UOPS,
    warmup: int = DEFAULT_WARMUP_UOPS,
    table_backend: str | None = None,
) -> JobSpec:
    """Baseline_6_60: no value prediction.

    ``table_backend`` (here and in the other builders) pins the storage
    backend; ``None`` resolves to the process-global default at build time
    so a ``--table-backend`` CLI flag propagates through unchanged specs.
    """
    return JobSpec(
        workload=workload, uops=uops, warmup=warmup,
        table_backend=_resolve_backend(table_backend),
    )


def instr_vp_job(
    workload: str,
    kind: str,
    uops: int = DEFAULT_TRACE_UOPS,
    warmup: int = DEFAULT_WARMUP_UOPS,
    eole: bool = False,
    table_backend: str | None = None,
) -> JobSpec:
    """Instruction-based predictor on Baseline_VP_6_60 (or EOLE_4_60)."""
    return JobSpec(
        workload=workload,
        uops=uops,
        warmup=warmup,
        pipeline="eole_4_60" if eole else "baseline_vp_6_60",
        engine=("instr", kind),
        table_backend=_resolve_backend(table_backend),
    )


def bebop_job(
    workload: str,
    config: BlockDVTAGEConfig | None = None,
    window: int | None = 32,
    policy: RecoveryPolicy = RecoveryPolicy.DNRDNR,
    uops: int = DEFAULT_TRACE_UOPS,
    warmup: int = DEFAULT_WARMUP_UOPS,
    table_backend: str | None = None,
) -> JobSpec:
    """Block-based BeBoP engine on EOLE_4_60."""
    if config is None:
        config = BlockDVTAGEConfig()
    items = tuple(sorted(
        (f.name, getattr(config, f.name)) for f in dataclasses.fields(config)
    ))
    return JobSpec(
        workload=workload,
        uops=uops,
        warmup=warmup,
        pipeline="eole_4_60",
        engine=("bebop", items, window, policy.value),
        table_backend=_resolve_backend(table_backend),
    )


def _resolve_backend(table_backend: str | None) -> str:
    return get_table_backend() if table_backend is None else table_backend


# ---------------------------------------------------------------------------
# Execution + result (de)serialisation.
# ---------------------------------------------------------------------------

def run_job(spec: JobSpec) -> SimStats:
    """Execute one cell: rebuild the engine from plain data and simulate.

    Pure with respect to the spec (traces are deterministic, predictors are
    constructed fresh per call), so results are cacheable by digest and
    identical whether computed serially, in a worker, or read back from the
    on-disk cache.  The whole cell runs under ``spec.table_backend`` — the
    scope covers the branch predictor/BTB the pipeline builds internally,
    not just the value predictor.
    """
    trace = get_trace(spec.workload, spec.uops)
    with use_table_backend(spec.table_backend):
        tag = spec.engine[0]
        if tag == "none":
            return run_baseline(trace, spec.warmup)
        if tag == "instr":
            predictor = make_instr_predictor(spec.engine[1])
            if spec.pipeline == "eole_4_60":
                return run_eole_instr_vp(trace, predictor, spec.warmup)
            return run_instr_vp(trace, predictor, spec.warmup)
        # tag == "bebop"
        _, items, window, policy = spec.engine
        config = BlockDVTAGEConfig(**dict(items))
        engine = make_bebop_engine(config, window=window,
                                   policy=RecoveryPolicy(policy))
        return run_bebop_eole(trace, engine, spec.warmup)


def run_job_observed(fn, spec: JobSpec) -> tuple[SimStats, dict]:
    """Execute ``fn(spec)`` under a fresh per-job metrics registry.

    The worker-process side of metric collection: pool workers are reused
    across jobs, so each job records into its own scoped registry whose
    flat snapshot travels back with the result and is merged into the
    parent's registry by the scheduler (``registry.merge`` sums counters,
    keeping parallel totals equal to serial totals).  Top-level and
    picklable for ``ProcessPoolExecutor``, like :func:`run_job`.
    """
    import repro.obs as obs

    reg = obs.MetricsRegistry(enabled=True)
    with obs.scoped_registry(reg):
        t0 = time.perf_counter()
        result = fn(spec)
        reg.counter("exec/job/count").inc()
        reg.counter("exec/job/seconds").inc(time.perf_counter() - t0)
    return result, reg.snapshot()


def stats_to_dict(stats: SimStats) -> dict:
    """JSON-ready form of a :class:`SimStats` (exact float round-trip)."""
    return dataclasses.asdict(stats)


def stats_from_dict(data: dict) -> SimStats:
    fields = {f.name for f in dataclasses.fields(SimStats)}
    return SimStats(**{k: v for k, v in data.items() if k in fields})
