"""The sweep-result service: the result cache behind an HTTP front-end.

:mod:`repro.exec` already owns content-addressed JobSpec digests,
sha256-verified cache blobs, and a retrying process-pool scheduler; this
package puts an asyncio (stdlib-only) HTTP server in front of them so
many clients on many hosts share one set of simulation results instead
of recomputing it per process:

* :mod:`repro.serve.protocol` — the versioned JSON wire documents,
  digest validation, and the checksum rule both sides verify;
* :mod:`repro.serve.server` — :class:`SweepServer` (submit / sweep /
  result / SSE progress / health / metrics routes, cache-hit fast path,
  in-flight dedup, scheduler batching) and :class:`ServerThread`;
* :mod:`repro.serve.client` — :class:`ServeClient`, the verifying
  blocking client, and :class:`RemoteScheduler`, which plugs a server
  into :func:`repro.exec.install_scheduler` so every experiment sweep
  executes remotely;
* ``python -m repro.serve`` — the server CLI.

Results over HTTP are bit-identical to direct :meth:`ResultCache.get`:
the response payload carries the exact cache-blob checksum and the
client refuses anything that fails it.  ``examples/serve_loadgen.py``
hammers a server with thousands of concurrent clients and publishes
latency histograms through :mod:`repro.obs`.
"""

from __future__ import annotations

from repro.serve.client import RemoteScheduler, ServeClient, ServerError
from repro.serve.protocol import (
    MAX_SWEEP_SPECS,
    PROTOCOL_VERSION,
    ProtocolError,
    is_digest,
    validate_digest,
)
from repro.serve.server import ServerThread, ServeProgress, SweepServer

__all__ = [
    "MAX_SWEEP_SPECS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteScheduler",
    "ServeClient",
    "ServeProgress",
    "ServerError",
    "ServerThread",
    "SweepServer",
    "is_digest",
    "validate_digest",
]
