"""Blocking HTTP client for the sweep-result service.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` documents over
a keep-alive ``http.client`` connection and *verifies everything it
receives*: every result's payload checksum must match, the echoed spec
must hash to its digest, and the digest must be the one requested —
:class:`~repro.serve.protocol.ProtocolError` otherwise.  A verified
response is therefore bit-identical to what ``ResultCache.get`` would
have returned on the server's own disk.

:class:`RemoteScheduler` adapts a client to the
:class:`repro.exec.Scheduler` duck type, so the whole experiment layer
can execute against a server with one line::

    repro.exec.install_scheduler(RemoteScheduler(ServeClient(url)))

(that is what ``examples/run_experiments.py --server-url`` does).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Iterator, Sequence

import repro.obs as obs
from repro.common.rng import deterministic_backoff
from repro.exec.jobs import JobSpec
from repro.exec.progress import ProgressMeter
from repro.pipeline import SimStats
from repro.serve import protocol

#: HTTP statuses the client treats as *transient* and retries with
#: backoff.  Deliberately excludes 500 — the server answers 500 for a job
#: that exhausted its compute retry budget, which re-requesting would just
#: recompute and fail again.
TRANSIENT_STATUSES = frozenset({502, 503, 504})


class ServerError(RuntimeError):
    """The server answered with an error document."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """One keep-alive connection to a sweep server.

    Not thread-safe (one in-flight request per instance, like the
    underlying ``http.client`` connection); spin up one client per
    thread.  ``timeout`` bounds each socket operation — sweeps that
    compute cold cells server-side can legitimately take a while, so the
    default is generous.

    Transient failures — connect/socket errors and the
    :data:`TRANSIENT_STATUSES` responses — are retried up to ``retries``
    times with exponential backoff (``backoff * 2**k``, capped at
    ``backoff_cap``) under deterministic jitter, counted as
    ``serve/client/retries``.  A *stale keep-alive* (the server closed the
    idle connection between requests) keeps its historical fast path: the
    first reconnect is immediate and uncounted, because retrying that is
    part of speaking HTTP/1.1, not error handling.
    """

    def __init__(self, base_url: str, timeout: float = 600.0,
                 retries: int = 3, backoff: float = 0.25,
                 backoff_cap: float = 5.0) -> None:
        # "localhost:8123" would parse as scheme "localhost"; a schemeless
        # address is common enough on the CLI to normalise rather than
        # reject.
        if "://" not in base_url:
            base_url = "http://" + base_url
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ValueError(f"only http:// served, got {base_url!r}")
        netloc = parsed.netloc  # "host:port"
        host, _, port = netloc.partition(":")
        if not host:
            raise ValueError(f"no host in server url {base_url!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = int(port) if port else 80
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retried = 0        # backed-off retries over this client's life
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _backoff_sleep(self, path: str, attempt: int) -> None:
        """Sleep one backed-off retry interval and account for it."""
        self.retried += 1
        obs.counter("serve/client/retries").inc()
        time.sleep(deterministic_backoff(
            f"{self.host}:{self.port}{path}", attempt,
            self.backoff, self.backoff_cap,
        ))

    def _roundtrip(self, method: str, path: str,
                   payload: bytes | None = None,
                   headers: dict | None = None) -> tuple[int, bytes]:
        """One request/response exchange with the full retry policy.

        Returns ``(status, raw body)``.  Socket-level failures get one
        immediate, uncounted reconnect (a keep-alive connection the server
        has since closed surfaces as a broken pipe / bad status on the
        *next* request — retrying that is part of speaking HTTP/1.1); any
        further failure, and any :data:`TRANSIENT_STATUSES` answer, is
        retried up to ``self.retries`` times behind
        :func:`deterministic_backoff` sleeps.
        """
        attempt = 0              # backed-off retries used so far
        reconnected = False      # the free keep-alive reconnect spent?
        while True:
            conn = self._connection()
            try:
                conn.request(method, path, body=payload,
                             headers=headers or {})
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, socket.timeout, OSError):
                self.close()
                if not reconnected:
                    reconnected = True
                    continue
                attempt += 1
                if attempt > self.retries:
                    raise
                self._backoff_sleep(path, attempt)
                continue
            if response.status in TRANSIENT_STATUSES and attempt < self.retries:
                attempt += 1
                self._backoff_sleep(path, attempt)
                continue
            return response.status, raw

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        status, raw = self._roundtrip(method, path, payload, headers)
        try:
            doc = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise protocol.ProtocolError(
                f"non-JSON response (HTTP {status})", status=502
            ) from exc
        if status != 200:
            raise ServerError(status, protocol.error_message(doc))
        return doc

    # -- the service API ---------------------------------------------------

    def submit(self, spec: JobSpec) -> SimStats:
        """Submit one cell; blocks until its verified result arrives."""
        return self.submit_with_source(spec)[0]

    def submit_with_source(self, spec: JobSpec) -> tuple[SimStats, str]:
        """Like :meth:`submit`, also reporting cache/inflight/computed."""
        doc = self._request("POST", protocol.ROUTE_SUBMIT,
                            protocol.encode_submit(spec))
        _, stats, source = protocol.decode_result(
            doc, expect_digest=spec.digest()
        )
        return stats, source

    def sweep(self, specs: Sequence[JobSpec]) -> list[SimStats]:
        """Submit a batch; verified results come back in request order."""
        return [stats for stats, _ in self.sweep_with_sources(specs)]

    def sweep_with_sources(
        self, specs: Sequence[JobSpec]
    ) -> list[tuple[SimStats, str]]:
        specs = list(specs)
        doc = self._request("POST", protocol.ROUTE_SWEEP,
                            protocol.encode_sweep(specs))
        decoded = protocol.decode_sweep_results(
            doc, expect=[s.digest() for s in specs]
        )
        return [(stats, source) for _, stats, source in decoded]

    def result(self, digest: str) -> SimStats | None:
        """Cache-only lookup by digest; ``None`` when not cached."""
        protocol.validate_digest(digest)
        try:
            doc = self._request("GET", protocol.ROUTE_RESULT + digest)
        except ServerError as exc:
            if exc.status == 404:
                return None
            raise
        _, stats, _ = protocol.decode_result(doc, expect_digest=digest)
        return stats

    def health(self) -> dict:
        return self._request("GET", protocol.ROUTE_HEALTH)

    def metrics(self) -> dict:
        return self._request("GET", protocol.ROUTE_METRICS)

    def metrics_prometheus(self) -> str:
        """The metrics document as a Prometheus text exposition (v0.0.4).

        Returns the decoded body verbatim; the same retry rules as
        :meth:`_request` apply (JSON decoding does not — the body is
        text, and a non-200 answer is still a JSON error document).
        """
        path = (f"{protocol.ROUTE_METRICS}"
                f"?format={protocol.METRICS_FORMAT_PROMETHEUS}")
        status, raw = self._roundtrip("GET", path)
        if status != 200:
            try:
                doc = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                doc = {}
            raise ServerError(status, protocol.error_message(doc))
        return raw.decode("utf-8")

    def progress_events(self, limit: int | None = None,
                        timeout: float | None = None) -> Iterator[dict]:
        """Subscribe to the SSE progress stream; yields event dicts.

        Uses a dedicated connection (the stream occupies it until the
        generator is closed or ``limit`` events have arrived).  Keep-alive
        comments are filtered out.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            conn.request("GET", protocol.ROUTE_PROGRESS)
            response = conn.getresponse()
            if response.status != 200:
                raise ServerError(response.status, "progress stream refused")
            seen = 0
            while limit is None or seen < limit:
                line = response.fp.readline()
                if not line:
                    break
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue  # heartbeat comment or blank separator
                yield json.loads(line[len(b"data: "):])
                seen += 1
        finally:
            conn.close()


class RemoteScheduler:
    """A :class:`repro.exec.Scheduler` look-alike that runs over HTTP.

    ``run(specs)`` chunks the batch to the protocol's sweep limit and
    submits each chunk; the optional progress meter ticks per result,
    with server-side cache and dedup hits counted as "cached" (the
    client did no computing for them).  ``jobs`` is 0 — this process
    owns no workers; the pool lives behind the server.
    """

    #: Local worker processes (none — computation is remote).
    jobs = 0
    #: The experiment-metadata hooks a local scheduler would carry.
    cache = None
    journal = None

    def __init__(self, client: ServeClient,
                 progress: ProgressMeter | None = None) -> None:
        self.client = client
        self.progress = progress

    def run(self, specs: Sequence[JobSpec], label: str = "") -> list[SimStats]:
        specs = list(specs)
        if self.progress:
            self.progress.start(len(specs), label)
        out: list[SimStats] = []
        for lo in range(0, len(specs), protocol.MAX_SWEEP_SPECS):
            chunk = specs[lo: lo + protocol.MAX_SWEEP_SPECS]
            for stats, source in self.client.sweep_with_sources(chunk):
                out.append(stats)
                if self.progress:
                    self.progress.tick(cached=source != "computed")
        if self.progress:
            self.progress.finish()
        return out
