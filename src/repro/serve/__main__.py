"""Run a sweep-result server:  ``python -m repro.serve [options]``.

Serves the content-addressed result cache over HTTP (see
:mod:`repro.serve`): cache hits answer instantly, misses are computed on
a local worker pool with concurrent requests for the same digest
deduplicated into one computation, and ``/v1/progress`` streams sweep
progress as server-sent events.

The cache root follows the usual precedence: ``--cache-dir``, then
``$REPRO_BEBOP_CACHE``, then ``$REPRO_CACHE_DIR``, then
``~/.cache/repro-bebop`` — point the server and its CLI clients at one
``REPRO_CACHE_DIR`` to share a root without flags.

Try it::

    python -m repro.serve --port 8100 --jobs 4 &
    curl -s localhost:8100/v1/healthz
    python examples/run_experiments.py --quick --server-url localhost:8100
"""

from __future__ import annotations

import argparse
import asyncio
import sys

import repro.obs as obs
from repro.exec.cache import ResultCache
from repro.serve.server import SweepServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8100,
                        help="bind port (default 8100; 0 = ephemeral)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for cache misses "
                             "(default 1 = in-process serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache root (default: "
                             "$REPRO_BEBOP_CACHE, $REPRO_CACHE_DIR, or "
                             "~/.cache/repro-bebop)")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per failing job (default 1)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="S", help="seconds to wait per parallel job")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="inject deterministic faults into the compute "
                             "path, e.g. 'exception=0.2,crash=0.05,seed=7'")
    parser.add_argument("--no-obs", action="store_true",
                        help="do not enable the metrics registry "
                             "(/v1/metrics then reports server counters "
                             "only)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if not args.no_obs:
        obs.enable()

    chaos = None
    if args.chaos:
        from repro.chaos import FaultPlan, parse_chaos_spec
        try:
            chaos = FaultPlan(parse_chaos_spec(args.chaos))
        except ValueError as exc:
            parser.error(str(exc))
        print(f"[serve] chaos enabled: {chaos.config}", flush=True)

    cache = ResultCache(root=args.cache_dir, chaos=chaos)
    server = SweepServer(
        cache=cache, jobs=args.jobs, retries=args.retries,
        timeout=args.job_timeout, chaos=chaos,
        host=args.host, port=args.port,
    )

    async def _serve() -> None:
        await server.start()
        print(f"[serve] listening on {server.url} "
              f"(cache {cache.dir}, {args.jobs} worker(s))", flush=True)
        try:
            await asyncio.Event().wait()      # until interrupted
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        print(f"\n[serve] {server.requests} request(s): "
              f"{server.hits} hit(s), {server.misses} scheduled, "
              f"{server.dedup} deduplicated, "
              f"{server.errors_4xx}+{server.errors_5xx} error(s)")
        print(f"[serve] {cache.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
