"""The asyncio sweep-result server.

One :class:`SweepServer` turns the content-addressed result cache plus the
:class:`repro.exec.Scheduler` pool into a multi-tenant service:

* **cache hits are served from the event loop** — a submit whose digest is
  already on disk answers with one sharded-file read and never touches the
  pool;
* **misses are scheduled, once** — concurrent submissions of the same
  digest deduplicate onto a single in-flight computation
  (``serve/dedup``), and distinct digests queued while the pool is busy
  are batched into one scheduler run;
* **progress streams as server-sent events** — the scheduler's
  :class:`~repro.exec.ProgressMeter` is subclassed to broadcast its
  ``start``/``tick``/``finish`` transitions to every ``/v1/progress``
  subscriber;
* **failure is accounted, not hidden** — a worker crash mid-request rides
  the scheduler's retry machinery; only a job that exhausts its retry
  budget surfaces as a 5xx (``serve/errors/5xx``), and a corrupt cache
  blob is quarantined and recomputed exactly as in direct execution.

The HTTP layer is a deliberately small hand-rolled HTTP/1.1 server on
``asyncio.start_server`` (stdlib only — no web framework in the
container): request line + headers + content-length body, keep-alive
connections, JSON responses.  Simulation itself runs in a dedicated
*runner thread* so the event loop stays free to accept thousands of
connections while the process pool grinds; results cross back via
``loop.call_soon_threadsafe``.

Routes (see :mod:`repro.serve.protocol` for the document shapes):

========  ===================  ==========================================
method    path                 behaviour
========  ===================  ==========================================
POST      ``/v1/submit``       one spec → result (cache / dedup / compute)
POST      ``/v1/sweep``        many specs → results, in request order
GET       ``/v1/result/<d>``   cache-only lookup, 404 on a miss
GET       ``/v1/progress``     SSE stream of sweep progress events
GET       ``/v1/healthz``      liveness + build identity
GET       ``/v1/metrics``      server counters + obs registry snapshot
                               (``?format=prometheus`` for text exposition)
========  ===================  ==========================================
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from urllib.parse import parse_qs

import repro.obs as obs
from repro.exec.cache import CODE_VERSION, ResultCache
from repro.exec.jobs import JobSpec, stats_from_dict
from repro.exec.progress import ProgressMeter
from repro.exec.scheduler import Scheduler
from repro.serve import protocol

#: HTTP reason phrases for the statuses this server emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 502: "Bad Gateway",
}

#: Seconds between SSE keep-alive comments when no progress flows.
SSE_HEARTBEAT_SECONDS = 10.0

#: Most specs one scheduler batch absorbs from the miss queue.
BATCH_LIMIT = 512


class ServeProgress(ProgressMeter):
    """A :class:`ProgressMeter` that also broadcasts to SSE subscribers.

    The meter lives in the runner thread (the scheduler drives it); each
    transition is forwarded thread-safely to every subscribed asyncio
    queue.  Rendering is disabled — the server's progress surface *is*
    the event stream.
    """

    def __init__(self, broadcast) -> None:
        super().__init__(enabled=False)
        self._broadcast = broadcast

    def start(self, total: int, label: str = "") -> None:
        super().start(total, label)
        self._broadcast({"event": "start", "label": label, "total": total})

    def tick(self, cached: bool = False) -> None:
        super().tick(cached=cached)
        self._broadcast({
            "event": "tick", "label": self.label, "done": self.done,
            "total": self.total, "cached": self.cached,
            "throughput": round(self.throughput, 3),
        })

    def finish(self) -> float:
        dt = super().finish()
        self._broadcast({
            "event": "finish", "label": self.label, "total": self.total,
            "cached": self.cached, "seconds": round(dt, 6),
            "jobs_done": self.jobs_done,
        })
        return dt


class SweepServer:
    """The sweep-result service over one cache root and one local pool."""

    def __init__(
        self,
        cache: ResultCache | None = None,
        jobs: int = 1,
        retries: int = 1,
        timeout: float | None = None,
        chaos=None,
        host: str = "127.0.0.1",
        port: int = 0,
        job_fn=None,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache(chaos=chaos)
        self.progress = ServeProgress(self._broadcast)
        kwargs = {} if job_fn is None else {"job_fn": job_fn}
        self.scheduler = Scheduler(
            jobs=jobs, cache=self.cache, timeout=timeout, retries=retries,
            progress=self.progress, chaos=chaos, **kwargs,
        )
        self.host = host
        self.port = port
        # Request accounting (plain ints so they exist with obs disabled;
        # mirrored into the obs registry when it is enabled).
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.dedup = 0
        self.errors_4xx = 0
        self.errors_5xx = 0
        self._started = 0.0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._runner: threading.Thread | None = None
        self._subscribers: set[asyncio.Queue] = set()
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the runner thread, begin accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._started = time.monotonic()
        # Touch every serve/* metric from this thread once, so the runner
        # thread never races the registry on first creation.
        for name in ("serve/requests", "serve/hits", "serve/misses",
                     "serve/dedup", "serve/errors/4xx", "serve/errors/5xx"):
            obs.counter(name)
        obs.histogram("serve/request_ms")
        self._runner = threading.Thread(
            target=self._runner_main, name="serve-runner", daemon=True
        )
        self._runner.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, backlog=2048
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        """Stop accepting, drain the runner, close live connections.

        Open connections are closed at the transport, which feeds EOF to
        their handlers — they exit their read loop normally instead of
        being cancelled (cancellation of streams handlers is noisy on
        3.11 and loses in-flight responses).
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._queue.put(None)
        for sub in list(self._subscribers):
            sub.put_nowait(None)
        if self._runner is not None:
            # run_in_executor keeps a potentially long scheduler batch off
            # the event loop while it finishes.
            await self._loop.run_in_executor(None, self._runner.join)
        for writer in list(self._connections.values()):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if self._connections:
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)

    # -- the runner thread: misses become scheduler batches ----------------

    def _runner_main(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            stop = False
            while len(batch) < BATCH_LIMIT:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            self._run_batch(batch)
            if stop:
                return

    def _run_batch(self, batch: list[tuple[str, JobSpec]]) -> None:
        specs = [spec for _, spec in batch]
        try:
            results = self.scheduler.run(specs, label="serve")
        except Exception:
            # One bad cell poisons a whole batch run; isolate it by
            # retrying each cell alone so only the truly failing digests
            # surface as errors.
            for digest, spec in batch:
                try:
                    stats = self.scheduler.run([spec], label="serve")[0]
                except Exception as exc:
                    self._resolve(digest, None, exc)
                else:
                    self._resolve(digest, stats, None)
        else:
            for (digest, _), stats in zip(batch, results):
                self._resolve(digest, stats, None)

    def _resolve(self, digest: str, stats, exc) -> None:
        try:
            self._loop.call_soon_threadsafe(self._finish, digest, stats, exc)
        except RuntimeError:  # pragma: no cover - loop torn down mid-batch
            pass

    def _finish(self, digest: str, stats, exc) -> None:
        fut = self._inflight.pop(digest, None)
        if fut is None or fut.done():  # pragma: no cover - double resolve
            return
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(stats)

    # -- obtaining results (the dedup core) --------------------------------

    async def _obtain(self, spec: JobSpec) -> tuple[object, str]:
        """One cell's stats and their source: cache, inflight, or computed.

        ``inflight`` is the dedup path — a concurrent request already
        scheduled this digest, so this request just awaits the same
        future.  The future is shielded: one impatient client
        disconnecting must not cancel a computation other clients (and
        the cache) are waiting on.
        """
        digest = spec.digest()
        fut = self._inflight.get(digest)
        if fut is not None:
            self.dedup += 1
            obs.counter("serve/dedup").inc()
            return await asyncio.shield(fut), "inflight"
        stats = self.cache.get(spec)
        if stats is not None:
            self.hits += 1
            obs.counter("serve/hits").inc()
            return stats, "cache"
        self.misses += 1
        obs.counter("serve/misses").inc()
        fut = self._loop.create_future()
        self._inflight[digest] = fut
        self._queue.put((digest, spec))
        return await asyncio.shield(fut), "computed"

    # -- SSE broadcast ------------------------------------------------------

    def _broadcast(self, event: dict) -> None:
        """Fan one progress event out to every subscriber, thread-safely.

        Called from the runner thread (via the progress meter); the
        actual queue puts happen on the event loop.
        """
        if not self._subscribers or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._fanout, event)
        except RuntimeError:  # pragma: no cover - loop torn down
            pass

    def _fanout(self, event: dict) -> None:
        for sub in list(self._subscribers):
            sub.put_nowait(event)

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections[task] = writer
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep = headers.get("connection", "").lower() != "close"
                t0 = time.perf_counter()
                self.requests += 1
                obs.counter("serve/requests").inc()
                streamed = await self._dispatch(method, path, body, writer)
                obs.histogram("serve/request_ms").observe(
                    (time.perf_counter() - t0) * 1000.0
                )
                if streamed or not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request: (method, path, headers, body), or None."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            if len(headers) < 100:
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > protocol.MAX_BODY_BYTES:
            return method, path, headers, b"\x00" * (protocol.MAX_BODY_BYTES + 1)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns True when the response was a stream."""
        path, _, query = path.partition("?")
        try:
            if path == protocol.ROUTE_SUBMIT:
                self._need(method, "POST")
                await self._do_submit(body, writer)
            elif path == protocol.ROUTE_SWEEP:
                self._need(method, "POST")
                await self._do_sweep(body, writer)
            elif path.startswith(protocol.ROUTE_RESULT):
                self._need(method, "GET")
                await self._do_result(path[len(protocol.ROUTE_RESULT):],
                                      writer)
            elif path == protocol.ROUTE_HEALTH:
                self._need(method, "GET")
                await self._send_json(writer, 200, self._health_doc())
            elif path == protocol.ROUTE_METRICS:
                self._need(method, "GET")
                fmt = parse_qs(query).get(
                    "format", [protocol.METRICS_FORMAT_JSON])[-1]
                if fmt == protocol.METRICS_FORMAT_PROMETHEUS:
                    await self._send_text(writer, 200,
                                          self._metrics_prometheus(),
                                          protocol.PROMETHEUS_CONTENT_TYPE)
                elif fmt == protocol.METRICS_FORMAT_JSON:
                    await self._send_json(writer, 200, self._metrics_doc())
                else:
                    raise protocol.ProtocolError(
                        f"unknown metrics format {fmt!r} (use "
                        f"{protocol.METRICS_FORMAT_JSON} or "
                        f"{protocol.METRICS_FORMAT_PROMETHEUS})"
                    )
            elif path == protocol.ROUTE_PROGRESS:
                self._need(method, "GET")
                await self._do_progress(writer)
                return True
            else:
                raise protocol.ProtocolError(f"no such route: {path}",
                                             status=404)
        except protocol.ProtocolError as exc:
            self._count_error(exc.status)
            await self._send_json(writer, exc.status,
                                  protocol.encode_error(exc.status, str(exc)))
        except Exception as exc:
            # A job that exhausted its retry budget (or any internal
            # failure) is a 5xx with the cause in the body — never a
            # wrong or truncated payload.
            self._count_error(500)
            await self._send_json(
                writer, 500,
                protocol.encode_error(500, f"{type(exc).__name__}: {exc}"),
            )
        return False

    def _need(self, method: str, expected: str) -> None:
        if method != expected:
            raise protocol.ProtocolError(
                f"method {method} not allowed (use {expected})", status=405
            )

    def _count_error(self, status: int) -> None:
        if status >= 500:
            self.errors_5xx += 1
            obs.counter("serve/errors/5xx").inc()
        else:
            self.errors_4xx += 1
            obs.counter("serve/errors/4xx").inc()

    # -- route bodies -------------------------------------------------------

    async def _do_submit(self, body: bytes,
                         writer: asyncio.StreamWriter) -> None:
        spec = protocol.decode_submit(protocol.parse_json(body))
        stats, source = await self._obtain(spec)
        await self._send_json(writer, 200,
                              protocol.encode_result(spec, stats, source))

    async def _do_sweep(self, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        specs = protocol.decode_sweep(protocol.parse_json(body))
        outcomes = await asyncio.gather(
            *(self._obtain(spec) for spec in specs)
        )
        docs = [protocol.encode_result(spec, stats, source)
                for spec, (stats, source) in zip(specs, outcomes)]
        await self._send_json(writer, 200, protocol.encode_sweep_results(docs))

    async def _do_result(self, digest: str,
                         writer: asyncio.StreamWriter) -> None:
        protocol.validate_digest(digest)
        blob = self.cache.get_blob(digest)
        if blob is None:
            raise protocol.ProtocolError(
                f"no cached result for {digest[:12]}…", status=404
            )
        self.hits += 1
        obs.counter("serve/hits").inc()
        spec = JobSpec.from_dict(blob["spec"])
        await self._send_json(
            writer, 200,
            protocol.encode_result(spec, stats_from_dict(blob["stats"]),
                                   "cache"),
        )

    async def _do_progress(self, writer: asyncio.StreamWriter) -> None:
        sub: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(sub)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            snapshot = {
                "event": "snapshot", "jobs_done": self.progress.jobs_done,
                "jobs_cached": self.progress.jobs_cached,
                "inflight": len(self._inflight),
            }
            writer.write(_sse(snapshot))
            await writer.drain()
            while not self._closing:
                try:
                    event = await asyncio.wait_for(
                        sub.get(), timeout=SSE_HEARTBEAT_SECONDS
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\r\n\r\n")
                    await writer.drain()
                    continue
                if event is None:
                    break
                writer.write(_sse(event))
                await writer.drain()
        finally:
            self._subscribers.discard(sub)

    def _health_doc(self) -> dict:
        from repro.common.tables import available_backends

        return {
            "v": protocol.PROTOCOL_VERSION,
            "ok": True,
            "code_version": CODE_VERSION,
            "inflight": len(self._inflight),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "jobs": self.scheduler.jobs,
            # Storage backends *this server* can execute jobs on; clients
            # may submit any KNOWN_BACKENDS value regardless.
            "table_backends": list(available_backends()),
        }

    def _metrics_doc(self) -> dict:
        return {
            "v": protocol.PROTOCOL_VERSION,
            "serve": {
                "requests": self.requests,
                "hits": self.hits,
                "misses": self.misses,
                "dedup": self.dedup,
                "errors_4xx": self.errors_4xx,
                "errors_5xx": self.errors_5xx,
                "inflight": len(self._inflight),
                "sse_subscribers": len(self._subscribers),
                "cache": {
                    "hits": self.cache.hits, "misses": self.cache.misses,
                    "stores": self.cache.stores,
                    "corrupt": self.cache.corrupt,
                },
            },
            "metrics": obs.registry().snapshot(),
        }

    def _metrics_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) of the metrics document.

        The server's own plain-int counters are authoritative (they exist
        and count even with obs disabled); the obs registry is appended
        with those raw names excluded, so no metric family is ever
        emitted twice while registry-only metrics (request-latency
        histogram, timeline/attribution counters, ...) still show up.
        """
        from repro.obs.registry import MetricsRegistry

        own = MetricsRegistry()
        own.counter("serve/requests").inc(self.requests)
        own.counter("serve/hits").inc(self.hits)
        own.counter("serve/misses").inc(self.misses)
        own.counter("serve/dedup").inc(self.dedup)
        own.counter("serve/errors/4xx").inc(self.errors_4xx)
        own.counter("serve/errors/5xx").inc(self.errors_5xx)
        own.counter("serve/cache/hits").inc(self.cache.hits)
        own.counter("serve/cache/misses").inc(self.cache.misses)
        own.counter("serve/cache/stores").inc(self.cache.stores)
        own.counter("serve/cache/corrupt").inc(self.cache.corrupt)
        own.gauge("serve/inflight").set(len(self._inflight))
        own.gauge("serve/sse_subscribers").set(len(self._subscribers))
        own.gauge("serve/uptime_seconds").set(
            round(time.monotonic() - self._started, 3)
        )
        return own.to_prometheus() + obs.registry().to_prometheus(
            exclude=frozenset(own)
        )

    async def _send_text(self, writer: asyncio.StreamWriter, status: int,
                         text: str, content_type: str = "text/plain") -> None:
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()


def _sse(event: dict) -> bytes:
    return b"data: " + json.dumps(event).encode("utf-8") + b"\r\n\r\n"


# ---------------------------------------------------------------------------
# Running a server without owning the event loop.
# ---------------------------------------------------------------------------

class ServerThread:
    """A :class:`SweepServer` on a background thread (tests, examples).

    Usage::

        with ServerThread(cache=ResultCache(root=tmp), jobs=2) as srv:
            client = ServeClient(srv.url)
            ...

    The context manager guarantees the event loop is up and the port is
    bound on entry, and that the loop, runner thread and connections are
    torn down on exit.
    """

    def __init__(self, **kwargs) -> None:
        self.server = SweepServer(**kwargs)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._main, name="serve-loop", daemon=True
        )
        self._error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.server.url

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
