"""Wire protocol of the sweep-result service.

One module, imported by both :mod:`repro.serve.server` and
:mod:`repro.serve.client`, owns everything that crosses the HTTP
boundary: route names, the versioned JSON request/response shapes, digest
validation, and the end-to-end integrity rule.  Keeping encode and decode
side by side is what makes the bit-identity contract checkable — a result
document carries the same sha256 payload checksum the on-disk cache blobs
carry (:func:`repro.exec.payload_checksum` over ``{"spec", "stats"}``),
so the *client* verifies that what it received is exactly what the server
read from the cache or computed, and that the spec echoed back hashes to
the digest it asked for.

Requests and responses are plain JSON documents tagged with ``"v":
PROTOCOL_VERSION``; a server receiving a newer-versioned request (or a
client receiving a newer-versioned response) rejects it instead of
guessing.  Digests are the :meth:`repro.exec.JobSpec.digest` sha256 hex
strings; anything that does not look like one is rejected *before* it can
reach the filesystem layer.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.chaos.plan import CORRUPT_MODES, FaultAction, JOB_FAULT_KINDS
from repro.exec.cache import CODE_VERSION, payload_checksum
from repro.exec.jobs import JobSpec, stats_from_dict, stats_to_dict
from repro.pipeline import SimStats

#: Version tag carried by every request and response document.
PROTOCOL_VERSION = 1

#: Maximum specs accepted in one ``/v1/sweep`` request.
MAX_SWEEP_SPECS = 4096

#: Maximum request body the server will read, in bytes.
MAX_BODY_BYTES = 16 * 1024 * 1024

# -- routes -----------------------------------------------------------------

ROUTE_SUBMIT = "/v1/submit"          # POST {v, spec} -> result document
ROUTE_SWEEP = "/v1/sweep"            # POST {v, specs: [...]} -> {results}
ROUTE_RESULT = "/v1/result/"         # GET  /v1/result/<digest> (cache only)
ROUTE_PROGRESS = "/v1/progress"      # GET  server-sent events stream
ROUTE_HEALTH = "/v1/healthz"         # GET  liveness + identity
ROUTE_METRICS = "/v1/metrics"        # GET  obs registry + server counters

# Distributed-sweep coordinator routes (:mod:`repro.dist`).  Workers PULL
# work (lease), prove liveness (heartbeat) and push outcomes (complete /
# fail); the driver pushes jobs (submit) and PULLs outcomes (collect).
ROUTE_DIST_SUBMIT = "/v1/dist/submit"        # POST {v, specs} -> {accepted}
ROUTE_DIST_LEASE = "/v1/dist/lease"          # POST {v, worker} -> {job|null}
ROUTE_DIST_HEARTBEAT = "/v1/dist/heartbeat"  # POST {v, worker, digest}
ROUTE_DIST_COMPLETE = "/v1/dist/complete"    # POST {v, worker, result, ...}
ROUTE_DIST_FAIL = "/v1/dist/fail"            # POST {v, worker, digest, error}
ROUTE_DIST_COLLECT = "/v1/dist/collect"      # POST {v} -> {results, failed}
ROUTE_DIST_CANCEL = "/v1/dist/cancel"        # POST {v} -> {cancelled}
ROUTE_DIST_STATUS = "/v1/dist/status"        # GET  queue + worker status

#: ``?format=`` values the metrics route accepts.  JSON is (and stays)
#: the default; Prometheus is the text exposition format v0.0.4.
METRICS_FORMAT_JSON = "json"
METRICS_FORMAT_PROMETHEUS = "prometheus"

#: Content-Type of a Prometheus text exposition response.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Where a result came from, as reported in the ``source`` field.
SOURCES = ("cache", "computed", "inflight")

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


class ProtocolError(ValueError):
    """A malformed, oversized, or version-incompatible message.

    ``status`` is the HTTP status the server answers with (the client
    raises the error directly).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def is_digest(value: object) -> bool:
    """Whether ``value`` is a well-formed sha256 hex digest."""
    return isinstance(value, str) and bool(_DIGEST_RE.match(value))


def validate_digest(value: object) -> str:
    if not is_digest(value):
        raise ProtocolError(f"malformed digest: {str(value)[:80]!r}")
    return value  # type: ignore[return-value]


def _check_version(doc: dict, kind: str) -> None:
    v = doc.get("v")
    if v != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{kind}: protocol version {v!r} not supported "
            f"(this build speaks v{PROTOCOL_VERSION})"
        )


def parse_json(raw: bytes, kind: str = "request") -> dict:
    """Bytes → dict, with protocol-level (not stack-trace) failures."""
    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(f"{kind} body exceeds {MAX_BODY_BYTES} bytes",
                            status=413)
    try:
        doc = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"{kind}: invalid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"{kind}: expected a JSON object")
    return doc


# -- submit -----------------------------------------------------------------

def encode_submit(spec: JobSpec) -> dict:
    return {"v": PROTOCOL_VERSION, "spec": spec.as_dict()}


def decode_submit(doc: dict) -> JobSpec:
    _check_version(doc, "submit")
    return _decode_spec(doc.get("spec"))


def _decode_spec(data: object) -> JobSpec:
    if not isinstance(data, dict):
        raise ProtocolError("missing or malformed 'spec' object")
    try:
        return JobSpec.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid spec: {exc}") from exc


# -- sweep ------------------------------------------------------------------

def encode_sweep(specs: list[JobSpec]) -> dict:
    return {"v": PROTOCOL_VERSION, "specs": [s.as_dict() for s in specs]}


def decode_sweep(doc: dict) -> list[JobSpec]:
    _check_version(doc, "sweep")
    specs = doc.get("specs")
    if not isinstance(specs, list) or not specs:
        raise ProtocolError("sweep: 'specs' must be a non-empty list")
    if len(specs) > MAX_SWEEP_SPECS:
        raise ProtocolError(
            f"sweep: {len(specs)} specs exceeds the limit of "
            f"{MAX_SWEEP_SPECS}", status=413,
        )
    return [_decode_spec(s) for s in specs]


# -- results ----------------------------------------------------------------

def encode_result(spec: JobSpec, stats: SimStats, source: str) -> dict:
    """One finished cell, checksummed exactly like a cache blob."""
    payload = {"spec": spec.as_dict(), "stats": stats_to_dict(stats)}
    return {
        "v": PROTOCOL_VERSION,
        "digest": spec.digest(),
        "source": source,
        "code_version": CODE_VERSION,
        "sha256": payload_checksum(payload),
        **payload,
    }


def decode_result(doc: dict, expect_digest: str | None = None
                  ) -> tuple[JobSpec, SimStats, str]:
    """Verify and unpack one result document.

    Raises :class:`ProtocolError` unless (a) the sha256 matches the
    payload, (b) the echoed spec hashes to the document's digest, and (c)
    when ``expect_digest`` is given, the digest is the one asked for —
    together these make a wrong-payload response impossible to mistake
    for a result.
    """
    _check_version(doc, "result")
    spec = _decode_spec(doc.get("spec"))
    digest = validate_digest(doc.get("digest"))
    stats_data = doc.get("stats")
    if not isinstance(stats_data, dict):
        raise ProtocolError("result: missing 'stats' object")
    payload = {"spec": doc["spec"], "stats": stats_data}
    if doc.get("sha256") != payload_checksum(payload):
        raise ProtocolError("result: payload checksum mismatch", status=502)
    if spec.digest() != digest:
        raise ProtocolError("result: spec does not hash to its digest",
                            status=502)
    if expect_digest is not None and digest != expect_digest:
        raise ProtocolError(
            f"result: got digest {digest[:12]}… for request "
            f"{expect_digest[:12]}…", status=502,
        )
    source = doc.get("source")
    if source not in SOURCES:
        raise ProtocolError(f"result: unknown source {source!r}")
    try:
        stats = stats_from_dict(stats_data)
    except TypeError as exc:
        raise ProtocolError(f"result: malformed stats ({exc})") from exc
    return spec, stats, source


def encode_sweep_results(docs: list[dict]) -> dict:
    return {"v": PROTOCOL_VERSION, "results": docs}


def decode_sweep_results(doc: dict, expect: list[str]
                         ) -> list[tuple[JobSpec, SimStats, str]]:
    """Verify a sweep response against the digests that were requested."""
    _check_version(doc, "sweep results")
    results = doc.get("results")
    if not isinstance(results, list) or len(results) != len(expect):
        got = len(results) if isinstance(results, list) else "no"
        raise ProtocolError(
            f"sweep: expected {len(expect)} results, got {got}", status=502
        )
    return [decode_result(r, expect_digest=d)
            for r, d in zip(results, expect)]


# -- distributed sweeps (repro.dist) ----------------------------------------
#
# Everything a lease-based coordinator and its pull-model workers exchange.
# Result documents reuse encode_result / decode_result above — a worker's
# completion carries the same checksummed payload a cache blob does, so the
# coordinator (and, transitively, the driver collecting results) verifies
# worker output exactly as it would verify its own disk.

_WORKER_RE = re.compile(r"^[\w.:-]{1,120}$")


def validate_worker(value: object) -> str:
    """A worker id: short, printable, safe to embed in metric names."""
    if not isinstance(value, str) or not _WORKER_RE.match(value):
        raise ProtocolError(f"malformed worker id: {str(value)[:80]!r}")
    return value


@dataclass(frozen=True)
class WorkOrder:
    """One leased job, as decoded by a worker.

    ``fault`` and ``corrupt`` are chaos verdicts drawn by the
    *coordinator* (so injection stays deterministic no matter which worker
    steals the job) and shipped as plain data; the worker fires them with
    :func:`repro.chaos.apply_fault` / :func:`repro.chaos.corrupt_file`.
    """

    spec: JobSpec
    attempt: int
    lease_seconds: float
    fault: FaultAction | None = None
    corrupt: str | None = None

    @property
    def digest(self) -> str:
        return self.spec.digest()


def encode_worker_doc(worker: str, **extra) -> dict:
    """The ``{v, worker, ...}`` shape lease/heartbeat/fail requests share."""
    return {"v": PROTOCOL_VERSION, "worker": worker, **extra}


def decode_worker_doc(doc: dict, kind: str) -> str:
    _check_version(doc, kind)
    return validate_worker(doc.get("worker"))


def encode_lease_grant(spec: JobSpec, attempt: int, lease_seconds: float,
                       fault: FaultAction | None = None,
                       corrupt: str | None = None) -> dict:
    job = {
        "digest": spec.digest(),
        "spec": spec.as_dict(),
        "attempt": attempt,
        "lease_seconds": lease_seconds,
        "fault": None if fault is None else {"kind": fault.kind,
                                             "seconds": fault.seconds},
        "corrupt": corrupt,
    }
    return {"v": PROTOCOL_VERSION, "job": job}


def encode_lease_idle(drain: bool = False) -> dict:
    """No work right now; ``drain`` tells the worker to exit for good."""
    return {"v": PROTOCOL_VERSION, "job": None, "drain": drain}


def decode_lease(doc: dict) -> tuple[WorkOrder | None, bool]:
    """A lease response → ``(work order or None, drain flag)``."""
    _check_version(doc, "lease")
    job = doc.get("job")
    if job is None:
        return None, bool(doc.get("drain"))
    if not isinstance(job, dict):
        raise ProtocolError("lease: 'job' must be an object or null")
    spec = _decode_spec(job.get("spec"))
    if spec.digest() != validate_digest(job.get("digest")):
        raise ProtocolError("lease: spec does not hash to its digest",
                            status=502)
    fault_doc = job.get("fault")
    fault = None
    if fault_doc is not None:
        if (not isinstance(fault_doc, dict)
                or fault_doc.get("kind") not in JOB_FAULT_KINDS):
            raise ProtocolError("lease: malformed fault verdict")
        fault = FaultAction(fault_doc["kind"],
                            float(fault_doc.get("seconds", 0.0)))
    corrupt = job.get("corrupt")
    if corrupt is not None and corrupt not in CORRUPT_MODES:
        raise ProtocolError(f"lease: unknown corrupt mode {corrupt!r}")
    try:
        attempt = int(job.get("attempt", 0))
        lease_seconds = float(job.get("lease_seconds", 0.0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"lease: malformed job numbers ({exc})") from exc
    return WorkOrder(spec, attempt, lease_seconds, fault, corrupt), False


def encode_complete(worker: str, spec: JobSpec, stats: SimStats,
                    metrics: dict | None = None) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "worker": worker,
        "result": encode_result(spec, stats, "computed"),
        "metrics": metrics or {},
    }


def decode_complete(doc: dict) -> tuple[str, JobSpec, SimStats, dict, dict]:
    """→ ``(worker, spec, stats, verified result document, metrics)``.

    The embedded result document goes through the full
    :func:`decode_result` verification chain, so a coordinator never
    stores (and later re-serves) a completion a client would reject.
    """
    worker = decode_worker_doc(doc, "complete")
    result = doc.get("result")
    if not isinstance(result, dict):
        raise ProtocolError("complete: missing 'result' document")
    spec, stats, _source = decode_result(result)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ProtocolError("complete: 'metrics' must be an object")
    return worker, spec, stats, result, metrics


def encode_fail(worker: str, digest: str, error: str) -> dict:
    return encode_worker_doc(worker, digest=digest, error=str(error)[:2000])


def decode_fail(doc: dict) -> tuple[str, str, str]:
    worker = decode_worker_doc(doc, "fail")
    digest = validate_digest(doc.get("digest"))
    error = doc.get("error")
    if not isinstance(error, str):
        raise ProtocolError("fail: 'error' must be a string")
    return worker, digest, error


def encode_heartbeat(worker: str, digest: str) -> dict:
    return encode_worker_doc(worker, digest=digest)


def decode_heartbeat(doc: dict) -> tuple[str, str]:
    worker = decode_worker_doc(doc, "heartbeat")
    return worker, validate_digest(doc.get("digest"))


def encode_collect_response(results: list[dict], failed: list[dict],
                            outstanding: int, live_workers: int) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "results": results,
        "failed": failed,
        "outstanding": outstanding,
        "live_workers": live_workers,
    }


def decode_collect_response(doc: dict
                            ) -> tuple[list[tuple[JobSpec, SimStats]],
                                       list[tuple[str, str]], int, int]:
    """→ ``(verified (spec, stats) pairs, (digest, error) failures,
    outstanding, live_workers)``."""
    _check_version(doc, "collect")
    raw_results = doc.get("results")
    raw_failed = doc.get("failed")
    if not isinstance(raw_results, list) or not isinstance(raw_failed, list):
        raise ProtocolError("collect: 'results'/'failed' must be lists",
                            status=502)
    results = []
    for item in raw_results:
        spec, stats, _source = decode_result(item)
        results.append((spec, stats))
    failed = []
    for item in raw_failed:
        if not isinstance(item, dict):
            raise ProtocolError("collect: malformed failure entry",
                                status=502)
        digest = validate_digest(item.get("digest"))
        failed.append((digest, str(item.get("error", "unknown"))))
    try:
        outstanding = int(doc.get("outstanding", 0))
        live_workers = int(doc.get("live_workers", 0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"collect: malformed counts ({exc})",
                            status=502) from exc
    return results, failed, outstanding, live_workers


# -- errors -----------------------------------------------------------------

def encode_error(status: int, message: str) -> dict:
    return {"v": PROTOCOL_VERSION, "error": message, "status": status}


def error_message(doc: dict) -> str:
    """Best-effort extraction of an error body's message."""
    if isinstance(doc, dict) and isinstance(doc.get("error"), str):
        return doc["error"]
    return "unknown server error"
